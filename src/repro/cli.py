"""Command-line interface: run the paper's experiments by ID.

Usage::

    python -m repro list                  # experiment catalog
    python -m repro run E3                # one experiment, rendered
    python -m repro run F1 --scale ci     # the figure, at smoke scale
    python -m repro run E15 --seed 7      # reproducible from the shell
    python -m repro run all --scale ci    # everything (slow at full scale)
    python -m repro serve                 # the E15 chaos campaign, CI scale
    python -m repro cases                 # the §2 named defect case studies
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Sequence

from repro.analysis.experiments import EXPERIMENTS

#: experiment kwargs at smoke scale (subset; others are already fast)
_CI_KWARGS: dict[str, dict] = {
    "F1": dict(n_machines=2000, horizon_days=360.0, warmup_days=120.0,
               prevalence_scale=16.0),
    "E1": dict(n_machines=3000, horizon_days=120.0),
    "E2": dict(n_cores=12),
    "E6": dict(n_defects=80),
    "E8": dict(n_incidents=80),
    "E9": dict(n_rates=40),
    "E10": dict(n_machines=20),
    "E11": dict(n_units=15),
    "E15": dict(ticks=250),
}


def _run_one(experiment_id: str, scale: str, seed: int | None = None) -> int:
    try:
        title, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        print(f"unknown experiment {experiment_id!r}; try `list`",
              file=sys.stderr)
        return 2
    kwargs = dict(_CI_KWARGS.get(experiment_id, {})) if scale == "ci" else {}
    if seed is not None:
        if "seed" in inspect.signature(runner).parameters:
            kwargs["seed"] = seed
        else:
            print(f"note: {experiment_id} does not take a seed; ignoring",
                  file=sys.stderr)
    print(f"== {experiment_id}: {title} ==")
    started = time.time()
    result = runner(**kwargs)
    elapsed = time.time() - started
    print(result["rendered"])
    print(f"[{elapsed:.1f}s]")
    return 0


def _cmd_list() -> int:
    width = max(len(eid) for eid in EXPERIMENTS)
    for eid, (title, _) in EXPERIMENTS.items():
        print(f"{eid:<{width}}  {title}")
    return 0


def _cmd_cases() -> int:
    import numpy as np

    from repro.detection.corpus import TestCorpus
    from repro.silicon import Core, NAMED_CASES, named_case

    corpus = TestCorpus.standard(seeds=(1,))
    for name in NAMED_CASES:
        core = Core(
            f"cases/{name}", defects=named_case(name),
            rng=np.random.default_rng(0),
        )
        screen = corpus.screen(core, repetitions=2)
        descriptions = "; ".join(d.describe() for d in core.defects)
        print(f"{name}:")
        print(f"  defects:   {descriptions}")
        print(f"  confessed: {screen.confessed} "
              f"({len(screen.failed_tests)} failing tests, "
              f"{screen.machine_checks} machine checks)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for 'Cores that don't count'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list experiment IDs")
    subparsers.add_parser("cases", help="screen the §2 named defect cases")
    run_parser = subparsers.add_parser("run", help="run experiment(s)")
    run_parser.add_argument(
        "experiment", help="experiment ID (F1, E1..E15) or 'all'"
    )
    run_parser.add_argument(
        "--scale", choices=("full", "ci"), default="full",
        help="ci = smoke-test sizes",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None,
        help="master seed for runners that take one (reproducible runs)",
    )
    serve_parser = subparsers.add_parser(
        "serve",
        help="run the E15 serving-under-CEE chaos campaign at CI scale",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=None, help="campaign master seed",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "cases":
        return _cmd_cases()
    if args.command == "serve":
        return _run_one("E15", "ci", seed=args.seed)
    if args.experiment == "all":
        status = 0
        for eid in EXPERIMENTS:
            status = max(status, _run_one(eid, args.scale, seed=args.seed))
        return status
    return _run_one(args.experiment.upper(), args.scale, seed=args.seed)


if __name__ == "__main__":
    raise SystemExit(main())
