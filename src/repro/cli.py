"""Command-line interface: run the paper's experiments by ID.

Usage::

    python -m repro list                  # experiment catalog
    python -m repro run E3                # one experiment, rendered
    python -m repro run F1 --scale ci     # the figure, at smoke scale
    python -m repro run E15 --seed 7      # reproducible from the shell
    python -m repro run E17 --scale ci    # serve-at-scale grid, smoke scale
    python -m repro run all --scale ci    # everything (slow at full scale)
    python -m repro serve                 # the E15 chaos campaign, CI scale
    python -m repro serve --json          # machine-readable SLO scorecards
    python -m repro store                 # the E16 storage campaign, CI scale
    python -m repro store --json          # machine-readable durability scorecards
    python -m repro cases                 # the §2 named defect case studies
    python -m repro bench --scale ci      # perf scorecards -> BENCH_<ID>.json
    python -m repro bench serve-scale     # the E17 grid -> BENCH_E17.json
    python -m repro bench instrcheck      # the E18 grid -> BENCH_E18.json
    python -m repro bench fleetscreen     # the E19 grid -> BENCH_E19.json
    python -m repro run E19 --scale ci    # fleet-screening grid, smoke scale
    python -m repro trace e18             # instrcheck catch-attribution timeline
    python -m repro run E1 --trials 8 --workers 4   # parallel Monte-Carlo
    python -m repro metrics e15           # Prometheus-text metric dump
    python -m repro metrics e16 --format json   # JSON metric snapshot
    python -m repro trace e15             # corruption-forensics timeline
    python -m repro lint                  # static invariant checks
    python -m repro lint --json src       # machine-readable findings
"""

from __future__ import annotations

import argparse
import inspect
import json
import math
import sys
import time
from typing import Sequence

from repro.analysis.experiments import EXPERIMENTS

#: experiment kwargs at smoke scale (subset; others are already fast)
_CI_KWARGS: dict[str, dict] = {
    "F1": dict(n_machines=2000, horizon_days=360.0, warmup_days=120.0,
               prevalence_scale=16.0),
    "E1": dict(n_machines=3000, horizon_days=120.0),
    "E2": dict(n_cores=12),
    "E6": dict(n_defects=80),
    "E8": dict(n_incidents=80),
    "E9": dict(n_rates=40),
    "E10": dict(n_machines=20),
    "E11": dict(n_units=15),
    "E15": dict(ticks=250),
    "E16": dict(ticks=200),
    "E17": dict(ticks=200),
    "E18": dict(units=160),
    "E19": dict(n_machines=60, horizon_days=60.0),
}

#: campaign experiments with ``--json`` scorecard output: experiment id
#: → (scorecard result keys, headline metric result keys)
_CAMPAIGN_JSON_KEYS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "E15": (
        ("unhardened", "hardened", "validator_only"),
        ("bad_core_id", "escape_rate_unhardened", "escape_rate_hardened",
         "escape_reduction", "p99_cost", "goodput_cost",
         "quarantine_tick_breaker", "quarantine_tick_validator_only"),
    ),
    "E16": (
        ("unprotected", "quorum_only", "no_encrypt_verify",
         "generic_weights", "protected"),
        ("bad_core_id", "escape_rate_unprotected", "escape_rate_protected",
         "escape_reduction", "write_amp_cost", "unrecoverable_unprotected",
         "unrecoverable_no_verify", "unrecoverable_protected",
         "quarantine_tick_dedicated", "quarantine_tick_generic"),
    ),
}


def _runner_kwargs(experiment_id: str, scale: str, seed: int | None,
                   runner, workers: int | None = None,
                   trials: int | None = None) -> dict:
    kwargs = dict(_CI_KWARGS.get(experiment_id, {})) if scale == "ci" else {}
    parameters = inspect.signature(runner).parameters
    if seed is not None:
        if "seed" in parameters:
            kwargs["seed"] = seed
        else:
            print(f"note: {experiment_id} does not take a seed; ignoring",
                  file=sys.stderr)
    for name, value in (("workers", workers), ("n_trials", trials)):
        if value is None:
            continue
        if name in parameters:
            kwargs[name] = value
        else:
            print(
                f"note: {experiment_id} does not take {name}; ignoring",
                file=sys.stderr,
            )
    return kwargs


def _run_one(experiment_id: str, scale: str, seed: int | None = None,
             workers: int | None = None, trials: int | None = None) -> int:
    try:
        title, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        print(f"unknown experiment {experiment_id!r}; try `list`",
              file=sys.stderr)
        return 2
    kwargs = _runner_kwargs(
        experiment_id, scale, seed, runner, workers=workers, trials=trials
    )
    print(f"== {experiment_id}: {title} ==")
    # operator-facing elapsed display, not simulated time
    started = time.time()    # repro: noqa-DET002 -- wall-clock UX only
    result = runner(**kwargs)
    elapsed = time.time() - started    # repro: noqa-DET002 -- wall-clock UX only
    print(result["rendered"])
    print(f"[{elapsed:.1f}s]")
    return 0


def _jsonable(value):
    """Strict-JSON-safe scalar: non-finite floats become None."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _run_campaign_json(experiment_id: str, seed: int | None,
                       workers: int | None = None) -> int:
    """Run a chaos campaign and print its scorecards as strict JSON."""
    title, runner = EXPERIMENTS[experiment_id]
    card_keys, metric_keys = _CAMPAIGN_JSON_KEYS[experiment_id]
    kwargs = _runner_kwargs(experiment_id, "ci", seed, runner,
                            workers=workers)
    result = runner(**kwargs)
    payload = {
        "experiment": experiment_id,
        "title": title,
        "scorecards": {
            key: result[key].to_json() for key in card_keys
        },
        "metrics": {
            key: _jsonable(result[key]) for key in metric_keys
        },
    }
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


def _cmd_bench(args) -> int:
    """Run registered benchmarks and write BENCH_<ID>.json scorecards."""
    from repro.engine.bench import BENCHMARKS, run_benchmark, write_scorecard

    bench_ids = [b.lower() for b in args.benchmarks] or list(BENCHMARKS)
    unknown = [b for b in bench_ids if b not in BENCHMARKS]
    if unknown:
        known = ", ".join(sorted(BENCHMARKS))
        print(f"unknown benchmark(s): {', '.join(unknown)} (known: {known})",
              file=sys.stderr)
        return 2
    payloads = []
    for bench_id in bench_ids:
        card = run_benchmark(
            bench_id, scale=args.scale, workers=args.workers
        )
        path = write_scorecard(card, args.out_dir)
        print(f"{card.summary()}  -> {path}", file=sys.stderr)
        payloads.append(card.to_json())
    if args.json:
        json.dump(payloads, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


def _obs_campaign(source: str, seed: int) -> tuple:
    """Run one observability-instrumented campaign arm at CI scale.

    Returns ``(scorecard, events, bad_core_id, tick_ms)``; the obs
    registry and tracer hold the run's metrics and spans afterwards.
    """
    from repro import obs

    obs.set_enabled(True)
    obs.metrics.reset()
    obs.tracer.reset()
    if source == "e15":
        from repro.analysis.experiments import _serving_campaign
        from repro.serving.campaign import CampaignConfig

        card, events, bad_core_id = _serving_campaign(
            "hardened", ticks=_CI_KWARGS["E15"]["ticks"], n_machines=4,
            cores_per_machine=4, defect_rate=0.05, seed=seed,
            onset_age=400.0,
        )
        return card, events, bad_core_id, CampaignConfig().tick_ms
    if source == "e18":
        from repro.mitigation.instrcheck import (
            InstrCheckCampaign,
            InstrCheckConfig,
            build_instrcheck_fleet,
        )

        # The MEEK arm has the richest signal mix: checker mismatches,
        # lag-overflow breadcrumbs, quarantines and lane re-placement.
        machines, bad_core_ids = build_instrcheck_fleet(
            prevalence=0.25, seed=seed + 7
        )
        config = InstrCheckConfig(units=_CI_KWARGS["E18"]["units"])
        campaign = InstrCheckCampaign(machines, "meek", config, seed=seed + 3)
        card = campaign.run()
        return (
            card, campaign.events, ",".join(bad_core_ids), config.tick_ms,
        )
    from repro.analysis.experiments import _storage_campaign
    from repro.storage.campaign import StorageCampaignConfig

    card, events, bad_core_id = _storage_campaign(
        "protected", ticks=_CI_KWARGS["E16"]["ticks"], n_machines=4,
        cores_per_machine=4, defect_rate=0.05, seed=seed, onset_age=400.0,
    )
    return card, events, bad_core_id, StorageCampaignConfig().tick_ms


def _cmd_metrics(args) -> int:
    """Run an instrumented campaign and dump the metric registry."""
    from repro import obs
    from repro.obs.export import to_json, to_prometheus

    seed = 0 if args.seed is None else args.seed
    if args.source == "e1":
        from repro.analysis.experiments import _incidence_trial
        from repro.engine import Trial

        obs.set_enabled(True)
        obs.metrics.reset()
        obs.tracer.reset()
        _incidence_trial(Trial(0, seed), n_machines=2000, horizon_days=60.0)
    else:
        _obs_campaign(args.source, seed)
    if args.format == "json":
        print(to_json(obs.metrics))
    else:
        print(to_prometheus(obs.metrics), end="")
    return 0


def _cmd_trace(args) -> int:
    """Run an instrumented campaign and print its forensics timeline."""
    from repro import obs
    from repro.obs.forensics import render_forensics

    seed = 0 if args.seed is None else args.seed
    card, events, bad_core_id, tick_ms = _obs_campaign(args.campaign, seed)
    arm = {
        "e15": "E15 hardened",
        "e16": "E16 protected",
        "e18": "E18 instrcheck (meek)",
    }[args.campaign]
    print(render_forensics(
        f"{arm}, seed {seed}, bad core {bad_core_id}",
        card.detection_latency_ms, events, obs.tracer.drain(), tick_ms,
        quarantine_tick=card.quarantine_tick,
    ))
    return 0


def _cmd_list() -> int:
    width = max(len(eid) for eid in EXPERIMENTS)
    for eid, (title, _) in EXPERIMENTS.items():
        print(f"{eid:<{width}}  {title}")
    return 0


def _cmd_cases() -> int:
    import numpy as np

    from repro.detection.corpus import TestCorpus
    from repro.silicon import Core, NAMED_CASES, named_case

    corpus = TestCorpus.standard(seeds=(1,))
    for name in NAMED_CASES:
        core = Core(
            f"cases/{name}", defects=named_case(name),
            rng=np.random.default_rng(0),  # repro: noqa-DET004 -- operator demo listing; fixed seed so the printed case table is stable across runs
        )
        screen = corpus.screen(core, repetitions=2)
        descriptions = "; ".join(d.describe() for d in core.defects)
        print(f"{name}:")
        print(f"  defects:   {descriptions}")
        print(f"  confessed: {screen.confessed} "
              f"({len(screen.failed_tests)} failing tests, "
              f"{screen.machine_checks} machine checks)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for 'Cores that don't count'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list experiment IDs")
    subparsers.add_parser("cases", help="screen the §2 named defect cases")
    run_parser = subparsers.add_parser("run", help="run experiment(s)")
    run_parser.add_argument(
        "experiment", help="experiment ID (F1, E1..E19) or 'all'"
    )
    run_parser.add_argument(
        "--scale", choices=("full", "ci"), default="full",
        help="ci = smoke-test sizes",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None,
        help="master seed for runners that take one (reproducible runs)",
    )
    run_parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for runners that fan out "
             "(default: REPRO_WORKERS or 1; results are identical "
             "for any value)",
    )
    run_parser.add_argument(
        "--trials", type=int, default=None,
        help="Monte-Carlo trial count for runners that support it",
    )
    bench_parser = subparsers.add_parser(
        "bench", help="run perf benchmarks; write BENCH_<ID>.json scorecards"
    )
    bench_parser.add_argument(
        "benchmarks", nargs="*", metavar="BENCH",
        help="bench ids (default: all registered)",
    )
    bench_parser.add_argument(
        "--scale", choices=("default", "ci"), default="default",
        help="ci = smoke-test sizes",
    )
    bench_parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for the optimized side of the A/B",
    )
    bench_parser.add_argument(
        "--out-dir", default=".",
        help="directory for BENCH_<ID>.json files (default: cwd)",
    )
    bench_parser.add_argument(
        "--json", action="store_true",
        help="print the scorecards as JSON to stdout as well",
    )
    for name, experiment_id, help_text in (
        ("serve", "E15",
         "run the E15 serving-under-CEE chaos campaign at CI scale"),
        ("store", "E16",
         "run the E16 storage-under-CEE chaos campaign at CI scale"),
    ):
        campaign_parser = subparsers.add_parser(name, help=help_text)
        campaign_parser.add_argument(
            "--seed", type=int, default=None, help="campaign master seed",
        )
        campaign_parser.add_argument(
            "--json", action="store_true",
            help="print machine-readable scorecards instead of tables",
        )
        campaign_parser.add_argument(
            "--workers", type=int, default=None,
            help="process-pool size for the campaign arms",
        )
        campaign_parser.set_defaults(experiment_id=experiment_id)

    metrics_parser = subparsers.add_parser(
        "metrics",
        help="run an instrumented campaign; dump the metric registry",
    )
    metrics_parser.add_argument(
        "source", nargs="?", choices=("e1", "e15", "e16", "e18"),
        default="e15",
        help="which campaign to instrument (default: e15)",
    )
    metrics_parser.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        help="Prometheus text exposition (default) or JSON snapshot",
    )
    metrics_parser.add_argument(
        "--seed", type=int, default=None, help="campaign master seed",
    )
    trace_parser = subparsers.add_parser(
        "trace",
        help="run an instrumented campaign; print corruption forensics",
    )
    trace_parser.add_argument(
        "campaign", nargs="?", choices=("e15", "e16", "e18"), default="e15",
        help="which chaos campaign to trace (default: e15)",
    )
    trace_parser.add_argument(
        "--seed", type=int, default=None, help="campaign master seed",
    )
    lint_parser = subparsers.add_parser(
        "lint",
        help="run the static invariant linter (AST rule pack + baseline)",
    )
    from repro.lint import cli as lint_cli

    lint_cli.add_arguments(lint_parser)

    args = parser.parse_args(argv)
    if args.command == "lint":
        return lint_cli.run(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "cases":
        return _cmd_cases()
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command in ("serve", "store"):
        if args.json:
            return _run_campaign_json(
                args.experiment_id, seed=args.seed, workers=args.workers
            )
        return _run_one(
            args.experiment_id, "ci", seed=args.seed, workers=args.workers
        )
    if args.experiment == "all":
        status = 0
        for eid in EXPERIMENTS:
            status = max(status, _run_one(
                eid, args.scale, seed=args.seed,
                workers=args.workers, trials=args.trials,
            ))
        return status
    return _run_one(
        args.experiment.upper(), args.scale, seed=args.seed,
        workers=args.workers, trials=args.trials,
    )


if __name__ == "__main__":
    raise SystemExit(main())
