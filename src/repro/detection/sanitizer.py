"""Sanitizer signal model.

§6 notes that "code sanitizers in modern tool chains (e.g., Address
Sanitizer), capable of detecting memory corruption (e.g.
buffer-overflow, use-after-free), also provide useful signals."

We cannot run ASan inside the simulation, but we can model what it
contributes: a probabilistic observer that converts a fraction of
otherwise-silent corruptions into attributed events — plus a steady
background of true software bugs that have nothing to do with silicon
(the reason sanitizer signals get a low suspicion weight).
"""

from __future__ import annotations

import numpy as np

from repro.core.events import CeeEvent, EventKind, EventLog, Reporter


class SanitizerModel:
    """Converts corruption occurrences into sanitizer events.

    Args:
        catch_probability: chance a given memory-adjacent corruption
            trips a sanitizer check (sanitized builds are a small slice
            of the fleet, and only pointer-shaped corruption trips
            them).
        background_rate_per_machineday: rate of sanitizer reports from
            plain software bugs — §1's "undiagnosed software bugs that
            we always assume lurk within a code base at scale".
    """

    def __init__(
        self,
        rng: np.random.Generator,
        catch_probability: float = 0.05,
        background_rate_per_machineday: float = 0.002,
    ):
        if not 0.0 <= catch_probability <= 1.0:
            raise ValueError("catch_probability must be a probability")
        if background_rate_per_machineday < 0:
            raise ValueError("background rate must be non-negative")
        self.rng = rng
        self.catch_probability = catch_probability
        self.background_rate = background_rate_per_machineday

    def observe_corruption(
        self,
        log: EventLog,
        time_days: float,
        machine_id: str,
        core_id: str,
        application: str,
    ) -> bool:
        """Maybe emit a sanitizer event for a real corruption."""
        if self.rng.random() >= self.catch_probability:
            return False
        log.append(
            CeeEvent(
                time_days=time_days,
                machine_id=machine_id,
                core_id=core_id,
                kind=EventKind.SANITIZER,
                reporter=Reporter.AUTOMATED,
                application=application,
                detail="heap-buffer-overflow (simulated asan)",
            )
        )
        return True

    def emit_background(
        self,
        log: EventLog,
        time_days: float,
        machine_ids: list[str],
        span_days: float,
    ) -> int:
        """Emit software-bug noise over ``span_days``; returns count."""
        if not machine_ids:
            return 0
        expected = self.background_rate * len(machine_ids) * span_days
        count = int(self.rng.poisson(expected))
        for _ in range(count):
            machine_id = machine_ids[int(self.rng.integers(len(machine_ids)))]
            log.append(
                CeeEvent(
                    time_days=time_days + float(self.rng.uniform(0, span_days)),
                    machine_id=machine_id,
                    core_id=None,  # software bugs have no core affinity
                    kind=EventKind.SANITIZER,
                    reporter=Reporter.AUTOMATED,
                    application="various",
                    detail="software bug (background)",
                )
            )
        return count
