"""Signal analysis: turning fleet noise into core suspicion.

§6: "We currently exploit several different kinds of automatable
'signals' indicating the possible presence of CEEs, especially when we
can detect core-specific patterns for these signals.  These include
crashes of user processes and kernels and analysis of our existing
logs of machine checks.  Code sanitizers in modern tool chains ...
also provide useful signals."

:class:`SignalAnalyzer` consumes :class:`~repro.core.events.EventLog`
entries and feeds a :class:`~repro.core.confidence.SuspicionTracker`
with kind-specific weights.  Events without core attribution (many
crashes) contribute a diluted weight to every core of the machine —
the analyzer cannot conjure attribution the infrastructure lacks.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.core.confidence import SuspicionTracker
from repro.core.events import CeeEvent, EventKind
from repro.detection.weights import default_weights

#: default evidence weight per signal kind.  The authoritative table —
#: every kind, with the rationale for its weight — lives in
#: :mod:`repro.detection.weights`; this is the flat mapping the
#: analyzer consumes.
DEFAULT_WEIGHTS: Mapping[EventKind, float] = default_weights()


@dataclasses.dataclass
class SignalAnalyzerConfig:
    """Tunable weights and windows for suspicion scoring."""

    weights: Mapping[EventKind, float] = dataclasses.field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS)
    )
    #: weight multiplier when an event lacks core attribution and is
    #: spread over the machine's cores
    unattributed_dilution: float = 0.25


class SignalAnalyzer:
    """Feeds an event stream into per-core suspicion scores."""

    def __init__(
        self,
        tracker: SuspicionTracker | None = None,
        config: SignalAnalyzerConfig | None = None,
        cores_by_machine: Mapping[str, Sequence[str]] | None = None,
    ):
        """
        Args:
            tracker: suspicion store (created if omitted).
            cores_by_machine: machine id → core ids, used to spread
                unattributed signals; unattributed events on unknown
                machines are dropped (nothing to pin them on).
        """
        self.tracker = tracker or SuspicionTracker()
        self.config = config or SignalAnalyzerConfig()
        self.cores_by_machine = dict(cores_by_machine or {})

    def register_machine(self, machine_id: str, core_ids: Sequence[str]) -> None:
        self.cores_by_machine[machine_id] = list(core_ids)

    def ingest(self, event: CeeEvent) -> None:
        """Process one event into suspicion."""
        weight = self.config.weights.get(event.kind, 1.0)
        if event.core_id is not None:
            self.tracker.record(
                event.core_id,
                now_days=event.time_days,
                weight=weight,
                source=event.application,
            )
            return
        cores = self.cores_by_machine.get(event.machine_id)
        if not cores:
            return
        diluted = weight * self.config.unattributed_dilution / len(cores)
        for core_id in cores:
            self.tracker.record(
                core_id,
                now_days=event.time_days,
                weight=diluted,
                source=event.application,
            )

    def ingest_all(self, events) -> None:
        for event in events:
            self.ingest(event)

    def suspects(self, now_days: float, threshold: float = 2.0) -> list[tuple[str, float]]:
        """Current suspects, most suspicious first."""
        return self.tracker.suspects(now_days, threshold)
