"""The suspicion-weight table: how much each signal kind is worth.

§6 ranks signal sources by how often they pan out: machine checks are
hard evidence, crashes are mostly software, "about half" of human
reports turn out to be real CEEs.  Every :class:`~repro.core.events.EventKind`
the infrastructure can emit has exactly one entry here — weight plus the
reasoning behind it — so the evidence model is auditable in one place
instead of scattered through the analyzer.  ``test_detection_signals``
enforces the completeness invariant: adding an :class:`EventKind`
without adding a weight is a test failure, not a silent 1.0 default.

Calibration conventions:

- weights are roughly "equivalent independent observations": a weight-3
  signal moves suspicion as much as three weight-1 signals;
- the default :class:`~repro.core.policy.PolicyConfig` quarantines at
  score 6.0, so a weight says how many repeats of that signal alone
  should condemn a core;
- *aggregate* signals (a breaker trip is already several correlated
  per-request failures) may exceed any single observation;
- among single observations, a confessed screening failure
  (``SCREEN_FAIL``) stays the ceiling — it is a targeted test failing
  on known inputs, the closest thing to a confession.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.core.events import EventKind


@dataclasses.dataclass(frozen=True)
class SuspicionWeight:
    """One signal kind's evidence value, with its justification."""

    weight: float
    rationale: str

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("suspicion weights must be positive")


#: the single source of truth for per-kind evidence weights
SUSPICION_WEIGHTS: Mapping[EventKind, SuspicionWeight] = {
    EventKind.BREAKER_TRIP: SuspicionWeight(
        4.0,
        "a serving circuit-breaker trip is already an aggregate of "
        "several correlated per-request failures on one core — "
        "recidivism pre-packaged (§6)",
    ),
    EventKind.SCREEN_FAIL: SuspicionWeight(
        3.0,
        "a targeted screening test failed on known inputs; the closest "
        "signal to a confession, and the strongest single observation",
    ),
    EventKind.ENCRYPT_VERIFY_FAIL: SuspicionWeight(
        3.0,
        "decrypt-on-a-second-core disagreed with the encrypting core, "
        "and a third core arbitrated the blame — a cross-core-confirmed "
        "miscomputation (the §5.2 unrecoverable-encryption incident, "
        "caught before the ack)",
    ),
    EventKind.INSTRCHECK_MISMATCH: SuspicionWeight(
        2.8,
        "a duplicated instruction stream disagreed with the primary "
        "execution (ITHICA same-core re-run or a MEEK checker core); a "
        "per-op divergence on known operands is nearly a confession, "
        "kept just under SCREEN_FAIL because a heterogeneous checker "
        "pair leaves residual ambiguity about *which* core miscomputed",
    ),
    EventKind.FLEETSCREEN_FAIL: SuspicionWeight(
        3.0,
        "a distilled per-unit screening battery failed on known inputs "
        "during a fleet-wide or ride-along screen; the same confession "
        "class as SCREEN_FAIL — the battery is a subset of the same "
        "corpus, selected for coverage, so a failure carries the same "
        "evidence value",
    ),
    EventKind.MACHINE_CHECK: SuspicionWeight(
        2.5,
        "logged MCEs are hard hardware evidence, though not always "
        "attributable to a specific defective core",
    ),
    EventKind.QUORUM_MISMATCH: SuspicionWeight(
        2.2,
        "a voted quorum read found one replica disagreeing with the "
        "majority; the divergent bytes implicate that replica's core "
        "directly (Spanner-style dual computation, §7)",
    ),
    EventKind.REPLAY_DIVERGENCE: SuspicionWeight(
        2.4,
        "a checkpoint-delimited granule replayed on a second core "
        "produced a different digest (RepTFD-style replay detection); "
        "cross-core confirmed like QUORUM_MISMATCH but coarser — the "
        "granule spans many ops, so attribution inside it is indirect",
    ),
    EventKind.WAL_CORRUPTION: SuspicionWeight(
        2.0,
        "a CRC-framed log record failed verification at replay; the "
        "frame was computed before the bytes crossed the replica core, "
        "so the corruption happened on that core's write path",
    ),
    EventKind.SCRUB_MISMATCH: SuspicionWeight(
        1.8,
        "background scrubbing found a replica's at-rest checksum "
        "diverging from the quorum; strong but slightly ambiguous — "
        "the scrub read itself also crossed the suspect core",
    ),
    EventKind.SELF_CHECK_FAILURE: SuspicionWeight(
        1.5,
        "an application-level self-check tripped; real evidence, but "
        "application checks also catch their own software bugs",
    ),
    EventKind.APP_REPORT: SuspicionWeight(
        1.2,
        "a CoreComplaintService-style RPC from an application; curated "
        "but second-hand",
    ),
    EventKind.DATA_CORRUPTION: SuspicionWeight(
        1.0,
        "data found corrupt at rest; attribution to the corrupting "
        "core is long after the fact",
    ),
    EventKind.USER_REPORT: SuspicionWeight(
        1.0,
        "human-filed suspicion: noisy, but §6 says about half pan out",
    ),
    EventKind.CRASH: SuspicionWeight(
        0.8,
        "process/kernel crashes are common and mostly software; only "
        "core-concentrated repeats matter",
    ),
    EventKind.SANITIZER: SuspicionWeight(
        0.7,
        "tool-chain sanitizer hits are usually genuine software bugs; "
        "the weakest automatable signal",
    ),
    EventKind.RETRY_BUDGET_EXHAUSTED: SuspicionWeight(
        0.6,
        "a shard drained its retry tokens: an aggregate of many failed "
        "attempts, but overload and chaos produce the same symptom, so "
        "per-core blame is thin — the per-attempt failures already "
        "carry their own heavier signals",
    ),
    EventKind.HEDGE_FIRED: SuspicionWeight(
        0.3,
        "the primary attempt looked slow enough to duplicate; latency "
        "tails are overwhelmingly benign stragglers, but §2 notes some "
        "mercurial cores compute *slowly* — only core-concentrated "
        "repeats matter",
    ),
    EventKind.SHARD_DEGRADED: SuspicionWeight(
        0.2,
        "a shard fell into a degradation tier (shed / serve-stale / "
        "fail-closed); cluster-level symptom with no core attribution "
        "of its own — kept for forensics timelines, near-zero evidence",
    ),
    EventKind.CHECKER_LAG_OVERFLOW: SuspicionWeight(
        0.2,
        "the MEEK check-lag queue overflowed and dropped entries; an "
        "operational breadcrumb about lost *coverage*, not evidence of "
        "miscomputation — logged so forensics can explain blind spots",
    ),
    EventKind.RIDEALONG_SKIPPED: SuspicionWeight(
        0.2,
        "a ride-along screening pass ran out of machine-second budget "
        "before reaching some cores; an operational breadcrumb about "
        "lost *coverage* (like CHECKER_LAG_OVERFLOW), not evidence of "
        "miscomputation — logged so forensics can explain blind spots",
    ),
    EventKind.AUTOSCALE_ACTION: SuspicionWeight(
        0.1,
        "the autoscaler added or drained a replica; an operational "
        "breadcrumb recorded so capacity changes appear in the event "
        "timeline, not hardware evidence",
    ),
}


def default_weights() -> dict[EventKind, float]:
    """The plain ``kind → weight`` mapping the analyzer consumes."""
    return {kind: entry.weight for kind, entry in SUSPICION_WEIGHTS.items()}


def describe_weights() -> str:
    """Human-readable weight table, heaviest first (for reports)."""
    ordered = sorted(
        SUSPICION_WEIGHTS.items(), key=lambda kv: kv[1].weight, reverse=True
    )
    return "\n".join(
        f"{kind.value:<22} {entry.weight:>4.1f}  {entry.rationale}"
        for kind, entry in ordered
    )


__all__ = [
    "SUSPICION_WEIGHTS",
    "SuspicionWeight",
    "default_weights",
    "describe_weights",
]
