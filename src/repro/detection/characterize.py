"""Automatic defect characterization: from confession to targeted test.

§2: "we lack a systematic method of developing these tests"; §6: we
must extract confessions "often after first developing a new
automatable test"; §9 asks for "methods to detect novel defect modes".

This module is that systematic method, for the failure modes our
silicon can express.  Given a core that has confessed (some test
failed, but we don't know *why*), the characterizer:

1. finds which operations miscompute (random probing per op);
2. for operand-pattern-gated defects, recovers the gating mask/value by
   bit-flip differencing over failing operands (a delta-debugging style
   reduction);
3. measures the defect's observable rate on its trigger set;
4. emits a :class:`~repro.detection.corpus.ScreeningTest` that targets
   exactly the recovered trigger — the "new automatable test" that then
   joins the corpus.

Everything here uses only black-box access (`execute` vs host golden):
the characterizer never reads the core's defect list.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.detection.corpus import ScreeningTest, make_targeted_test
from repro.silicon.core import Core
from repro.silicon.errors import MachineCheckError
from repro.silicon.golden import golden_execute
from repro.silicon.units import ALL_OPS, FunctionalUnit, unit_of

#: ops probed with two scalar operands (the characterizable family)
_SCALAR_BINOPS = (
    "add", "sub", "and", "or", "xor", "shl", "shr", "rotl",
    "mul", "mulh", "cmp", "beq", "blt", "gfmul",
)


def _random_operands(op: str, rng: np.random.Generator) -> tuple:
    if op in ("sbox", "inv_sbox"):
        return (int(rng.integers(256)),)
    if op == "gfmul":
        return (int(rng.integers(256)), int(rng.integers(256)))
    if op in ("shl", "shr", "rotl"):
        return (int(rng.integers(2**63)), int(rng.integers(64)))
    return (int(rng.integers(2**63)), int(rng.integers(2**63)))


@dataclasses.dataclass
class OpFinding:
    """Characterization result for one operation."""

    op: str
    probes: int
    failures: int
    failing_operands: list[tuple]
    machine_checks: int = 0

    @property
    def observed_rate(self) -> float:
        return self.failures / self.probes if self.probes else 0.0


@dataclasses.dataclass
class DefectProfile:
    """Everything the characterizer learned about one suspect core."""

    core_id: str
    findings: list[OpFinding]
    implicated_units: frozenset
    trigger_mask: int | None = None
    trigger_value: int | None = None

    @property
    def failing_ops(self) -> list[str]:
        return [f.op for f in self.findings if f.failures or f.machine_checks]

    def render(self) -> str:
        lines = [f"defect profile for {self.core_id}:"]
        for finding in self.findings:
            if not finding.failures and not finding.machine_checks:
                continue
            lines.append(
                f"  {finding.op:8s} rate~{finding.observed_rate:.2e} "
                f"({finding.failures}/{finding.probes}, "
                f"{finding.machine_checks} MCEs)"
            )
        lines.append(
            "  implicated units: "
            + ", ".join(sorted(u.value for u in self.implicated_units))
        )
        if self.trigger_mask is not None:
            lines.append(
                f"  operand gate: (x & {self.trigger_mask:#x}) == "
                f"{self.trigger_value:#x}"
            )
        return "\n".join(lines)


def probe_operations(
    core: Core,
    rng: np.random.Generator,
    probes_per_op: int = 400,
    ops: tuple[str, ...] = ALL_OPS,
) -> list[OpFinding]:
    """Black-box probe: which operations ever disagree with golden?"""
    findings = []
    for op in ops:
        if op not in _SCALAR_BINOPS and op not in ("sbox", "inv_sbox"):
            continue
        failures = 0
        machine_checks = 0
        failing: list[tuple] = []
        for _ in range(probes_per_op):
            operands = _random_operands(op, rng)
            try:
                observed = core.execute(op, *operands)
            except MachineCheckError:
                machine_checks += 1
                continue
            if observed != golden_execute(op, *operands):
                failures += 1
                if len(failing) < 64:
                    failing.append(operands)
        findings.append(
            OpFinding(
                op=op, probes=probes_per_op, failures=failures,
                failing_operands=failing, machine_checks=machine_checks,
            )
        )
    return findings


def recover_trigger_gate(
    core: Core,
    op: str,
    failing_operands: list[tuple],
    rng: np.random.Generator,
    confirmations: int = 5,
) -> tuple[int, int] | None:
    """Recover an operand-pattern gate ``(mask, value)`` if one exists.

    Strategy (delta debugging over bits): starting from a known failing
    operand pair, flip each bit of each operand; if flipping bit ``b``
    makes the miscomputation stop reliably, ``b`` is part of the gate
    mask.  Deterministic pattern defects answer consistently, so a few
    confirmations per bit suffice.

    Returns None when failures look ungated (random/stuck-bit style).
    """
    if not failing_operands:
        return None

    def fails(operands: tuple) -> bool:
        for _ in range(confirmations):
            try:
                if core.execute(op, *operands) != golden_execute(op, *operands):
                    return True
            except MachineCheckError:
                return True
        return False

    base = failing_operands[0]
    if not fails(base):
        return None  # not reproducible enough to be a deterministic gate
    mask = 0
    value = 0
    for bit in range(64):
        flipped_all = tuple(x ^ (1 << bit) for x in base)
        if not fails(flipped_all):
            mask |= 1 << bit
            value |= base[0] & (1 << bit)
    if mask == 0:
        return None
    # Validate: random operands matching the gate must fail; random
    # operands violating it must pass.
    for _ in range(10):
        probe = tuple(
            (int(rng.integers(2**63)) & ~mask) | value for _ in base
        )
        if not fails(probe):
            return None
    return mask, value


def characterize(
    core: Core,
    seed: int = 0,
    probes_per_op: int = 400,
) -> DefectProfile:
    """Full black-box characterization of a suspect core."""
    rng = np.random.default_rng(seed)
    findings = probe_operations(core, rng, probes_per_op)
    implicated = frozenset(
        unit_of(f.op) for f in findings if f.failures or f.machine_checks
    )
    profile = DefectProfile(
        core_id=core.core_id, findings=findings, implicated_units=implicated
    )
    # Try gate recovery on the most deterministic-looking finding.
    candidates = [
        f for f in findings
        if f.failing_operands and 0 < f.observed_rate < 0.9
    ]
    candidates.sort(key=lambda f: f.observed_rate)
    for finding in candidates:
        gate = recover_trigger_gate(
            core, finding.op, finding.failing_operands, rng
        )
        if gate is not None:
            profile.trigger_mask, profile.trigger_value = gate
            break
    return profile


def synthesize_regression_test(
    profile: DefectProfile,
    name: str | None = None,
    n_vectors: int = 32,
    seed: int = 1,
) -> ScreeningTest | None:
    """Turn a profile into the 'new automatable test' for the corpus.

    Prefers the recovered operand gate (exact trigger vectors);
    otherwise uses the recorded failing operands as regression vectors.
    Returns None if the profile has nothing actionable.
    """
    failing = [f for f in profile.findings if f.failing_operands]
    if not failing:
        return None
    finding = max(failing, key=lambda f: f.observed_rate)
    rng = np.random.default_rng(seed)
    if profile.trigger_mask is not None:
        mask, value = profile.trigger_mask, profile.trigger_value
        vectors = [
            tuple(
                (int(rng.integers(2**63)) & ~mask) | value
                for _ in finding.failing_operands[0]
            )
            for _ in range(n_vectors)
        ]
    else:
        vectors = list(finding.failing_operands[:n_vectors])
    return make_targeted_test(
        name or f"targeted:{profile.core_id}:{finding.op}",
        finding.op,
        vectors,
        {unit_of(finding.op)},
    )
