"""Offline screening: drain the core, sweep the envelope, interrogate.

§6: "Offline screening can be more intrusive and can be scheduled to
ensure coverage of all cores, and could involve exposing CPUs to
operating conditions (f, V, T) outside normal ranges.  However,
draining a workload from the core (or CPU) to be tested can be
expensive, especially if machine-specific storage must be migrated."

The offline screener pays an explicit drain cost, then runs the full
corpus at every DVFS state plus out-of-envelope stress points —
catching environment-gated defects the online screener can never see.
Sweep order matters ("the order in which the tests are run and swept
through the (f, V, T) space can impact time-to-failure", §4), so the
sweep schedule is explicit and configurable.

The columnar analogue of the envelope sweep is the ``env_boost``
multiplier in :mod:`repro.detection.fleetscreen`, which prices the
same out-of-envelope advantage without per-core object churn.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.detection.corpus import TestCorpus
from repro.detection.screener import (
    Automation,
    DeploymentPhase,
    Level,
    Mode,
    ScreenerAxes,
    ScreeningBudget,
    ScreenResult,
)
from repro.silicon.core import Core
from repro.silicon.environment import DvfsTable, OperatingPoint, stress_points

AXES = ScreenerAxes(
    automation=Automation.AUTOMATED,
    phase=DeploymentPhase.POST_DEPLOYMENT,
    mode=Mode.OFFLINE,
    level=Level.INFRASTRUCTURE,
)


@dataclasses.dataclass
class OfflineScreenerConfig:
    """Tunables for drain-and-sweep screening.

    Attributes:
        drain_coreseconds: capacity cost of migrating work off a core
            before testing (the §6 drain-cost concern).
        repetitions_per_point: corpus repetitions at each operating
            point.
        include_stress_points: also test outside the normal envelope.
        temperatures_c: temperatures swept at each DVFS state.
    """

    drain_coreseconds: float = 120.0
    repetitions_per_point: int = 1
    include_stress_points: bool = True
    temperatures_c: tuple[float, ...] = (45.0, 85.0)


class OfflineScreener:
    """Full-corpus, full-envelope interrogation of one core at a time."""

    axes = AXES

    def __init__(
        self,
        corpus: TestCorpus | None = None,
        config: OfflineScreenerConfig | None = None,
        dvfs: DvfsTable | None = None,
    ):
        self.corpus = corpus or TestCorpus.standard()
        self.config = config or OfflineScreenerConfig()
        self.dvfs = dvfs or DvfsTable()
        self.budget = ScreeningBudget()

    def sweep_schedule(self) -> list[OperatingPoint]:
        """The explicit (f, V, T) interrogation order."""
        points = list(self.dvfs.sweep(self.config.temperatures_c))
        if self.config.include_stress_points:
            points.extend(stress_points(self.dvfs))
        return points

    def screen_core(self, core: Core) -> ScreenResult:
        """Drain, sweep, test; restores the original operating point.

        The core is marked offline for the duration (it is drained),
        then returned to service unless it confessed — in which case
        the caller's policy decides.
        """
        original_env = core.env
        was_online = core.online
        core.set_online(True)  # screener may interrogate quarantined cores
        merged = ScreenResult(
            core_id=core.core_id,
            passed=True,
            drain_cost_coreseconds=self.config.drain_coreseconds,
        )
        try:
            for point in self.sweep_schedule():
                core.set_environment(point)
                result = self.corpus.screen(
                    core, repetitions=self.config.repetitions_per_point
                )
                merged.tests_run += result.tests_run
                merged.ops_cost += result.ops_cost
                merged.machine_checks += result.machine_checks
                merged.failed_tests.extend(
                    f"{name}@{point.frequency_ghz:.1f}GHz/"
                    f"{point.voltage_v:.2f}V/{point.temperature_c:.0f}C"
                    for name in result.failed_tests
                )
                if not result.passed:
                    merged.passed = False
        finally:
            core.set_environment(original_env)
            core.set_online(was_online)
        self.budget.add(merged)
        return merged

    def screen_population(self, cores: Sequence[Core]) -> list[ScreenResult]:
        """Ensure-coverage mode: every core, one by one."""
        return [self.screen_core(core) for core in cores]
