"""Lockstep dual-core execution: the hardware-detection baseline.

§6: "Hardware-based detection can work; e.g., some systems use pairs
of cores in 'lockstep' to detect if one fails, on the assumption that
both failing at once is unlikely."  (The paper cites the ARM
Cortex-A76AE.)

:class:`LockstepPair` presents the :class:`CoreLike` interface while
executing every operation on both member cores and comparing results
per-operation — zero detection latency, at a permanent 2× compute cost
and with an unresolvable ambiguity: a mismatch says *a* core is wrong,
not *which* one.  :class:`LockstepMismatch` carries both answers so a
third opinion can break the tie (that is triple-modular redundancy,
implemented in :mod:`repro.mitigation.redundancy`).
"""

from __future__ import annotations

from repro.silicon.core import Core


class LockstepMismatch(Exception):
    """The two lockstep members disagreed on one operation."""

    def __init__(self, op: str, result_a, result_b, pair_id: str):
        self.op = op
        self.result_a = result_a
        self.result_b = result_b
        self.pair_id = pair_id
        super().__init__(
            f"lockstep mismatch on {op!r} in pair {pair_id}: "
            f"{result_a!r} != {result_b!r}"
        )


class LockstepPair:
    """Two cores executing identical operation streams.

    Implements the ``CoreLike`` protocol so any workload can run on a
    pair unchanged.  Detection is immediate (§2's best symptom class)
    but costs double.
    """

    def __init__(self, primary: Core, shadow: Core):
        if primary.core_id == shadow.core_id:
            raise ValueError("lockstep members must be distinct cores")
        self.primary = primary
        self.shadow = shadow
        self.core_id = f"pair({primary.core_id},{shadow.core_id})"
        self.mismatches = 0
        self.ops_executed = 0

    def execute(self, op: str, *operands):
        """Execute on both members; raise on disagreement.

        Raises:
            LockstepMismatch: the members disagreed.
        """
        self.ops_executed += 1
        result_a = self.primary.execute(op, *operands)
        result_b = self.shadow.execute(op, *operands)
        if result_a != result_b:
            self.mismatches += 1
            raise LockstepMismatch(op, result_a, result_b, self.core_id)
        return result_a

    def golden(self, op: str, *operands):
        return self.primary.golden(op, *operands)

    @property
    def cost_factor(self) -> float:
        """Compute amplification relative to a single core."""
        return 2.0
