"""Isolation mechanisms: removing bad cores from service.

§6.1: "It is relatively simple for existing scheduling mechanisms to
remove a machine from the resource pool; isolating a specific core
could be more challenging, because it undermines a scheduler
assumption that all machines of a specific type have identical
resources.  Shalev et al. described a mechanism for removing a faulty
core from a running operating system [Core Surprise Removal]."

Two mechanisms, with the §6.1 cost difference made measurable:

- :class:`MachineQuarantine` — pull the whole machine: simple, wastes
  ``n_cores - 1`` healthy cores' capacity.
- :class:`CoreQuarantine` — surprise-remove a single core: preserves
  capacity, pays a migration cost for the tasks running there, and
  leaves the machine *heterogeneous* (the scheduler burden is modeled
  by :mod:`repro.fleet.scheduler`).

It also implements the speculative idea at the end of §6.1: running
*safe tasks* on a mercurial core whose defective unit a task's op mix
avoids, instead of stranding the capacity.
"""

from __future__ import annotations

import dataclasses

from repro import obs
from repro.silicon.core import Core
from repro.silicon.units import unit_of


def _record_isolation(
    scope: str, target_id: str, mercurial: bool, running_tasks: int
) -> None:
    """Obs hook for isolation actions (rare; checked at call time)."""
    obs.metrics.counter(
        "detection_isolations_total",
        help="isolation actions, by scope (core = CSR-style, machine = "
             "whole box) and ground truth of the victim",
        unit="actions",
    ).inc(scope=scope, mercurial="yes" if mercurial else "no")
    with obs.tracer.span(
        "detection.quarantine", scope=scope, target=target_id,
        running_tasks=running_tasks,
    ):
        pass


@dataclasses.dataclass
class IsolationCost:
    """Accumulated capacity/migration cost of isolation actions."""

    cores_stranded: int = 0
    healthy_cores_stranded: int = 0
    migrations: int = 0
    migration_coreseconds: float = 0.0


class CoreQuarantine:
    """Single-core surprise removal (CSR-style)."""

    def __init__(self, migration_coreseconds_per_task: float = 30.0):
        self.migration_cost = migration_coreseconds_per_task
        self.cost = IsolationCost()
        self.removed: set[str] = set()

    def remove(self, core: Core, running_tasks: int = 0) -> None:
        """Take one core out of service, migrating its tasks."""
        if core.core_id in self.removed:
            return
        core.set_online(False)
        self.removed.add(core.core_id)
        self.cost.cores_stranded += 1
        if not core.is_mercurial:
            self.cost.healthy_cores_stranded += 1
        self.cost.migrations += running_tasks
        self.cost.migration_coreseconds += running_tasks * self.migration_cost
        if obs.metrics.enabled:
            _record_isolation(
                "core", core.core_id, core.is_mercurial, running_tasks
            )

    def restore(self, core: Core) -> None:
        if core.core_id not in self.removed:
            return
        core.set_online(True)
        self.removed.discard(core.core_id)
        self.cost.cores_stranded -= 1
        if not core.is_mercurial:
            self.cost.healthy_cores_stranded -= 1


class MachineQuarantine:
    """Whole-machine removal: the blunt instrument."""

    def __init__(self, migration_coreseconds_per_task: float = 30.0):
        self.migration_cost = migration_coreseconds_per_task
        self.cost = IsolationCost()
        self.removed_machines: set[str] = set()

    def remove(self, machine_id: str, cores: list[Core], running_tasks: int = 0) -> None:
        if machine_id in self.removed_machines:
            return
        self.removed_machines.add(machine_id)
        for core in cores:
            core.set_online(False)
            self.cost.cores_stranded += 1
            if not core.is_mercurial:
                self.cost.healthy_cores_stranded += 1
        self.cost.migrations += running_tasks
        self.cost.migration_coreseconds += running_tasks * self.migration_cost
        if obs.metrics.enabled:
            _record_isolation(
                "machine", machine_id,
                any(core.is_mercurial for core in cores), running_tasks,
            )


def safe_op_mix(core: Core, op_mix: dict[str, float], threshold: float = 1e-9) -> bool:
    """Would this op mix be (approximately) safe on this core?

    §6.1: "one might identify a set of tasks that can run safely on a
    given mercurial core (if these tasks avoid a defective execution
    unit) ... It is not clear, though, if we can reliably identify safe
    tasks."  This function answers with the *simulator's* knowledge of
    the defect's targeting — experiments use it as the oracle upper
    bound on what such a scheme could save, and compare against
    unit-level heuristics that only know which unit confessed.
    """
    return core.mean_rate(op_mix) < threshold


def units_implicated(failed_test_units: list[frozenset]) -> frozenset:
    """Intersect/union heuristic: which units do confessions implicate?

    With one failed test the answer is its unit set; with several, the
    union (the paper: "the mapping of instructions to possibly-defective
    hardware is non-obvious", so we stay conservative).
    """
    implicated: set = set()
    for units in failed_test_units:
        implicated |= units
    return frozenset(implicated)


def heuristic_safe_op_mix(
    implicated_units: frozenset, op_mix: dict[str, float], tolerance: float = 0.0
) -> bool:
    """Unit-avoidance heuristic: mix is safe if it avoids implicated units.

    Unlike :func:`safe_op_mix` this uses only observable information
    (which tests failed).  ``tolerance`` permits a tiny fraction of ops
    on implicated units (e.g. for mixes measured with noise).
    """
    exposure = sum(
        fraction
        for op, fraction in op_mix.items()
        if unit_of(op) in implicated_units
    )
    return exposure <= tolerance
