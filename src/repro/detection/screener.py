"""Screener framework: the §6 classification axes, as code.

"We categorize detection processes on several axes: (1) automated vs.
human; (2) pre-deployment vs. post-deployment; (3) offline vs. online;
and (4) infrastructure-level vs. application-level."

Every screener in this package declares where it sits on those axes
(:class:`ScreenerAxes`) and produces :class:`ScreenResult` records that
carry both the verdict and the *cost* — §6 is explicit that "the
non-trivial costs of the detection processes themselves" are part of
the tradeoff, so cost accounting is not optional.
"""

from __future__ import annotations

import dataclasses
import enum


class Automation(enum.Enum):
    """Who drives the screen: tooling or a human operator (§6)."""

    AUTOMATED = "automated"
    HUMAN = "human"


class DeploymentPhase(enum.Enum):
    """When the screen runs: burn-in before deployment, or in the fleet."""

    PRE_DEPLOYMENT = "pre_deployment"
    POST_DEPLOYMENT = "post_deployment"


class Mode(enum.Enum):
    """Whether the core is out of production (offline) or serving (online)."""

    OFFLINE = "offline"
    ONLINE = "online"


class Level(enum.Enum):
    """Where the signal originates: infrastructure tests or applications."""

    INFRASTRUCTURE = "infrastructure"
    APPLICATION = "application"


@dataclasses.dataclass(frozen=True)
class ScreenerAxes:
    """Position of a screener in the §6 taxonomy."""

    automation: Automation
    phase: DeploymentPhase
    mode: Mode
    level: Level

    def describe(self) -> str:
        """Render the four axis values as a compact slash-joined tag."""
        return (
            f"{self.automation.value}/{self.phase.value}/"
            f"{self.mode.value}/{self.level.value}"
        )


@dataclasses.dataclass
class ScreenResult:
    """Outcome of screening one core.

    Attributes:
        core_id: the screened core.
        passed: no test failed (does NOT prove health — §4's coverage
            caveat; a pass is only evidence).
        failed_tests: names of tests that caught a wrong answer.
        tests_run: total test executions.
        ops_cost: primitive operations spent screening (the compute
            bill).
        drain_cost_coreseconds: capacity lost to draining the core
            for offline screening (0 for online).
        machine_checks: machine checks raised during screening (also a
            confession).
    """

    core_id: str
    passed: bool
    failed_tests: list[str] = dataclasses.field(default_factory=list)
    tests_run: int = 0
    ops_cost: int = 0
    drain_cost_coreseconds: float = 0.0
    machine_checks: int = 0

    @property
    def confessed(self) -> bool:
        """Did the core fail any test or raise a machine check?"""
        return bool(self.failed_tests) or self.machine_checks > 0


@dataclasses.dataclass
class ScreeningBudget:
    """Aggregate cost accounting across a screening campaign."""

    total_ops: int = 0
    total_tests: int = 0
    total_drain_coreseconds: float = 0.0
    cores_screened: int = 0
    confessions: int = 0

    def add(self, result: ScreenResult) -> None:
        """Fold one core's screen into the campaign totals."""
        self.total_ops += result.ops_cost
        self.total_tests += result.tests_run
        self.total_drain_coreseconds += result.drain_cost_coreseconds
        self.cores_screened += 1
        if result.confessed:
            self.confessions += 1

    def render(self) -> str:
        """One-line human summary of the campaign's cost and yield."""
        return (
            f"screened {self.cores_screened} cores, "
            f"{self.total_tests} tests, {self.total_ops} ops, "
            f"{self.total_drain_coreseconds:.0f} core-seconds drained, "
            f"{self.confessions} confessions"
        )
