"""Fleet-scale proxy screening: distillation, whole-fleet screens, ride-along.

The paper's §6 sketches the production detection stack; two follow-up
papers make it concrete.  *SiliFuzz* distills a fuzzing corpus into a
small per-functional-unit proxy battery cheap enough to run everywhere;
Facebook's *Silent Data Corruptions at Scale* runs "ride-along"
screening inside production spare cycles so the fleet screens itself
continuously instead of waiting for drain windows.  This module builds
both on the columnar substrate:

- :func:`distill` scores the existing :class:`~repro.detection.corpus.TestCorpus`
  per :class:`~repro.silicon.units.FunctionalUnit` and greedily selects
  a minimal battery on the coverage/run-cost frontier;
- :class:`FleetScreener` runs a battery across an entire
  :class:`~repro.fleet.columns.FleetColumns` fleet in batched numpy
  passes — healthy cores contribute only (bulk-accounted) cost, and
  detection draws touch only the dense mercurial sidecar, so a
  million-core screen is O(mercurial), not O(cores);
- :class:`RideAlongScreener` interleaves screens into
  :class:`~repro.fleet.scheduler.FleetScheduler` spare cycles under a
  machine-second budget, emitting
  :attr:`~repro.core.events.EventKind.FLEETSCREEN_FAIL` confessions and
  :attr:`~repro.core.events.EventKind.RIDEALONG_SKIPPED` coverage
  breadcrumbs;
- :class:`RideAlongCampaign` closes the loop: confessions feed the
  suspicion weights from :mod:`repro.detection.weights` and quarantine
  flips ``columns.online`` — the same evidence→isolation loop the fleet
  simulator runs, specialized to screening-only detection so E19 can
  price screening policies against E9's online/offline baseline.

Workers screen shards zero-copy: a :class:`FleetScreener` accepts
snapshot-attached (read-only) columns from :func:`repro.fleet.shm.attach`
directly, because screening never mutates fleet state.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable

import numpy as np

from repro import obs
from repro.core.events import CeeEvent, EventKind, EventLog, Reporter
from repro.detection.corpus import ScreeningTest, TestCorpus
from repro.detection.weights import default_weights
from repro.fleet.columns import FleetColumns
from repro.silicon.defects import MachineCheckDefect
from repro.silicon.units import ALL_OPS, UNIT_OPS, FunctionalUnit

#: fixed functional-unit axis for every ops/rate vector in this module
UNIT_ORDER: tuple[FunctionalUnit, ...] = tuple(FunctionalUnit)

#: column position of each unit on the :data:`UNIT_ORDER` axis
UNIT_INDEX: dict[FunctionalUnit, int] = {
    unit: index for index, unit in enumerate(UNIT_ORDER)
}


def unit_ops_vector(tests: Iterable[ScreeningTest]) -> np.ndarray:
    """Ops applied per functional unit by a battery, on :data:`UNIT_ORDER`.

    Each test's ``approx_ops`` are split evenly across the units it
    targets — a library test that exercises three units spends a third
    of its dynamic ops in each.  This is the ops-weighting the analytic
    detection probability consumes.
    """
    ops = np.zeros(len(UNIT_ORDER))
    for test in tests:
        if not test.target_units:
            continue
        share = test.approx_ops / len(test.target_units)
        for unit in test.target_units:
            ops[UNIT_INDEX[unit]] += share
    return ops


@dataclasses.dataclass(frozen=True, slots=True)
class DistilledBattery:
    """A distilled per-unit screening battery (the SiliFuzz artifact).

    Attributes:
        tests: the selected corpus subset, in selection order.
        source_units: units the *source* corpus covered (the coverage
            denominator — a battery cannot cover units no test targets).
    """

    tests: tuple[ScreeningTest, ...]
    source_units: frozenset

    @property
    def covered_units(self) -> frozenset:
        """Units at least one selected test exercises."""
        covered: set = set()
        for test in self.tests:
            covered |= test.target_units
        return frozenset(covered)

    @property
    def total_ops(self) -> int:
        """Run cost of one full battery pass, in dynamic ops."""
        return sum(test.approx_ops for test in self.tests)

    @property
    def coverage_fraction(self) -> float:
        """Fraction of the source corpus's units this battery covers."""
        if not self.source_units:
            return 1.0
        return len(self.covered_units & self.source_units) / len(
            self.source_units
        )

    def ops_by_unit(self) -> np.ndarray:
        """Per-unit ops vector on the :data:`UNIT_ORDER` axis."""
        return unit_ops_vector(self.tests)

    def test_names(self) -> tuple[str, ...]:
        """Selected test names, in selection order (determinism probes)."""
        return tuple(test.name for test in self.tests)


def full_battery(corpus: TestCorpus) -> DistilledBattery:
    """The un-distilled corpus wrapped as a battery (the E19 baseline arm)."""
    return DistilledBattery(
        tests=tuple(corpus.tests),
        source_units=corpus.covered_units(),
    )


def distill(
    corpus: TestCorpus, min_coverage: float = 1.0
) -> DistilledBattery:
    """Greedy minimal-set corpus distillation (SiliFuzz-style).

    Repeatedly selects the test with the best marginal
    units-per-op ratio until ``min_coverage`` of the source corpus's
    unit coverage is reached.  The selection is a pure function of the
    corpus contents (names, target units, ``approx_ops``) — no RNG —
    so equal corpora distill to identical batteries; ties break toward
    the cheaper test, then lexicographically by name.

    Args:
        corpus: the source corpus to distill.
        min_coverage: fraction of the corpus's covered units the
            battery must reach (1.0 = full set cover).
    """
    if not 0.0 < min_coverage <= 1.0:
        raise ValueError("min_coverage must be in (0, 1]")
    universe = corpus.covered_units()
    target = math.ceil(min_coverage * len(universe))
    remaining = set(universe)
    pool = list(corpus.tests)
    chosen: list[ScreeningTest] = []

    with obs.tracer.span(
        "fleetscreen.distill",
        corpus_tests=len(pool), units=len(universe),
    ):
        while len(universe) - len(remaining) < target and pool:
            best: ScreeningTest | None = None
            best_key: tuple[float, int, str] | None = None
            for test in pool:
                gain = len(remaining & test.target_units)
                if gain == 0:
                    continue
                # Lower cost-per-newly-covered-unit wins; exact ties go
                # to the cheaper, then lexicographically-first test.
                key = (
                    max(test.approx_ops, 1) / gain,
                    test.approx_ops,
                    test.name,
                )
                if best_key is None or key < best_key:
                    best, best_key = test, key
            if best is None:
                break
            chosen.append(best)
            pool.remove(best)
            remaining -= best.target_units
    return DistilledBattery(tests=tuple(chosen), source_units=universe)


# --------------------------------------------------------------------
# Vectorized whole-fleet screening
# --------------------------------------------------------------------


@dataclasses.dataclass(frozen=True, slots=True)
class FleetScreenResult:
    """Outcome of one fleet screening pass.

    Attributes:
        events: confessions (``FLEETSCREEN_FAIL``) emitted this pass.
        n_screened: cores the battery actually ran on.
        cost_ops: total dynamic ops spent (bulk: every screened core
            pays one battery).
        machine_seconds: the same cost in machine-seconds at the
            screener's ops-per-core-second rate.
        confessed_flat: flat core indices that confessed.
    """

    events: tuple[CeeEvent, ...]
    n_screened: int
    cost_ops: float
    machine_seconds: float
    confessed_flat: tuple[int, ...]


class FleetScreener:
    """Runs one battery across a columnar fleet in batched numpy passes.

    Healthy cores always pass, so their screening contributes only
    cost, accounted in a single bulk expression over the screened mask.
    Detection draws run over the dense mercurial sidecar: a per-unit
    rate matrix (mercurial × unit) against the battery's per-unit ops
    vector gives each active defect's analytic confession probability
    ``1 - exp(-(rates · ops) · env_boost)`` — the same expression the
    fleet simulator uses, resolved per unit instead of by a scalar
    coverage factor, so a battery that misses a defect's unit yields
    exactly zero detection probability.

    Args:
        battery: distilled (or full) battery to run.
        env_boost: environment stress multiplier (offline-style screens
            run hotter/faster, boosting defect rates — §2's "outside
            normal operating conditions").
        ops_per_coresecond: battery execution speed, for machine-second
            cost accounting.
    """

    def __init__(
        self,
        battery: DistilledBattery,
        env_boost: float = 1.0,
        ops_per_coresecond: float = 5e6,
    ):
        self.battery = battery
        self.env_boost = env_boost
        self.ops_per_coresecond = ops_per_coresecond
        self._unit_ops = battery.ops_by_unit()
        self._obs_on = obs.enabled()
        # (mercurial × unit) per-op rate cache, keyed by rounded age so
        # week-scale aging refreshes it (the simulator's refresh cadence)
        self._rate_cache: dict[int, np.ndarray] = {}

    def _unit_rates(
        self, columns: FleetColumns, age_days: np.ndarray
    ) -> np.ndarray:
        """Per-op corruption rate per (mercurial core, unit).

        The only Python loop in the screener — over the mercurial
        sidecar (tens of entries per million cores at paper
        prevalence), never over the fleet.
        """
        n_merc = columns.n_mercurial
        week = int(np.floor(float(age_days.mean()) / 7.0)) if n_merc else 0
        cached = self._rate_cache.get(week)
        if cached is not None and cached.shape[0] == n_merc:
            return cached
        rates = np.zeros((n_merc, len(UNIT_ORDER)))
        for i in range(n_merc):
            defects = columns.merc_defects(i)
            env = columns.merc_env(i)
            age = float(age_days[i])
            for u, unit in enumerate(UNIT_ORDER):
                ops = UNIT_OPS[unit]
                mix = {op: 1.0 / len(ops) for op in ops}
                rates[i, u] = sum(
                    defect.mean_rate(mix, env, age) for defect in defects
                )
        self._rate_cache = {week: rates}
        return rates

    def screen(
        self,
        columns: FleetColumns,
        now_days: float,
        rng: np.random.Generator,
        subset: np.ndarray | None = None,
    ) -> FleetScreenResult:
        """Screen every online core (optionally restricted to a mask).

        Accepts read-only snapshot-attached columns — screening never
        writes fleet state, so shm shards screen zero-copy.

        Args:
            columns: the fleet (or an attached shard view).
            now_days: fleet time; defect ages derive from deploy days.
            rng: seeded generator for the confession draws.
            subset: optional per-core boolean mask (e.g. a shard's
                slice, or ride-along spare slots).
        """
        mask = columns.online
        if subset is not None:
            mask = mask & subset
        n_screened = int(mask.sum())
        cost_ops = float(n_screened) * self.battery.total_ops
        machine_seconds = cost_ops / self.ops_per_coresecond

        merc_flat = np.asarray(columns.merc_core, dtype=np.int64)
        events: list[CeeEvent] = []
        confessed: list[int] = []
        if merc_flat.size:
            merc_machine = columns.core_machine[merc_flat].astype(np.int64)
            age = now_days - columns.machine_deploy_day[merc_machine]
            eligible = mask[merc_flat] & (age >= columns.merc_onset)
            if eligible.any():
                rates = self._unit_rates(columns, age)
                exposure = rates @ self._unit_ops
                p_detect = 1.0 - np.exp(-exposure * self.env_boost)
                draws = rng.random(merc_flat.size) < p_detect
                hits = np.nonzero(eligible & draws)[0]
                for index in hits.tolist():
                    flat = int(merc_flat[index])
                    confessed.append(flat)
                    events.append(CeeEvent(
                        time_days=now_days,
                        machine_id=columns.machine_id(int(merc_machine[index])),
                        core_id=columns.core_id(flat),
                        kind=EventKind.FLEETSCREEN_FAIL,
                        reporter=Reporter.AUTOMATED,
                        detail="fleet screen",
                    ))
        if self._obs_on:
            self._record(n_screened, len(confessed), machine_seconds)
        return FleetScreenResult(
            events=tuple(events),
            n_screened=n_screened,
            cost_ops=cost_ops,
            machine_seconds=machine_seconds,
            confessed_flat=tuple(confessed),
        )

    def _record(
        self, n_screened: int, n_confessed: int, machine_seconds: float
    ) -> None:
        obs.metrics.counter(
            "fleetscreen_screens_total",
            help="cores screened by fleet battery passes",
            unit="cores",
        ).inc(n_screened)
        if n_confessed:
            obs.metrics.counter(
                "fleetscreen_confessions_total",
                help="FLEETSCREEN_FAIL confessions extracted by battery passes",
                unit="events",
            ).inc(n_confessed)
        obs.metrics.counter(
            "fleetscreen_machine_seconds",
            help="machine-seconds spent running fleet screening batteries",
            unit="seconds",
        ).inc(machine_seconds)
        with obs.tracer.span(
            "fleetscreen.pass",
            screened=n_screened, confessions=n_confessed,
        ):
            pass


# --------------------------------------------------------------------
# Ride-along screening in scheduler spare cycles
# --------------------------------------------------------------------


@dataclasses.dataclass(frozen=True, slots=True)
class RideAlongConfig:
    """Budget and pacing for in-production ride-along screening.

    Attributes:
        budget_fraction: fraction of the fleet's machine-seconds per
            day that screening may consume (the headline knob —
            Facebook reports sub-percent budgets sufficing).
        ops_per_coresecond: battery execution speed.
        env_boost: in-prod screens run at nominal conditions (1.0);
            raise only for modeling opportunistic stress windows.
    """

    budget_fraction: float = 0.01
    ops_per_coresecond: float = 5e6
    env_boost: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be in [0, 1]")


@dataclasses.dataclass(frozen=True, slots=True)
class RideAlongResult:
    """One ride-along pass: what was screened and what it cost.

    Attributes:
        screen: the underlying fleet-screen outcome over the slots the
            budget afforded.
        budget_machine_seconds: machine-seconds the pass was allowed.
        spent_machine_seconds: machine-seconds actually consumed
            (never exceeds the budget — the accounting invariant the
            budget tests pin).
        n_candidates: spare slots that wanted screening this pass.
        n_skipped: candidates the budget could not reach.
        events: confessions plus the ``RIDEALONG_SKIPPED`` breadcrumb
            when coverage was lost.
    """

    screen: FleetScreenResult
    budget_machine_seconds: float
    spent_machine_seconds: float
    n_candidates: int
    n_skipped: int
    events: tuple[CeeEvent, ...]


class RideAlongScreener:
    """Interleaves battery screens into scheduler spare cycles.

    Each pass takes the spare slots (online cores not running scheduled
    tasks), affords as many as the machine-second budget covers, and
    advances a round-robin cursor so successive passes sweep the whole
    fleet rather than re-screening the same low-indexed cores.  When
    the budget truncates coverage, a single aggregate
    ``RIDEALONG_SKIPPED`` breadcrumb records the lost slots so
    forensics can explain detection blind spots.
    """

    def __init__(self, battery: DistilledBattery,
                 config: RideAlongConfig | None = None):
        self.config = config or RideAlongConfig()
        self.screener = FleetScreener(
            battery,
            env_boost=self.config.env_boost,
            ops_per_coresecond=self.config.ops_per_coresecond,
        )
        self._cursor = 0
        self._obs_on = obs.enabled()

    @property
    def battery(self) -> DistilledBattery:
        return self.screener.battery

    def per_core_seconds(self) -> float:
        """Machine-seconds one core's battery pass costs."""
        return self.battery.total_ops / self.config.ops_per_coresecond

    def budget_machine_seconds(
        self, columns: FleetColumns, tick_days: float
    ) -> float:
        """The pass budget: fleet machine-seconds × fraction."""
        return (
            columns.n_machines * 86400.0 * tick_days
            * self.config.budget_fraction
        )

    def run_pass(
        self,
        columns: FleetColumns,
        now_days: float,
        tick_days: float,
        rng: np.random.Generator,
        busy: np.ndarray | None = None,
    ) -> RideAlongResult:
        """One budgeted screening pass over the scheduler's spare slots.

        Args:
            columns: the fleet.
            now_days: fleet time.
            tick_days: machine-seconds accrue over this interval.
            rng: seeded generator for confession draws.
            busy: per-core boolean mask of slots occupied by scheduled
                tasks (e.g. derived from
                :meth:`~repro.fleet.scheduler.FleetScheduler.schedule`
                placements); spare slots are the online remainder.
        """
        spare = columns.online.copy()
        if busy is not None:
            spare &= ~busy
        candidates = np.nonzero(spare)[0]
        n_candidates = int(candidates.shape[0])

        budget = self.budget_machine_seconds(columns, tick_days)
        per_core = self.per_core_seconds()
        affordable = (
            n_candidates if per_core <= 0.0
            else min(n_candidates, int(budget // per_core))
        )

        # Round-robin: rotate the candidate list so the cursor's core
        # goes first, then take what the budget affords.
        if n_candidates:
            start = int(
                np.searchsorted(candidates, self._cursor % columns.n_cores)
            ) % n_candidates
            picked = np.roll(candidates, -start)[:affordable]
            if affordable:
                self._cursor = int(picked[-1]) + 1
        else:
            picked = candidates[:0]

        subset = np.zeros(columns.n_cores, dtype=bool)
        subset[picked] = True
        screen = self.screener.screen(columns, now_days, rng, subset=subset)

        n_skipped = n_candidates - affordable
        events = list(screen.events)
        if n_skipped > 0:
            # One aggregate breadcrumb per pass; core_id=None keeps the
            # analyzer from charging any specific core for lost coverage.
            first_skipped = int(np.roll(candidates, -start)[affordable])
            machine_index = int(columns.core_machine[first_skipped])
            events.append(CeeEvent(
                time_days=now_days,
                machine_id=columns.machine_id(machine_index),
                core_id=None,
                kind=EventKind.RIDEALONG_SKIPPED,
                reporter=Reporter.AUTOMATED,
                detail=f"budget exhausted: {n_skipped} slots unscreened",
            ))
            if self._obs_on:
                obs.metrics.counter(
                    "fleetscreen_budget_skips_total",
                    help="spare slots ride-along screening could not "
                         "afford (lost coverage)",
                    unit="slots",
                ).inc(n_skipped)
        return RideAlongResult(
            screen=screen,
            budget_machine_seconds=budget,
            spent_machine_seconds=screen.machine_seconds,
            n_candidates=n_candidates,
            n_skipped=n_skipped,
            events=tuple(events),
        )


# --------------------------------------------------------------------
# The screening-only detection campaign (E19's unit of work)
# --------------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class RideAlongReport:
    """Campaign outcome: detection latency and exposure accounting.

    Attributes:
        horizon_days: simulated span.
        detected: mercurial flat index → detection (quarantine) day.
        detection_latency_days: per detected core, days from defect
            activation to quarantine.
        escaped_corruptions: expected corrupt results produced by
            active, not-yet-quarantined defects over the horizon
            (escapes-before-detection).
        machine_seconds: total screening machine-seconds spent.
        budget_machine_seconds: total machine-seconds the budget allowed.
        skipped_slots: spare slots the budget could not screen.
        n_confessions: FLEETSCREEN_FAIL events emitted.
        n_active: mercurial cores whose defects activated in-horizon.
        events: the full event log (forensics timelines).
    """

    horizon_days: float
    detected: dict[int, float]
    detection_latency_days: list[float]
    escaped_corruptions: float
    machine_seconds: float
    budget_machine_seconds: float
    skipped_slots: int
    n_confessions: int
    n_active: int
    events: EventLog

    @property
    def detected_fraction(self) -> float:
        """Fraction of in-horizon-active defects caught."""
        if self.n_active == 0:
            return 1.0
        return len(self.detected) / self.n_active

    @property
    def median_latency_days(self) -> float:
        """Median activation→quarantine latency (inf when nothing caught)."""
        if not self.detection_latency_days:
            return float("inf")
        return float(np.median(self.detection_latency_days))


class RideAlongCampaign:
    """Day-stepped screening-only campaign with the quarantine loop.

    Confessions score against the :mod:`repro.detection.weights` table
    and a core is quarantined (``columns.online`` flipped off, exactly
    like the fleet simulator's isolation) once its suspicion crosses
    the policy threshold.  Escapes-before-detection integrate each
    active, unquarantined defect's silent production-rate exposure —
    the quantity a screening budget is supposed to minimize.

    Args:
        columns: the fleet (thawed to writable state internally).
        screener: the budgeted ride-along screener to drive.
        seed: campaign RNG seed (confession draws).
        quarantine_threshold: suspicion score that isolates a core
            (the default policy's 6.0).
        exposed_ops_per_day: production ops per core-day at risk.
        busy_fraction: fraction of online slots occupied by scheduled
            production tasks each tick (they are not spare, so
            ride-along cannot screen them that tick).
    """

    def __init__(
        self,
        columns: FleetColumns,
        screener: RideAlongScreener,
        seed: int = 0,
        quarantine_threshold: float = 6.0,
        exposed_ops_per_day: float = 2e7,
        busy_fraction: float = 0.5,
    ):
        self.columns = columns.thaw() if columns.read_only else columns
        self.screener = screener
        self.rng = np.random.default_rng(seed)
        self.quarantine_threshold = quarantine_threshold
        self.exposed_ops_per_day = exposed_ops_per_day
        self.busy_fraction = busy_fraction
        self.weights = default_weights()

    def _production_silent_rates(self) -> np.ndarray:
        """Per-mercurial silent per-op rate under a uniform prod mix.

        Machine-check defects are excluded: they crash loudly instead
        of leaking corrupt results, so they don't count as escapes.
        """
        columns = self.columns
        n_merc = columns.n_mercurial
        mix = {op: 1.0 / len(ALL_OPS) for op in ALL_OPS}
        rates = np.zeros(n_merc)
        for i in range(n_merc):
            env = columns.merc_env(i)
            rates[i] = sum(
                defect.mean_rate(mix, env, 0.0)
                for defect in columns.merc_defects(i)
                if not isinstance(defect, MachineCheckDefect)
            )
        return rates

    def run(
        self, horizon_days: float, tick_days: float = 1.0
    ) -> RideAlongReport:
        """Run the campaign; returns latency/exposure accounting."""
        columns = self.columns
        merc_flat = np.asarray(columns.merc_core, dtype=np.int64)
        merc_machine = columns.core_machine[merc_flat].astype(np.int64)
        deploy = columns.machine_deploy_day[merc_machine]
        silent_rates = self._production_silent_rates()

        events = EventLog()
        scores: dict[int, float] = {}
        detected: dict[int, float] = {}
        latencies: list[float] = []
        escaped = 0.0
        machine_seconds = 0.0
        budget_seconds = 0.0
        skipped = 0
        confessions = 0
        flat_to_merc = {
            int(flat): index for index, flat in enumerate(merc_flat.tolist())
        }

        n_ticks = max(1, int(round(horizon_days / tick_days)))
        for step in range(n_ticks):
            now = step * tick_days
            # Exposure: every active, still-online defect leaks expected
            # corruptions into production until quarantined.
            if merc_flat.size:
                age = now - deploy
                active = (age >= columns.merc_onset) & columns.online[merc_flat]
                escaped += float(
                    (silent_rates[active]
                     * self.exposed_ops_per_day * tick_days).sum()
                )
            # Production tasks occupy a deterministic prefix of online
            # slots (the scheduler consumes free slots in flat order).
            online_flat = np.nonzero(columns.online)[0]
            n_busy = int(online_flat.shape[0] * self.busy_fraction)
            busy = np.zeros(columns.n_cores, dtype=bool)
            busy[online_flat[:n_busy]] = True

            result = self.screener.run_pass(
                columns, now, tick_days, self.rng, busy=busy,
            )
            events.extend(result.events)
            machine_seconds += result.spent_machine_seconds
            budget_seconds += result.budget_machine_seconds
            skipped += result.n_skipped
            confessions += len(result.screen.confessed_flat)

            for flat in result.screen.confessed_flat:
                weight = self.weights[EventKind.FLEETSCREEN_FAIL]
                scores[flat] = scores.get(flat, 0.0) + weight
                if (scores[flat] >= self.quarantine_threshold
                        and flat not in detected):
                    columns.online[flat] = False
                    detected[flat] = now
                    merc_index = flat_to_merc[flat]
                    activation = float(
                        deploy[merc_index] + columns.merc_onset[merc_index]
                    )
                    latencies.append(now - max(activation, 0.0))

        # Defects that activated inside the horizon (the denominator).
        if merc_flat.size:
            final_age = horizon_days - deploy
            n_active = int((final_age >= columns.merc_onset).sum())
        else:
            n_active = 0
        return RideAlongReport(
            horizon_days=horizon_days,
            detected=detected,
            detection_latency_days=latencies,
            escaped_corruptions=escaped,
            machine_seconds=machine_seconds,
            budget_machine_seconds=budget_seconds,
            skipped_slots=skipped,
            n_confessions=confessions,
            n_active=n_active,
            events=events,
        )


def screen_shard(
    columns: FleetColumns,
    battery: DistilledBattery,
    shard: int,
    n_shards: int,
    now_days: float,
    seed: int,
    env_boost: float = 1.0,
) -> FleetScreenResult:
    """Screen one machine-contiguous shard of a fleet (worker kernel).

    Designed for :func:`repro.engine.runner.run_fleet_trials` fan-out:
    each worker attaches the shm snapshot zero-copy and screens its
    machine range.  Sharding by machine keeps every core of a machine
    in exactly one shard, so shard results concatenate into exactly a
    whole-fleet screen.
    """
    if not 0 <= shard < n_shards:
        raise ValueError("shard index out of range")
    bounds = np.linspace(0, columns.n_machines, n_shards + 1).astype(int)
    lo_machine, hi_machine = int(bounds[shard]), int(bounds[shard + 1])
    lo = int(columns.machine_core_start[lo_machine])
    hi = int(columns.machine_core_start[hi_machine])
    subset = np.zeros(columns.n_cores, dtype=bool)
    subset[lo:hi] = True
    screener = FleetScreener(battery, env_boost=env_boost)
    rng = np.random.default_rng(seed)
    return screener.screen(columns, now_days, rng, subset=subset)


__all__ = [
    "DistilledBattery",
    "FleetScreenResult",
    "FleetScreener",
    "RideAlongCampaign",
    "RideAlongConfig",
    "RideAlongReport",
    "RideAlongResult",
    "RideAlongScreener",
    "UNIT_ORDER",
    "distill",
    "full_battery",
    "screen_shard",
    "unit_ops_vector",
]
