"""Detection and isolation of mercurial cores (paper §6).

Screeners are classified on the paper's four axes (automated/human,
pre/post-deployment, offline/online, infrastructure/application); see
:mod:`repro.detection.screener`.  The pieces:

- :mod:`repro.detection.corpus` — the screening-test corpus (ISA
  torture programs + real-library tests) and the targeted-test
  workflow for newly root-caused defect modes.
- :mod:`repro.detection.online` / :mod:`repro.detection.offline` —
  spare-cycle screening vs drain-and-sweep interrogation.
- :mod:`repro.detection.signals` — crash/MCE/sanitizer log analysis
  into per-core suspicion.
- :mod:`repro.detection.sanitizer` — the sanitizer signal model.
- :mod:`repro.detection.lockstep` — dual-core lockstep, the hardware
  baseline.
- :mod:`repro.detection.quarantine` — core- and machine-level
  isolation with cost accounting, plus safe-task analysis (§6.1).
- :mod:`repro.detection.fleetscreen` — SiliFuzz-style corpus
  distillation, vectorized whole-fleet screening over the columnar
  substrate, and budgeted ride-along screening in scheduler spare
  cycles.
"""

from repro.detection.characterize import (
    DefectProfile,
    OpFinding,
    characterize,
    probe_operations,
    recover_trigger_gate,
    synthesize_regression_test,
)
from repro.detection.corpus import ScreeningTest, TestCorpus, make_targeted_test
from repro.detection.fleetscreen import (
    DistilledBattery,
    FleetScreener,
    FleetScreenResult,
    RideAlongCampaign,
    RideAlongConfig,
    RideAlongReport,
    RideAlongScreener,
    distill,
    full_battery,
    screen_shard,
)
from repro.detection.lockstep import LockstepMismatch, LockstepPair
from repro.detection.offline import OfflineScreener, OfflineScreenerConfig
from repro.detection.online import OnlineScreener, OnlineScreenerConfig
from repro.detection.quarantine import (
    CoreQuarantine,
    IsolationCost,
    MachineQuarantine,
    heuristic_safe_op_mix,
    safe_op_mix,
    units_implicated,
)
from repro.detection.sanitizer import SanitizerModel
from repro.detection.screener import (
    Automation,
    DeploymentPhase,
    Level,
    Mode,
    ScreenerAxes,
    ScreeningBudget,
    ScreenResult,
)
from repro.detection.signals import DEFAULT_WEIGHTS, SignalAnalyzer, SignalAnalyzerConfig

__all__ = [
    "DefectProfile",
    "OpFinding",
    "characterize",
    "probe_operations",
    "recover_trigger_gate",
    "synthesize_regression_test",
    "ScreeningTest",
    "TestCorpus",
    "make_targeted_test",
    "DistilledBattery",
    "FleetScreener",
    "FleetScreenResult",
    "RideAlongCampaign",
    "RideAlongConfig",
    "RideAlongReport",
    "RideAlongScreener",
    "distill",
    "full_battery",
    "screen_shard",
    "LockstepMismatch",
    "LockstepPair",
    "OfflineScreener",
    "OfflineScreenerConfig",
    "OnlineScreener",
    "OnlineScreenerConfig",
    "CoreQuarantine",
    "IsolationCost",
    "MachineQuarantine",
    "heuristic_safe_op_mix",
    "safe_op_mix",
    "units_implicated",
    "SanitizerModel",
    "Automation",
    "DeploymentPhase",
    "Level",
    "Mode",
    "ScreenerAxes",
    "ScreeningBudget",
    "ScreenResult",
    "DEFAULT_WEIGHTS",
    "SignalAnalyzer",
    "SignalAnalyzerConfig",
]
