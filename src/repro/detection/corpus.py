"""The screening-test corpus.

"We have a modest corpus of code serving as test cases, selected based
on intuition we developed from experience with production incidents,
core-dump evidence, and failure-mode guesses.  This corpus includes
real-code snippets, interesting libraries (e.g., compression, hash,
math, cryptography, copying, locking, ...), and specially-written
tests." (§2)

Our corpus has the same two species:

- *specially-written tests*: ISA torture programs targeting one
  functional unit each, run in the VM and compared against a cached
  golden run;
- *library tests*: real workloads (AES cross-check, compression
  round-trip, locked counter) run on the suspect core with results
  compared against a healthy reference core.

Each test knows which units it exercises, so coverage analysis can
report which defect classes a campaign could even have seen (§4's
"depends on test coverage" made measurable).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable

import numpy as np

from repro.detection.screener import ScreenResult
from repro.silicon.assembler import assemble
from repro.silicon.core import Core
from repro.silicon.errors import MachineCheckError
from repro.silicon.units import FunctionalUnit
from repro.silicon.vm import Vm, VmResult
from repro.workloads.base import digest_bytes, digest_ints
from repro.workloads.compression import compress, decompress
from repro.workloads.crypto import encrypt_ecb
from repro.workloads.locking import run_locked_counter


@dataclasses.dataclass
class ScreeningTest:
    """One corpus entry: a pass/fail probe of specific units.

    ``target_units`` and ``approx_ops`` are the entire input to corpus
    distillation (:func:`repro.detection.fleetscreen.distill`): the
    greedy cover only needs to know what a test sees and what it costs.
    """

    name: str
    target_units: frozenset
    _runner: Callable[[Core], bool]
    approx_ops: int = 0

    def run(self, core: Core) -> bool:
        """True = passed (no corruption observed)."""
        return self._runner(core)


def _vm_digest(result: VmResult) -> int:
    if result.trap is not None:
        return digest_bytes(result.trap.encode())
    return digest_ints(result.registers) ^ digest_ints(result.memory)


def _program_test(
    name: str,
    units: Iterable[FunctionalUnit],
    source: str,
    memory_image: list[int] | None = None,
) -> ScreeningTest:
    """Build a VM-program test with a lazily-cached golden digest."""
    program = assemble(source)
    memory_image = memory_image or []
    golden_digest: list[int | None] = [None]

    def runner(core: Core) -> bool:
        if golden_digest[0] is None:
            reference = Core("oracle/screen", rng=np.random.default_rng(0))  # repro: noqa-DET004 -- golden-oracle core: healthy reference with no defects, its rng is never consulted
            golden = Vm(reference).run(program, memory_image=memory_image)
            if golden.trap is not None:
                raise AssertionError(
                    f"screening program {name} traps on a healthy core: "
                    f"{golden.trap}"
                )
            golden_digest[0] = _vm_digest(golden)
        observed = Vm(core).run(program, memory_image=memory_image)
        return _vm_digest(observed) == golden_digest[0]

    # Approximate dynamic op count from one golden run.
    reference = Core("oracle/cost", rng=np.random.default_rng(0))  # repro: noqa-DET004 -- golden-oracle core for op-count estimation; healthy, rng never consulted
    golden_run = Vm(reference).run(program, memory_image=memory_image)
    return ScreeningTest(
        name=name,
        target_units=frozenset(units),
        _runner=runner,
        approx_ops=reference.ops_executed if golden_run else 0,
    )


# --------------------------------------------------------------------
# Specially-written torture programs, one per functional unit
# --------------------------------------------------------------------

def _alu_torture(seed: int, iterations: int = 160) -> str:
    return f"""
        li r1, {0x9E3779B97F4A7C15 ^ (seed * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF}
        li r2, 0                ; accumulator
        li r4, {iterations}
        li r5, 1
        li r6, 0x5DEECE66D
    loop:
        xor r1, r1, r2
        add r2, r2, r1
        rotl r1, r1, r5
        or r3, r1, r6
        and r3, r3, r2
        sub r2, r2, r3
        shl r3, r1, r5
        shr r7, r1, r5
        xor r2, r2, r3
        xor r2, r2, r7
        popcnt r3, r2
        add r2, r2, r3
        sub r4, r4, r5
        bne r4, r0, loop
        halt
    """


def _muldiv_torture(seed: int, iterations: int = 120) -> str:
    return f"""
        li r1, {(seed * 0x9E3779B1 + 12345) & 0xFFFFFFFF | 1}
        li r2, 0
        li r4, {iterations}
        li r5, 1
        li r6, 0x5DEECE66D
        li r7, 0xFFFF
    loop:
        mul r1, r1, r6
        add r1, r1, r5
        mulh r3, r1, r6
        add r2, r2, r3
        and r3, r1, r7
        add r3, r3, r5        ; never zero
        div r8, r2, r3
        mod r9, r2, r3
        add r2, r2, r8
        xor r2, r2, r9
        sub r4, r4, r5
        bne r4, r0, loop
        halt
    """


def _vector_torture(seed: int, iterations: int = 60) -> str:
    # memory 0..63 pre-seeded by the memory image
    return f"""
        li r1, 0            ; base a
        li r2, 8            ; base b
        li r4, {iterations}
        li r5, 1
        li r6, 16           ; scratch base
    loop:
        vld v0, r1
        vld v1, r2
        vadd v2, v0, v1
        vmul v3, v2, v1
        vxor v2, v3, v0
        vdot r7, v2, v1
        add r3, r3, r7
        vsum r8, v3
        xor r3, r3, r8
        vst r6, v2
        vld v4, r6
        vsub v5, v4, v0
        vor v0, v5, v1
        sub r4, r4, r5
        bne r4, r0, loop
        halt
    """


def _copy_torture(seed: int, iterations: int = 40) -> str:
    return f"""
        li r1, 0             ; src
        li r2, 128           ; dst
        li r4, {iterations}
        li r5, 1
    loop:
        cpy r2, r1, 64
        cpy r1, r2, 64
        ld r6, r1
        add r3, r3, r6
        add r1, r1, r5
        sub r1, r1, r5
        sub r4, r4, r5
        bne r4, r0, loop
        ; fold a checksum of the copied region
        li r1, 128
        li r4, 64
    sumloop:
        ld r6, r1
        add r3, r3, r6
        add r1, r1, r5
        sub r4, r4, r5
        bne r4, r0, sumloop
        halt
    """


def _sbox_walk(seed: int) -> str:
    # Exhaustive: every S-box and inverse-S-box entry, folded.
    return """
        li r1, 0
        li r2, 0
        li r4, 256
        li r5, 1
    loop:
        sbox r3, r1
        add r2, r2, r3
        isbox r6, r3
        xor r2, r2, r6
        gfmul r7, r3, r1
        add r2, r2, r7
        add r1, r1, r5
        sub r4, r4, r5
        bne r4, r0, loop
        halt
    """


def _atomics_torture(seed: int, iterations: int = 80) -> str:
    return f"""
        li r1, 10            ; lock cell address
        li r2, 11            ; counter cell address
        li r4, {iterations}
        li r5, 1
        li r7, 7
    loop:
        cas r6, r1, r0, 1    ; try lock: expect 0, set 1
        fadd r8, r2, r5      ; counter += 1
        fadd r8, r2, r7      ; counter += 7
        xchg r9, r1, r0      ; unlock
        add r3, r3, r8
        xor r3, r3, r9
        sub r4, r4, r5
        bne r4, r0, loop
        halt
    """


def _branch_torture(seed: int, iterations: int = 120) -> str:
    return f"""
        li r1, {(seed * 2654435761 + 1) & 0xFFFFFFFF}
        li r2, 0
        li r4, {iterations}
        li r5, 1
        li r6, 0x5DEECE66D
        li r7, 3
    loop:
        mul r1, r1, r6
        add r1, r1, r5
        mod r8, r1, r7
        beq r8, r0, tag0
        blt r8, r7, tag1
        jmp tail
    tag0:
        add r2, r2, r5
        jmp tail
    tag1:
        shl r2, r2, r5
        xor r2, r2, r1
    tail:
        sub r4, r4, r5
        bne r4, r0, loop
        halt
    """


def _vector_memory_image(seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(x) for x in rng.integers(0, 2**62, size=256, dtype=np.uint64)]


# --------------------------------------------------------------------
# Library tests (real-code snippets)
# --------------------------------------------------------------------

def _aes_cross_check(seed: int) -> ScreeningTest:
    """Encrypt on the suspect core, compare with a healthy ciphertext.

    This is the test that catches the self-inverting AES defect, which
    the round-trip self-check cannot (E3).
    """
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=64, dtype=np.uint8).tobytes()
    key = rng.integers(0, 256, size=16, dtype=np.uint8).tobytes()
    expected: list[bytes | None] = [None]

    def runner(core: Core) -> bool:
        if expected[0] is None:
            reference = Core("oracle/aes", rng=np.random.default_rng(0))  # repro: noqa-DET004 -- golden-oracle core: healthy reference, rng never consulted
            expected[0] = encrypt_ecb(reference, data, key)
        return encrypt_ecb(core, data, key) == expected[0]

    return ScreeningTest(
        name=f"lib:aes_cross_check/{seed}",
        target_units=frozenset({FunctionalUnit.CRYPTO, FunctionalUnit.ALU}),
        _runner=runner,
        approx_ops=5000,
    )


def _compression_roundtrip(seed: int) -> ScreeningTest:
    rng = np.random.default_rng(seed)
    pieces = []
    for _ in range(20):
        run = bytes([int(rng.integers(65, 91))]) * int(rng.integers(2, 10))
        noise = rng.integers(0, 256, size=6, dtype=np.uint8).tobytes()
        pieces.append(run + noise)
    data = b"".join(pieces)
    expected: list[int | None] = [None]

    def runner(core: Core) -> bool:
        if expected[0] is None:
            reference = Core("oracle/lz", rng=np.random.default_rng(0))  # repro: noqa-DET004 -- golden-oracle core: healthy reference, rng never consulted
            expected[0] = digest_bytes(compress(reference, data))
        try:
            blob = compress(core, data)
            if digest_bytes(blob) != expected[0]:
                return False
            return decompress(core, blob) == data
        except Exception:
            return False

    return ScreeningTest(
        name=f"lib:compression/{seed}",
        target_units=frozenset(
            {FunctionalUnit.BRANCH, FunctionalUnit.ALU, FunctionalUnit.LOAD_STORE}
        ),
        _runner=runner,
        approx_ops=20000,
    )


def _locking_test(seed: int) -> ScreeningTest:
    def runner(core: Core) -> bool:
        shared, hung = run_locked_counter(core, n_threads=3, iterations=20)
        return not hung and shared.counter == 60

    return ScreeningTest(
        name=f"lib:locking/{seed}",
        target_units=frozenset(
            {FunctionalUnit.ATOMICS, FunctionalUnit.ALU, FunctionalUnit.LOAD_STORE}
        ),
        _runner=runner,
        approx_ops=1500,
    )


def make_targeted_test(
    name: str,
    op: str,
    operand_sets: list[tuple],
    units: Iterable[FunctionalUnit],
) -> ScreeningTest:
    """Build a 'new automatable test' from a root-caused failure mode.

    §6 describes extracting confessions "often after first developing a
    new automatable test": once an incident reveals *which operands*
    miscompute (e.g. an operand-pattern defect that generic torture
    misses), engineers encode exactly those operands as a regression
    test and add it to the corpus.  The golden answers come from host
    semantics, not from any core.
    """
    if not operand_sets:
        raise ValueError("need at least one operand set")

    def runner(core: Core) -> bool:
        for operands in operand_sets:
            if core.execute(op, *operands) != core.golden(op, *operands):
                return False
        return True

    return ScreeningTest(
        name=name,
        target_units=frozenset(units),
        _runner=runner,
        approx_ops=len(operand_sets),
    )


# --------------------------------------------------------------------
# Corpus assembly
# --------------------------------------------------------------------

class TestCorpus:
    """A collection of screening tests with coverage accounting."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, tests: list[ScreeningTest]):
        if not tests:
            raise ValueError("empty corpus")
        self.tests = tests

    @classmethod
    def standard(cls, seeds: Iterable[int] = (1, 2)) -> "TestCorpus":
        """The default corpus: per-unit torture + library tests.

        Several seeds per program vary data patterns, because §2 warns
        "data patterns can affect corruption rates".
        """
        tests: list[ScreeningTest] = []
        for seed in seeds:
            tests.extend(
                [
                    _program_test(
                        f"isa:alu/{seed}", {FunctionalUnit.ALU},
                        _alu_torture(seed),
                    ),
                    _program_test(
                        f"isa:muldiv/{seed}", {FunctionalUnit.MUL_DIV},
                        _muldiv_torture(seed),
                    ),
                    _program_test(
                        f"isa:vector/{seed}", {FunctionalUnit.VECTOR},
                        _vector_torture(seed),
                        memory_image=_vector_memory_image(seed),
                    ),
                    _program_test(
                        f"isa:copy/{seed}", {FunctionalUnit.LOAD_STORE},
                        _copy_torture(seed),
                        memory_image=_vector_memory_image(seed + 100),
                    ),
                    _program_test(
                        f"isa:crypto/{seed}", {FunctionalUnit.CRYPTO},
                        _sbox_walk(seed),
                    ),
                    _program_test(
                        f"isa:atomics/{seed}", {FunctionalUnit.ATOMICS},
                        _atomics_torture(seed),
                    ),
                    _program_test(
                        f"isa:branch/{seed}", {FunctionalUnit.BRANCH},
                        _branch_torture(seed),
                    ),
                    _aes_cross_check(seed),
                    _compression_roundtrip(seed),
                    _locking_test(seed),
                ]
            )
        return cls(tests)

    @classmethod
    def minimal(cls) -> "TestCorpus":
        """A cheap corpus (one seed, no library tests) for online use."""
        seed = 1
        return cls(
            [
                _program_test(f"isa:alu/{seed}", {FunctionalUnit.ALU},
                              _alu_torture(seed, iterations=60)),
                _program_test(f"isa:muldiv/{seed}", {FunctionalUnit.MUL_DIV},
                              _muldiv_torture(seed, iterations=40)),
                _program_test(f"isa:vector/{seed}", {FunctionalUnit.VECTOR},
                              _vector_torture(seed, iterations=20),
                              memory_image=_vector_memory_image(seed)),
                _program_test(f"isa:copy/{seed}", {FunctionalUnit.LOAD_STORE},
                              _copy_torture(seed, iterations=12),
                              memory_image=_vector_memory_image(seed + 100)),
                _program_test(f"isa:crypto/{seed}", {FunctionalUnit.CRYPTO},
                              _sbox_walk(seed)),
                _program_test(f"isa:atomics/{seed}", {FunctionalUnit.ATOMICS},
                              _atomics_torture(seed, iterations=30)),
                _program_test(f"isa:branch/{seed}", {FunctionalUnit.BRANCH},
                              _branch_torture(seed, iterations=40)),
            ]
        )

    def add_test(self, test: ScreeningTest) -> None:
        """Grow the corpus — §6's 'expanded to new classes of CEEs'."""
        self.tests.append(test)

    def covered_units(self) -> frozenset:
        """Union of every test's target units — what this corpus can see."""
        covered: set = set()
        for test in self.tests:
            covered |= test.target_units
        return frozenset(covered)

    def coverage_gaps(self) -> frozenset:
        """Functional units no test targets: defects there are invisible."""
        return frozenset(set(FunctionalUnit) - self.covered_units())

    def total_ops(self) -> int:
        """Run cost of one full battery pass, in primitive ops."""
        return sum(test.approx_ops for test in self.tests)

    def screen(self, core: Core, repetitions: int = 1) -> ScreenResult:
        """Run the whole corpus ``repetitions`` times against one core."""
        result = ScreenResult(core_id=core.core_id, passed=True)
        for _ in range(repetitions):
            for test in self.tests:
                result.tests_run += 1
                result.ops_cost += test.approx_ops
                try:
                    ok = test.run(core)
                except MachineCheckError:
                    result.machine_checks += 1
                    result.passed = False
                    continue
                except Exception:
                    # A test that *crashes* on the suspect core is a
                    # confession too — §2's "wrong answers detected
                    # nearly immediately through ... exceptions".
                    ok = False
                if not ok:
                    result.failed_tests.append(test.name)
                    result.passed = False
        return result
