"""Online screening: spare-cycle testing of live cores.

§6: "Online screening, when it can be done in a way that does not
impact concurrent workloads, is free (except for power costs), but
cannot always provide complete coverage of all cores or all symptoms."

The online screener runs a cheap corpus opportunistically: each
scheduling round it gets a *duty cycle* worth of spare capacity and
screens as many cores as fit, in round-robin order.  It tests at the
machine's current operating point (it cannot sweep f/V/T — that is the
offline screener's privilege), so environment-gated defects can hide
from it indefinitely.

This screener walks :class:`~repro.silicon.core.Core` objects one at a
time; its fleet-scale counterpart over columnar fleets is
:mod:`repro.detection.fleetscreen` (vectorized passes, distilled
batteries, explicit machine-second budgets).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

from repro.detection.corpus import TestCorpus
from repro.detection.screener import (
    Automation,
    DeploymentPhase,
    Level,
    Mode,
    ScreenerAxes,
    ScreeningBudget,
    ScreenResult,
)
from repro.silicon.core import Core

AXES = ScreenerAxes(
    automation=Automation.AUTOMATED,
    phase=DeploymentPhase.POST_DEPLOYMENT,
    mode=Mode.ONLINE,
    level=Level.INFRASTRUCTURE,
)


@dataclasses.dataclass
class OnlineScreenerConfig:
    """Tunables for the spare-cycle screener.

    Attributes:
        duty_cycle: fraction of a core-day of spare capacity available
            per core per round (0.01 = 1% of cycles devoted to tests,
            the knob §4 calls "how many cycles devoted to testing").
        ops_per_coreday: calibration constant converting duty cycle to
            an op budget per round.
    """

    duty_cycle: float = 0.01
    ops_per_coreday: float = 5e6

    def ops_budget_per_core(self) -> int:
        """Ops one core may spend on tests in a single round."""
        return int(self.duty_cycle * self.ops_per_coreday)


class OnlineScreener:
    """Round-robin spare-cycle screening over a population of cores."""

    axes = AXES

    def __init__(
        self,
        corpus: TestCorpus | None = None,
        config: OnlineScreenerConfig | None = None,
    ):
        self.corpus = corpus or TestCorpus.minimal()
        self.config = config or OnlineScreenerConfig()
        self.budget = ScreeningBudget()
        self._cursor = 0

    def screen_core(self, core: Core) -> ScreenResult:
        """Screen one core within this round's op budget."""
        ops_budget = self.config.ops_budget_per_core()
        corpus_cost = max(self.corpus.total_ops(), 1)
        repetitions = max(1, ops_budget // corpus_cost)
        result = self.corpus.screen(core, repetitions=repetitions)
        self.budget.add(result)
        return result

    def round(
        self, cores: Sequence[Core], fraction: float = 1.0
    ) -> list[ScreenResult]:
        """Screen a rotating subset of ``cores``.

        ``fraction`` models contention: when the fleet is busy, fewer
        cores get spare cycles this round.  Quarantined/offline cores
        are skipped (they are the offline screener's job).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        count = max(1, int(len(cores) * fraction))
        results = []
        for offset in range(count):
            core = cores[(self._cursor + offset) % len(cores)]
            if not core.online:
                continue
            results.append(self.screen_core(core))
        self._cursor = (self._cursor + count) % max(len(cores), 1)
        return results

    def confessions(self, results: Iterable[ScreenResult]) -> list[ScreenResult]:
        """Filter a round's results down to the cores that confessed."""
        return [result for result in results if result.confessed]
