"""End-to-end integrity: checksummed writes and replicated updates.

§6/§7: "Many of our applications already checked for SDCs; this
checking can also detect CEEs, at minimal extra cost.  For example, the
Colossus file system protects the write path with end-to-end checksums.
The Spanner distributed database uses checksums in multiple ways.
Other systems execute the same update logic, in parallel, at several
replicas ... and we can exploit these dual computations to detect
CEEs."  §7 frames this as the End-to-End Argument: "correctness is
often best checked at the endpoints rather than in lower-level
infrastructure."

Two mechanisms:

- :class:`ChecksummedStore` — the Colossus-style write path: the
  *client* computes a checksum on its own core before handing data to
  a (possibly mercurial) server core; reads re-verify at the client.
- :class:`ReplicatedStateMachine` — the Spanner-style dual computation:
  the same update executes on every replica's core; divergent state
  digests expose the corrupting replica.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.workloads.base import CoreLike
from repro.workloads.copying import copy_bytes
from repro.workloads.hashing import crc64


class IntegrityError(RuntimeError):
    """An end-to-end check failed."""


@dataclasses.dataclass
class E2eStats:
    """End-to-end check tallies: operations seen, failures caught."""

    writes: int = 0
    reads: int = 0
    write_failures_caught: int = 0
    read_failures_caught: int = 0


class ChecksummedStore:
    """A blob store whose write path crosses a server core.

    The client core computes the checksum; the server core moves the
    bytes.  Corruption on the server's copy path is caught either at
    write-verify time or at read time — never silently returned.
    """

    def __init__(self, client_core: CoreLike, server_core: CoreLike,
                 verify_on_write: bool = True):
        self.client_core = client_core
        self.server_core = server_core
        self.verify_on_write = verify_on_write
        self.stats = E2eStats()
        self._blobs: dict[str, bytes] = {}
        self._checksums: dict[str, int] = {}

    def put(self, name: str, data: bytes) -> None:
        """Write with client-side checksum (and optional write-verify).

        Raises:
            IntegrityError: write-verify found the stored bytes corrupt.
        """
        self.stats.writes += 1
        checksum = crc64(self.client_core, data)
        stored = copy_bytes(self.server_core, data)
        self._blobs[name] = stored
        self._checksums[name] = checksum
        if self.verify_on_write:
            observed = crc64(self.client_core, stored)
            if observed != checksum:
                self.stats.write_failures_caught += 1
                # Drop the corrupt blob: better missing than wrong.
                del self._blobs[name]
                del self._checksums[name]
                raise IntegrityError(f"write-verify failed for {name!r}")

    def get(self, name: str) -> bytes:
        """Read and verify.

        Raises:
            KeyError: unknown blob.
            IntegrityError: stored data no longer matches its checksum.
        """
        self.stats.reads += 1
        data = self._blobs[name]
        fetched = copy_bytes(self.server_core, data)
        observed = crc64(self.client_core, fetched)
        if observed != self._checksums[name]:
            self.stats.read_failures_caught += 1
            raise IntegrityError(f"checksum mismatch reading {name!r}")
        return fetched


@dataclasses.dataclass
class ReplicaDivergence:
    """One detected divergence: which replica disagreed on which update."""

    update_index: int
    minority_replicas: list[int]


class ReplicatedStateMachine:
    """The same update logic executed in parallel at several replicas.

    State is a dict of int cells; updates are ``update(core, state) ->
    state`` closures that must route their arithmetic through the given
    core.  After each update the replicas' state digests are compared;
    a minority replica is flagged (and its state repaired from the
    majority), turning the existing replication into free CEE
    detection, as §7 describes.
    """

    def __init__(self, cores: list[CoreLike]):
        if len(cores) < 2:
            raise ValueError("replication needs at least two replicas")
        self.cores = list(cores)
        self.states: list[dict[str, int]] = [{} for _ in cores]
        self.divergences: list[ReplicaDivergence] = []
        self._update_index = 0

    def apply(
        self, update: Callable[[CoreLike, dict[str, int]], dict[str, int]]
    ) -> dict[str, int]:
        """Apply one update everywhere; detect and repair divergence.

        Returns the majority state.

        Raises:
            IntegrityError: no majority (more than half the replicas
                disagree with each other).
        """
        new_states = [
            update(core, dict(state))
            for core, state in zip(self.cores, self.states)
        ]
        digests = [tuple(sorted(state.items())) for state in new_states]
        counts: dict[tuple, int] = {}
        for digest in digests:
            counts[digest] = counts.get(digest, 0) + 1
        majority_digest, majority_count = max(counts.items(), key=lambda kv: kv[1])
        if majority_count <= len(self.cores) // 2:
            raise IntegrityError(
                f"no majority at update {self._update_index}"
            )
        minority = [
            index for index, digest in enumerate(digests)
            if digest != majority_digest
        ]
        if minority:
            self.divergences.append(
                ReplicaDivergence(self._update_index, minority)
            )
        majority_state = dict(majority_digest)
        # Repair: minority replicas resynchronize from the majority.
        self.states = [dict(majority_state) for _ in self.cores]
        self._update_index += 1
        return majority_state

    def suspect_replicas(self) -> dict[int, int]:
        """Divergence counts per replica — recidivism for replicas."""
        counts: dict[int, int] = {}
        for divergence in self.divergences:
            for replica in divergence.minority_replicas:
                counts[replica] = counts.get(replica, 0) + 1
        return counts
