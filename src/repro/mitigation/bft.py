"""Quorum replication against mercurial replicas (§8's BFT pointer).

"Byzantine fault tolerance has been proposed as a means for providing
resilience against arbitrary non-fail-stop errors; BFT might be
applicable to CEEs in some cases."

A mercurial core is a natural (if unintentional) Byzantine replica: it
returns arbitrary wrong answers while staying live.  This module
implements the client-side quorum pattern: ``n = 3f + 1`` replicas each
execute every command on their own core and return a result
certificate (a digest of the post-state); the client commits a result
once ``f + 1`` matching certificates arrive — a matching quorum is
guaranteed to contain at least one honest replica, so a committed
result is correct as long as at most ``f`` replicas are mercurial.

This is deliberately the *state-machine-safety* slice of BFT (no view
changes or leader election — there is no network or asynchrony in the
simulation to defend against); what the experiment measures is the §8
question: the cost multiple (n executions per command) versus the
corruption exposure with up to f mercurial replicas.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Callable, Sequence

from repro.silicon.core import Core
from repro.silicon.errors import MachineCheckError


class QuorumError(RuntimeError):
    """No f+1 matching certificates: safety cannot be established."""


@dataclasses.dataclass(frozen=True)
class Commit:
    """A committed command result."""

    command_index: int
    digest: tuple
    certifying_replicas: tuple[int, ...]
    dissenting_replicas: tuple[int, ...]


@dataclasses.dataclass
class BftStats:
    """Command/execution/dissent tallies for one replicated log run."""

    commands: int = 0
    executions: int = 0
    dissents: int = 0

    @property
    def cost_factor(self) -> float:
        if self.commands == 0:
            return 1.0
        return self.executions / self.commands


class QuorumReplicatedService:
    """An n = 3f+1 replicated key-value state machine.

    Commands are ``command(core, state) -> state`` closures whose
    arithmetic routes through the replica's core.  State digests are
    canonical sorted item tuples (host-side — the certificate channel
    is assumed reliable; it is the *execution* that is Byzantine here).
    """

    def __init__(self, cores: Sequence[Core], f: int = 1):
        if f < 1:
            raise ValueError("f must be >= 1")
        if len(cores) != 3 * f + 1:
            raise ValueError(f"need exactly 3f+1 = {3 * f + 1} replicas")
        self.cores = list(cores)
        self.f = f
        self.states: list[dict[str, int]] = [{} for _ in cores]
        self.stats = BftStats()
        self.commits: list[Commit] = []
        self._dissent_counts: collections.Counter = collections.Counter()

    @staticmethod
    def _digest(state: dict[str, int]) -> tuple:
        return tuple(sorted(state.items()))

    def submit(
        self, command: Callable[[Core, dict[str, int]], dict[str, int]]
    ) -> dict[str, int]:
        """Execute a command on every replica and commit by quorum.

        Returns the committed state.

        Raises:
            QuorumError: fewer than f+1 replicas agreed on any digest
                (more than f replicas are faulty — outside the model).
        """
        self.stats.commands += 1
        certificates: dict[tuple, list[int]] = {}
        new_states: list[dict[str, int] | None] = []
        for index, core in enumerate(self.cores):
            self.stats.executions += 1
            try:
                state = command(core, dict(self.states[index]))
            except MachineCheckError:
                new_states.append(None)  # fail-noisy replica abstains
                continue
            new_states.append(state)
            certificates.setdefault(self._digest(state), []).append(index)

        if not certificates:
            raise QuorumError("every replica failed")
        digest, certifiers = max(
            certificates.items(), key=lambda item: len(item[1])
        )
        if len(certifiers) < self.f + 1:
            raise QuorumError(
                f"largest certificate has {len(certifiers)} matching "
                f"replicas; need {self.f + 1}"
            )
        committed = dict(digest)
        dissenters = tuple(
            index for index in range(len(self.cores))
            if index not in certifiers
        )
        for index in dissenters:
            self._dissent_counts[index] += 1
            self.stats.dissents += 1
        # All replicas adopt the committed state (state transfer).
        self.states = [dict(committed) for _ in self.cores]
        commit = Commit(
            command_index=self.stats.commands - 1,
            digest=digest,
            certifying_replicas=tuple(certifiers),
            dissenting_replicas=dissenters,
        )
        self.commits.append(commit)
        return committed

    def suspect_replicas(self, min_dissents: int = 2) -> list[int]:
        """Recidivist dissenters — BFT as a CEE *detector* for free.

        A replica that repeatedly lands outside the quorum is either
        mercurial or partitioned; in this simulation there are no
        partitions, so dissent recidivism is a high-precision signal.
        """
        return [
            index
            for index, count in self._dissent_counts.most_common()
            if count >= min_dissents
        ]
