"""Blum–Kannan program checkers.

§3/§7 cite Blum & Kannan, "Designing Programs That Check Their Work":
for some functions, *checking* an answer is asymptotically cheaper than
computing it, so a CEE-prone core's output can be validated with a
small amount of (possibly also CEE-prone) extra work and a rigorous
error bound.

- :func:`freivalds_check` — verifies a matrix product A·B = C in
  O(n²) per round using random ±0/1 vectors; a wrong product survives
  k rounds with probability ≤ 2⁻ᵏ.
- :func:`permutation_check` — verifies that two sequences are
  permutations of each other via random evaluation of the
  characteristic polynomial ∏(x − vᵢ) over GF(2⁶¹−1) (a polynomial
  identity test); combined with an order check this is a full sorting
  checker.
- :func:`checked_computation` — the run-check-retry harness that turns
  any checker into a mitigation.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.mitigation.resilient.matfact import GF_PRIME, Matrix, _gf_mul
from repro.silicon.units import Op
from repro.workloads.base import CoreLike

T = TypeVar("T")


class CheckFailedError(RuntimeError):
    """A checked computation failed every retry."""


def _mat_vec(core: CoreLike, matrix: Matrix, vector: list[int]) -> list[int]:
    out = []
    for row in matrix:
        acc = 0
        for value, x in zip(row, vector):
            acc = core.execute(Op.ADD, acc, core.execute(Op.MUL, value, x))
        out.append(acc)
    return out


def freivalds_check(
    core: CoreLike,
    a: Matrix,
    b: Matrix,
    c: Matrix,
    rounds: int = 10,
    rng: np.random.Generator | None = None,
) -> bool:
    """Probabilistic check that A·B == C (mod 2**64) in O(n²·rounds).

    Returns True if every round agrees; a wrong C passes with
    probability at most 2**-rounds (over the random vectors).
    """
    rng = rng if rng is not None else np.random.default_rng(0)  # repro: noqa-DET004 -- documented fallback; the trial path always passes its seeded rng
    n = len(c[0])
    for _ in range(rounds):
        r = [int(bit) for bit in rng.integers(0, 2, size=n)]
        br = _mat_vec(core, b, r)
        abr = _mat_vec(core, a, br)
        cr = _mat_vec(core, c, r)
        if any((x ^ y) & ((1 << 64) - 1) for x, y in zip(abr, cr)):
            return False
    return True


def _char_poly_eval(core: CoreLike, values: Sequence[int], x: int) -> int:
    """∏ (x − vᵢ) mod GF_PRIME, multiplications on the core."""
    product = 1
    for value in values:
        term = (x - value) % GF_PRIME
        product = _gf_mul(core, product, term)
    return product


def permutation_check(
    core: CoreLike,
    original: Sequence[int],
    candidate: Sequence[int],
    rounds: int = 3,
    rng: np.random.Generator | None = None,
) -> bool:
    """Are ``original`` and ``candidate`` equal as multisets?

    Polynomial identity testing: the characteristic polynomials agree
    everywhere iff the multisets are equal; evaluating at random field
    points bounds the false-accept probability by
    ``(len/GF_PRIME) ** rounds`` (astronomically small here).
    """
    if len(original) != len(candidate):
        return False
    rng = rng if rng is not None else np.random.default_rng(0)  # repro: noqa-DET004 -- documented fallback; the trial path always passes its seeded rng
    for _ in range(rounds):
        x = int(rng.integers(1, GF_PRIME))
        if _char_poly_eval(core, original, x) != _char_poly_eval(
            core, candidate, x
        ):
            return False
    return True


def sorting_checker(
    core: CoreLike,
    original: Sequence[int],
    candidate: Sequence[int],
    rng: np.random.Generator | None = None,
) -> bool:
    """Full sorting check: ordered AND a permutation of the input."""
    for a, b in zip(candidate, candidate[1:]):
        if core.execute(Op.BLT, b, a) == 1:
            return False
    return permutation_check(core, original, candidate, rng=rng)


def checked_computation(
    compute: Callable[[CoreLike], T],
    check: Callable[[CoreLike, T], bool],
    pool: Sequence[CoreLike],
    max_attempts: int | None = None,
) -> tuple[T, int]:
    """Run-check-retry over a core pool (compute and check on
    *different* cores each attempt).

    Returns ``(result, attempts_used)``.

    Raises:
        CheckFailedError: the retry budget ran out.
    """
    if len(pool) < 2:
        raise ValueError("need at least two cores (worker + checker)")
    attempts = max_attempts if max_attempts is not None else len(pool)
    for attempt in range(attempts):
        worker = pool[attempt % len(pool)]
        checker = pool[(attempt + 1) % len(pool)]
        result = compute(worker)
        if check(checker, result):
            return result, attempt + 1
    raise CheckFailedError(f"no checked result within {attempts} attempts")
