"""Algorithm-based fault tolerance (ABFT) for matrix computations.

The paper cites "Silent Data Corruption Resilient Two-Sided Matrix
Factorizations" [27] as the existing art for SDC-resilient linear
algebra.  This module implements the ABFT core ideas on the simulated
silicon:

- :func:`abft_matmul` — checksum-augmented matrix multiply over the
  64-bit wraparound ring.  Row/column checksums are *linear*, and
  addition mod 2**64 is exact, so a single corrupted output element is
  detected, located (row × column checksum intersection) and corrected
  arithmetically — no re-execution needed.
- :class:`GfMatrix` / :func:`checksummed_lu` — LU factorization over
  the prime field GF(2**61 − 1) with an appended checksum column
  maintained through elimination.  The field gives exact division
  (modular inverse), so checksum validity is an invariant of every
  elimination step and a violation pinpoints the corrupted step.

All arithmetic routes through the core (MUL/MOD/ADD/SUB ops).
"""

from __future__ import annotations

from typing import Sequence

from repro.silicon.units import Op
from repro.workloads.base import CoreLike

MASK64 = (1 << 64) - 1
#: the Mersenne prime 2^61 - 1: fits 64-bit ops with room for products
GF_PRIME = (1 << 61) - 1

Matrix = list[list[int]]


class AbftError(RuntimeError):
    """Corruption detected that ABFT could not correct."""


def _add(core: CoreLike, a: int, b: int) -> int:
    return core.execute(Op.ADD, a, b)


def _mul(core: CoreLike, a: int, b: int) -> int:
    return core.execute(Op.MUL, a, b)


def matmul(core: CoreLike, a: Matrix, b: Matrix) -> Matrix:
    """Plain (unprotected) matrix multiply mod 2**64 on the core."""
    n, k = len(a), len(a[0])
    if len(b) != k:
        raise ValueError("inner dimensions disagree")
    m = len(b[0])
    out = [[0] * m for _ in range(n)]
    for i in range(n):
        row = a[i]
        for j in range(m):
            acc = 0
            for t in range(k):
                acc = _add(core, acc, _mul(core, row[t], b[t][j]))
            out[i][j] = acc
    return out


def _column_checksum_row(core: CoreLike, matrix: Matrix) -> list[int]:
    cols = len(matrix[0])
    sums = [0] * cols
    for row in matrix:
        for j in range(cols):
            sums[j] = _add(core, sums[j], row[j])
    return sums


def _row_checksum_col(core: CoreLike, matrix: Matrix) -> list[int]:
    out = []
    for row in matrix:
        acc = 0
        for value in row:
            acc = _add(core, acc, value)
        out.append(acc)
    return out


def abft_matmul(
    core: CoreLike,
    a: Matrix,
    b: Matrix,
    checker_core: CoreLike | None = None,
) -> tuple[Matrix, int]:
    """Checksummed multiply: detect, locate, and correct one bad element.

    Computes the product of the checksum-augmented matrices, then
    verifies the augmented result's consistency on ``checker_core``
    (defaults to ``core``; pass an independent core so a mercurial
    worker cannot approve its own answer).

    Returns ``(product, corrections)`` where ``corrections`` counts
    corrected elements.

    Raises:
        AbftError: more corruption than the single-error code can fix
            (multiple bad rows/columns, or corrupt checksums).
    """
    checker = checker_core if checker_core is not None else core
    n, m = len(a), len(b[0])
    a_aug = [list(row) for row in a] + [_column_checksum_row(core, a)]
    b_aug = [list(row) + [checksum]
             for row, checksum in zip(b, _row_checksum_col(core, b))]
    c_aug = matmul(core, a_aug, b_aug)

    # Verify: for each row i of the real product, the appended column
    # must equal the row sum; for each column j, the appended row must
    # equal the column sum.  Recompute sums on the checker core.
    bad_rows = []
    for i in range(n):
        expected = 0
        for j in range(m):
            expected = _add(checker, expected, c_aug[i][j])
        if (expected & MASK64) != (c_aug[i][m] & MASK64):
            bad_rows.append(i)
    bad_cols = []
    for j in range(m):
        expected = 0
        for i in range(n):
            expected = _add(checker, expected, c_aug[i][j])
        if (expected & MASK64) != (c_aug[n][j] & MASK64):
            bad_cols.append(j)

    corrections = 0
    if bad_rows or bad_cols:
        if len(bad_rows) == 1 and len(bad_cols) == 1:
            i, j = bad_rows[0], bad_cols[0]
            # Correct from the row checksum: value = checksum - others.
            others = 0
            for jj in range(m):
                if jj != j:
                    others = _add(checker, others, c_aug[i][jj])
            c_aug[i][j] = (c_aug[i][m] - others) & MASK64
            corrections = 1
        else:
            raise AbftError(
                f"uncorrectable: bad rows {bad_rows}, bad cols {bad_cols}"
            )
    return [row[:m] for row in c_aug[:n]], corrections


# ---------------------------------------------------------------------
# LU factorization over GF(2^61 - 1) with a maintained checksum column
# ---------------------------------------------------------------------

def _gf_add(core: CoreLike, a: int, b: int) -> int:
    return core.execute(Op.MOD, core.execute(Op.ADD, a, b), GF_PRIME)


def _gf_sub(core: CoreLike, a: int, b: int) -> int:
    return core.execute(
        Op.MOD, core.execute(Op.ADD, a, GF_PRIME - (b % GF_PRIME)), GF_PRIME
    )


def _gf_shift31(core: CoreLike, x: int) -> int:
    """x · 2^31 mod p without overflowing the 64-bit datapath.

    Uses 2^61 ≡ 1 (mod p): split x = x_hi·2^30 + x_lo, so
    x·2^31 = x_hi·2^61 + x_lo·2^31 ≡ x_hi + x_lo·2^31, and both terms
    fit in 64 bits (x_lo < 2^30 ⇒ x_lo·2^31 < 2^61).
    """
    x_hi = core.execute(Op.SHR, x, 30)
    x_lo = core.execute(Op.AND, x, (1 << 30) - 1)
    shifted = core.execute(Op.SHL, x_lo, 31)
    return core.execute(Op.MOD, core.execute(Op.ADD, shifted, x_hi), GF_PRIME)


def _gf_mul(core: CoreLike, a: int, b: int) -> int:
    # The 122-bit product of two 61-bit operands exceeds the 64-bit
    # datapath, so do 31-bit-limb schoolbook: every partial product is
    # at most 62 bits and every reduction uses 2^61 ≡ 1 (mod p).
    a %= GF_PRIME
    b %= GF_PRIME
    low_mask = (1 << 31) - 1
    a_lo, a_hi = a & low_mask, a >> 31   # a_hi < 2^30
    b_lo, b_hi = b & low_mask, b >> 31
    p00 = core.execute(Op.MOD, core.execute(Op.MUL, a_lo, b_lo), GF_PRIME)
    p01 = core.execute(Op.MOD, core.execute(Op.MUL, a_lo, b_hi), GF_PRIME)
    p10 = core.execute(Op.MOD, core.execute(Op.MUL, a_hi, b_lo), GF_PRIME)
    p11 = core.execute(Op.MOD, core.execute(Op.MUL, a_hi, b_hi), GF_PRIME)
    mid = _gf_shift31(core, _gf_add(core, p01, p10))        # (p01+p10)·2^31
    high = _gf_shift31(core, _gf_shift31(core, p11))        # p11·2^62
    return _gf_add(core, _gf_add(core, p00, mid), high)


def _gf_inv(core: CoreLike, a: int) -> int:
    """Modular inverse by Fermat: a^(p-2) via square-and-multiply."""
    if a % GF_PRIME == 0:
        raise ZeroDivisionError("no inverse of 0 in GF(p)")
    exponent = GF_PRIME - 2
    result = 1
    base = a % GF_PRIME
    while exponent:
        if exponent & 1:
            result = _gf_mul(core, result, base)
        base = _gf_mul(core, base, base)
        exponent >>= 1
    return result


class GfMatrix:
    """A matrix over GF(2^61 - 1) with core-routed arithmetic."""

    def __init__(self, core: CoreLike, rows: Sequence[Sequence[int]]):
        self.core = core
        self.rows: Matrix = [[v % GF_PRIME for v in row] for row in rows]
        if not self.rows or any(len(r) != len(self.rows[0]) for r in self.rows):
            raise ValueError("matrix must be rectangular and non-empty")

    @property
    def shape(self) -> tuple[int, int]:
        return len(self.rows), len(self.rows[0])


def checksummed_lu(
    core: CoreLike, matrix: Sequence[Sequence[int]]
) -> tuple[Matrix, Matrix, int]:
    """LU factorization (Doolittle, no pivoting) with ABFT checksums.

    The working matrix carries an extra checksum column (row sums in
    GF(p)).  Elimination updates the checksum column with the same row
    operations, so after every elimination step each row's checksum
    must still equal its row sum; a mismatch means a CEE corrupted that
    step.

    Returns ``(L, U, checks_performed)``.

    Raises:
        AbftError: a checksum invariant was violated (corruption
            detected at the exact elimination step).
        ZeroDivisionError: a zero pivot (matrix needs pivoting; the
            callers use diagonally-dominant random matrices).
    """
    n = len(matrix)
    work = [[v % GF_PRIME for v in row] for row in matrix]
    for row in work:
        if len(row) != n:
            raise ValueError("need a square matrix")
    # Append checksum column.
    for row in work:
        acc = 0
        for value in row:
            acc = _gf_add(core, acc, value)
        row.append(acc)

    lower = [[1 if i == j else 0 for j in range(n)] for i in range(n)]
    checks = 0
    for k in range(n):
        pivot_inv = _gf_inv(core, work[k][k])
        for i in range(k + 1, n):
            factor = _gf_mul(core, work[i][k], pivot_inv)
            lower[i][k] = factor
            for j in range(k, n + 1):  # includes the checksum column
                delta = _gf_mul(core, factor, work[k][j])
                work[i][j] = _gf_sub(core, work[i][j], delta)
            # ABFT invariant: row sum still matches the checksum.
            acc = 0
            for j in range(n):
                acc = _gf_add(core, acc, work[i][j])
            checks += 1
            if acc != work[i][n]:
                raise AbftError(
                    f"checksum violated at elimination step k={k}, row {i}"
                )
    upper = [[work[i][j] if j >= i else 0 for j in range(n)] for i in range(n)]
    return lower, upper, checks


def gf_matmul(core: CoreLike, a: Matrix, b: Matrix) -> Matrix:
    """Multiply over GF(p) (used to verify L·U == A in tests)."""
    n, k = len(a), len(a[0])
    m = len(b[0])
    out = [[0] * m for _ in range(n)]
    for i in range(n):
        for j in range(m):
            acc = 0
            for t in range(k):
                acc = _gf_add(core, acc, _gf_mul(core, a[i][t], b[t][j]))
            out[i][j] = acc
    return out
