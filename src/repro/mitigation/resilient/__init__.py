"""SDC-resilient algorithms: the paper's §7/§9 algorithmic mitigations."""

from repro.mitigation.resilient.checkers import (
    CheckFailedError,
    checked_computation,
    freivalds_check,
    permutation_check,
    sorting_checker,
)
from repro.mitigation.resilient.matfact import (
    AbftError,
    GF_PRIME,
    abft_matmul,
    checksummed_lu,
    gf_matmul,
    matmul,
)
from repro.mitigation.resilient.sorting import (
    SortVerificationError,
    multiset_checksums,
    redundant_order_check,
    resilient_sort,
    verify_sorted,
)

__all__ = [
    "CheckFailedError",
    "checked_computation",
    "freivalds_check",
    "permutation_check",
    "sorting_checker",
    "AbftError",
    "GF_PRIME",
    "abft_matmul",
    "checksummed_lu",
    "gf_matmul",
    "matmul",
    "SortVerificationError",
    "multiset_checksums",
    "redundant_order_check",
    "resilient_sort",
    "verify_sorted",
]
