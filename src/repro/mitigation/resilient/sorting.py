"""SDC-resilient sorting.

§9 asks: "can we extend the class of SDC-resilient algorithms beyond
sorting and matrix factorization [11, 27]?" — implying sorting already
has resilient formulations.  This is ours, hardened against the two
failure modes the plain sort (:mod:`repro.workloads.sorting`) exhibits:

1. A corrupted comparison misorders output → caught by a *redundant*
   order check: each adjacent pair is compared both ways
   (``a < b`` and ``b < a``); a consistent comparator yields at most
   one True, and any anomaly (both True, or an inversion) fails the
   pair.
2. A corrupted element value (e.g. a copy-path bit flip) preserves
   order but changes the multiset → caught by comparing permutation-
   invariant checksums (sum and xor folds) of input vs output, computed
   on an independent verifier core.

On verification failure, the sort retries on the next core of the pool.
"""

from __future__ import annotations

from typing import Sequence

from repro.silicon.core import Core
from repro.silicon.units import Op
from repro.workloads.base import CoreLike
from repro.workloads.sorting import merge_sort


class SortVerificationError(RuntimeError):
    """No core in the pool produced a verifiably correct sort."""


def redundant_order_check(core: CoreLike, values: Sequence[int]) -> bool:
    """Adjacent-pair order check with both-ways comparisons."""
    for a, b in zip(values, values[1:]):
        ab = core.execute(Op.BLT, a, b)
        ba = core.execute(Op.BLT, b, a)
        if ab == 1 and ba == 1:
            return False  # comparator is inconsistent: a<b and b<a
        if ba == 1:
            return False  # inversion: b < a
    return True


def multiset_checksums(core: CoreLike, values: Sequence[int]) -> tuple[int, int]:
    """Permutation-invariant (sum, xor) folds computed on ``core``."""
    total = 0
    folded = 0
    for value in values:
        total = core.execute(Op.ADD, total, value)
        folded = core.execute(Op.XOR, folded, value)
    return total, folded


def verify_sorted(
    verifier: CoreLike,
    original: Sequence[int],
    output: Sequence[int],
) -> bool:
    """Full resilient verification on an independent core."""
    if len(output) != len(original):
        return False
    if not redundant_order_check(verifier, output):
        return False
    return multiset_checksums(verifier, original) == multiset_checksums(
        verifier, output
    )


def resilient_sort(
    pool: Sequence[Core],
    values: Sequence[int],
    max_attempts: int | None = None,
) -> list[int]:
    """Sort with verify-and-migrate.

    Each attempt sorts on one pool core and verifies on the *next*
    (distinct verifier, so a single mercurial core cannot both corrupt
    and approve).

    Raises:
        SortVerificationError: no attempt verified.
    """
    if not pool:
        raise ValueError("need at least one core")
    attempts = max_attempts if max_attempts is not None else len(pool)
    for attempt in range(attempts):
        worker = pool[attempt % len(pool)]
        verifier = pool[(attempt + 1) % len(pool)]
        output = merge_sort(worker, list(values))
        if verify_sorted(verifier, values, output):
            return output
    raise SortVerificationError(
        f"no verified sort in {attempts} attempts over {len(pool)} cores"
    )
