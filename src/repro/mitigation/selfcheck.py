"""Self-checking library wrappers.

§7: "To allow a broader group of application developers to leverage
our shared expertise in addressing CEEs, we have developed a few
libraries with self-checking implementations of critical functions,
such as encryption and compression, where one CEE could have a large
blast radius."

Two strengths of check are provided, because the paper's self-inverting
AES defect (§2) defeats the naive one:

- *same-core* round-trip checks (cheap; catch intermittent defects);
- *cross-core* verification (the decrypt/decompress runs on a different
  core; catches even deterministic self-inverting defects, at the cost
  of needing a second core — a small, targeted application of the
  end-to-end argument).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.workloads.base import CoreLike
from repro.workloads.compression import compress, decompress
from repro.workloads.crypto import decrypt_ecb, encrypt_ecb


class SelfCheckError(RuntimeError):
    """A self-checking operation detected a wrong result."""


@dataclasses.dataclass
class SelfCheckStats:
    """Self-checking library tallies: verifications run, failures caught."""

    operations: int = 0
    verifications: int = 0
    failures_caught: int = 0

    @property
    def overhead_factor(self) -> float:
        if self.operations == 0:
            return 1.0
        return (self.operations + self.verifications) / self.operations


class CheckedCipher:
    """AES with encrypt-then-verify.

    Args:
        core: the core doing the encryption.
        verify_core: where the verification decrypt runs.  ``None``
            means same-core verification — cheaper, but blind to
            self-inverting defects; pass a different core to close
            that hole.
    """

    def __init__(self, core: CoreLike, verify_core: CoreLike | None = None):
        self.core = core
        self.verify_core = verify_core if verify_core is not None else core
        self.stats = SelfCheckStats()

    @property
    def cross_core(self) -> bool:
        return self.verify_core is not self.core

    def encrypt(self, data: bytes, key: bytes) -> bytes:
        """Encrypt and verify by decrypting on ``verify_core``.

        Raises:
            SelfCheckError: the verification decrypt did not restore
                the plaintext (corruption caught before it escaped).
        """
        self.stats.operations += 1
        ciphertext = encrypt_ecb(self.core, data, key)
        self.stats.verifications += 1
        try:
            restored = decrypt_ecb(self.verify_core, ciphertext, key)
        except ValueError as exc:  # bad padding = corrupt ciphertext
            self.stats.failures_caught += 1
            raise SelfCheckError(f"verification decrypt failed: {exc}") from exc
        if restored != data:
            self.stats.failures_caught += 1
            raise SelfCheckError("ciphertext does not decrypt to plaintext")
        return ciphertext

    def decrypt(self, ciphertext: bytes, key: bytes) -> bytes:
        """Decrypt and verify by re-encrypting on ``verify_core``."""
        self.stats.operations += 1
        plaintext = decrypt_ecb(self.core, ciphertext, key)
        self.stats.verifications += 1
        re_encrypted = encrypt_ecb(self.verify_core, plaintext, key)
        if re_encrypted != ciphertext:
            self.stats.failures_caught += 1
            raise SelfCheckError("plaintext does not re-encrypt to ciphertext")
        return plaintext


class CheckedCodec:
    """Compression with compress-then-verify."""

    def __init__(self, core: CoreLike, verify_core: CoreLike | None = None):
        self.core = core
        self.verify_core = verify_core if verify_core is not None else core
        self.stats = SelfCheckStats()

    def compress(self, data: bytes) -> bytes:
        """Compress and verify by decompressing on ``verify_core``.

        Raises:
            SelfCheckError: round trip failed.
        """
        self.stats.operations += 1
        blob = compress(self.core, data)
        self.stats.verifications += 1
        try:
            restored = decompress(self.verify_core, blob)
        except Exception as exc:
            self.stats.failures_caught += 1
            raise SelfCheckError(f"verification decompress failed: {exc}") from exc
        if restored != data:
            self.stats.failures_caught += 1
            raise SelfCheckError("decompressed output differs from input")
        return blob


def selfchecked(
    operation: Callable[[], object],
    verify: Callable[[object], bool],
    retries: int = 2,
    on_failure: Callable[[], None] | None = None,
) -> object:
    """Generic execute-verify-retry combinator.

    Runs ``operation`` and accepts the result only if ``verify`` does;
    otherwise retries (optionally notifying ``on_failure``, e.g. to
    file a :class:`~repro.core.report.Complaint`).

    Raises:
        SelfCheckError: every attempt failed verification.
    """
    for _ in range(retries + 1):
        result = operation()
        if verify(result):
            return result
        if on_failure is not None:
            on_failure()
    raise SelfCheckError(f"verification failed after {retries + 1} attempts")
