"""Redundant execution: DMR, TMR, and the unreliable-voter problem.

§3: "Detecting CEEs naively seems to imply a factor of two of extra
work.  Automatic correction seems to possibly require triple work
(e.g. via triple modular redundancy)."

§7: "one could run a computation on two cores, and if they disagree,
restart on a different pair of cores from a checkpoint", and "this
relies on the voting mechanism itself being reliable."

Implementations:

- :class:`DmrExecutor` — dual-modular: detect by disagreement, retry on
  a fresh pair (cost ≈ 2× plus retries).
- :class:`TmrExecutor` — triple-modular: majority vote (cost ≈ 3×).
  The vote can optionally be computed *on a core* (``voter_core``) to
  expose the paper's caveat: a defective voter can out-vote two healthy
  workers.

Both executors operate on deterministic work closures (``work(core) ->
WorkloadResult``) and compare output digests, which is how replicated
production systems actually compare results (bytes, not intents).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

from repro.silicon.core import Core
from repro.silicon.errors import MachineCheckError
from repro.silicon.units import Op
from repro.workloads.base import CoreLike, WorkloadResult


class RedundancyExhaustedError(RuntimeError):
    """No agreeing execution could be found within the retry budget."""


@dataclasses.dataclass
class RedundantOutcome:
    """Result of a redundant execution.

    Attributes:
        result: the agreed (or majority) result.
        executions: total single-core executions spent.
        disagreements: rounds where outputs differed.
        cores_used: core ids that participated.
        detected_corruption: a disagreement was observed (the CEE was
            caught rather than propagated).
    """

    result: WorkloadResult
    executions: int
    disagreements: int
    cores_used: list[str]
    detected_corruption: bool

    @property
    def cost_factor(self) -> float:
        """Work amplification relative to one unchecked execution."""
        return float(self.executions)


def _run_once(work: Callable[[CoreLike], WorkloadResult], core: Core) -> WorkloadResult | None:
    """Run work, converting machine checks into a None (fail-noisy)."""
    try:
        return work(core)
    except MachineCheckError:
        return None


class DmrExecutor:
    """Run twice, compare, retry elsewhere on disagreement."""

    def __init__(self, pool: Sequence[Core], max_rounds: int = 3):
        if len(pool) < 2:
            raise ValueError("DMR needs at least two cores")
        self.pool = list(pool)
        self.max_rounds = max_rounds

    def run(self, work: Callable[[CoreLike], WorkloadResult]) -> RedundantOutcome:
        """Execute with dual redundancy.

        Raises:
            RedundancyExhaustedError: no agreeing pair within budget.
        """
        executions = 0
        disagreements = 0
        used: list[str] = []
        for round_index in range(self.max_rounds):
            offset = 2 * round_index
            if offset + 1 >= len(self.pool):
                break
            core_a = self.pool[offset]
            core_b = self.pool[offset + 1]
            used.extend([core_a.core_id, core_b.core_id])
            result_a = _run_once(work, core_a)
            result_b = _run_once(work, core_b)
            executions += 2
            if result_a is None or result_b is None:
                disagreements += 1
                continue
            if result_a.output_digest == result_b.output_digest:
                return RedundantOutcome(
                    result=result_a,
                    executions=executions,
                    disagreements=disagreements,
                    cores_used=used,
                    detected_corruption=disagreements > 0,
                )
            disagreements += 1
        raise RedundancyExhaustedError(
            f"no agreement after {executions} executions "
            f"({disagreements} disagreements)"
        )


class TmrExecutor:
    """Run three times, majority-vote the digests.

    Args:
        pool: at least three cores; the first three are the workers.
        voter_core: if given, the majority vote's equality comparisons
            execute on this core — §7's "this relies on the voting
            mechanism itself being reliable" made testable.  If None,
            voting is host-side (a reliable voter).
    """

    def __init__(self, pool: Sequence[Core], voter_core: Core | None = None):
        if len(pool) < 3:
            raise ValueError("TMR needs at least three cores")
        self.pool = list(pool)
        self.voter_core = voter_core

    def _digests_equal(self, a: int, b: int) -> bool:
        if self.voter_core is None:
            return a == b
        return self.voter_core.execute(Op.BEQ, a, b) == 1

    def run(self, work: Callable[[CoreLike], WorkloadResult]) -> RedundantOutcome:
        """Execute with triple redundancy and majority voting.

        Raises:
            RedundancyExhaustedError: all three disagree (no majority).
        """
        workers = self.pool[:3]
        results = [_run_once(work, core) for core in workers]
        used = [core.core_id for core in workers]
        live = [r for r in results if r is not None]
        if len(live) < 2:
            raise RedundancyExhaustedError("too many machine checks for a vote")
        # Majority vote over digests.
        for i in range(len(live)):
            agreeing = [
                other
                for other in live
                if self._digests_equal(live[i].output_digest, other.output_digest)
            ]
            if len(agreeing) >= 2:
                disagreements = len(live) - len(agreeing) + (3 - len(live))
                return RedundantOutcome(
                    result=live[i],
                    executions=3,
                    disagreements=disagreements,
                    cores_used=used,
                    detected_corruption=disagreements > 0,
                )
        raise RedundancyExhaustedError("three-way disagreement; no majority")
