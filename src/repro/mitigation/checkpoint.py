"""Checkpoint/restart: recovering from a failed computation elsewhere.

§7 asks for "system support for efficient checkpointing, to recover
from a failed computation by restarting on a different core" paired
with "cost-effective, application-specific detection methods, to decide
whether to continue past a checkpoint or to retry".

:class:`CheckpointRuntime` executes a stream of work items in granules.
After each granule an application-supplied check decides commit vs
retry; a retry re-runs the granule *on the next core in the pool*
(escaping a mercurial core) from the last committed state.  The granule
size is the ablated design choice: big granules amortize checkpoint
cost but waste more work per retry (§7 cites the deterministic-replay
literature on choosing "the largest possible computation granules").
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Generic, Sequence, TypeVar

from repro.silicon.core import Core
from repro.silicon.errors import MachineCheckError
from repro.workloads.base import CoreLike

S = TypeVar("S")  # checkpointed state
T = TypeVar("T")  # work item


@dataclasses.dataclass
class CheckpointStats:
    """Cost accounting for one checkpointed run."""

    granules_committed: int = 0
    granules_retried: int = 0
    items_executed: int = 0
    items_wasted: int = 0
    checkpoints_taken: int = 0
    checkpoint_cost_items: float = 0.0

    @property
    def overhead_factor(self) -> float:
        """Total effort relative to a perfect, uncheckpointed run."""
        useful = self.items_executed - self.items_wasted
        if useful <= 0:
            return float("inf")
        return (self.items_executed + self.checkpoint_cost_items) / useful


class GranuleFailedError(RuntimeError):
    """A granule failed its check on every core in the pool."""


class CheckpointRuntime(Generic[S, T]):
    """Granular execute-check-commit runtime over a core pool.

    Args:
        pool: cores to run on; retries rotate through the pool.
        step: ``step(core, state, item) -> state`` — applies one item.
            Must not mutate ``state`` in place; it returns the new
            state (structural sharing is fine) so the runtime can
            checkpoint by reference.
        check: ``check(state) -> bool`` — the application-specific
            integrity check run at each granule boundary (§7: computing
            an invariant before committing).
        granule: items per checkpoint interval.
        checkpoint_cost_items: cost of taking one checkpoint, in units
            of work items (drives the granule-size tradeoff).
        max_attempts_per_granule: retry budget before giving up.
    """

    def __init__(
        self,
        pool: Sequence[Core],
        step: Callable[[CoreLike, S, T], S],
        check: Callable[[S], bool],
        granule: int = 16,
        checkpoint_cost_items: float = 1.0,
        max_attempts_per_granule: int = 4,
    ):
        if not pool:
            raise ValueError("need at least one core")
        if granule < 1:
            raise ValueError("granule must be >= 1")
        self.pool = list(pool)
        self.step = step
        self.check = check
        self.granule = granule
        self.checkpoint_cost_items = checkpoint_cost_items
        self.max_attempts_per_granule = max_attempts_per_granule
        self.stats = CheckpointStats()

    def run(self, initial_state: S, items: Sequence[T]) -> S:
        """Process all items, retrying failed granules on other cores.

        Raises:
            GranuleFailedError: a granule failed on every attempt
                (e.g. the check itself is broken, or every core in the
                pool corrupts this granule).
        """
        state = initial_state
        core_index = 0
        position = 0
        while position < len(items):
            granule_items = items[position:position + self.granule]
            committed = False
            for attempt in range(self.max_attempts_per_granule):
                core = self.pool[core_index % len(self.pool)]
                candidate = state
                crashed = False
                try:
                    for item in granule_items:
                        candidate = self.step(core, candidate, item)
                        self.stats.items_executed += 1
                except MachineCheckError:
                    crashed = True
                if not crashed and self.check(candidate):
                    state = candidate
                    self.stats.granules_committed += 1
                    self.stats.checkpoints_taken += 1
                    self.stats.checkpoint_cost_items += self.checkpoint_cost_items
                    committed = True
                    break
                # Failed: waste the granule, move to the next core.
                self.stats.items_wasted += len(granule_items)
                self.stats.granules_retried += 1
                core_index += 1
            if not committed:
                raise GranuleFailedError(
                    f"granule at item {position} failed "
                    f"{self.max_attempts_per_granule} attempts"
                )
            position += len(granule_items)
        return state
