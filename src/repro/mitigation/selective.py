"""Selective replication of critical computations (§9).

"Perhaps compilers could detect blocks of code whose correct execution
is especially critical (via programmer annotations or impact analysis),
and then automatically replicate just these computations."

:class:`SelectiveReplicator` is the runtime such a compiler would
target: a staged computation declares each stage's *criticality* (a
programmer annotation) or lets :func:`impact_score` estimate it (a
crude impact analysis: how many downstream bytes/records depend on the
stage's output).  Critical stages execute with TMR; the rest run once.
The point of the experiment (ablation A3) is the cost curve: full TMR
pays 3x on everything, selective replication pays 3x only on the
(usually small) critical fraction — §7's observation that "certain
computations are critical enough that we are willing to pay the
overheads" made quantitative.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

from repro.mitigation.redundancy import (
    RedundancyExhaustedError,
    TmrExecutor,
)
from repro.silicon.core import Core
from repro.workloads.base import CoreLike, WorkloadResult


@dataclasses.dataclass(frozen=True)
class Stage:
    """One stage of a computation.

    Attributes:
        name: label for reports.
        work: ``work(core) -> WorkloadResult`` — deterministic per core.
        critical: programmer annotation; None = let impact analysis
            decide.
        blast_radius: how many downstream units depend on this stage's
            output (the impact-analysis input); e.g. a metadata update
            has a huge radius, one record's payload has radius 1.
    """

    name: str
    work: Callable[[CoreLike], WorkloadResult]
    critical: bool | None = None
    blast_radius: int = 1


def impact_score(stage: Stage) -> float:
    """Crude impact analysis: log-scaled blast radius."""
    import math

    return math.log10(max(stage.blast_radius, 1) + 1)


@dataclasses.dataclass
class ReplicationStats:
    """How much work ran once vs replicated under the selective policy."""

    stages_run: int = 0
    stages_replicated: int = 0
    single_executions: int = 0
    replicated_executions: int = 0
    detections: int = 0

    @property
    def cost_factor(self) -> float:
        """Total executions relative to running every stage once."""
        if self.stages_run == 0:
            return 1.0
        return (self.single_executions + self.replicated_executions) \
            / self.stages_run


class SelectiveReplicator:
    """Runs staged computations, replicating only the critical stages.

    Args:
        pool: worker cores; TMR uses the first three, single-stage
            execution round-robins over the whole pool.
        criticality_threshold: stages with ``impact_score`` at or above
            this are treated as critical when not explicitly annotated.
    """

    def __init__(self, pool: Sequence[Core], criticality_threshold: float = 1.0):
        if len(pool) < 3:
            raise ValueError("selective replication needs >= 3 cores for TMR")
        self.pool = list(pool)
        self.criticality_threshold = criticality_threshold
        self.stats = ReplicationStats()
        self._cursor = 0

    def _is_critical(self, stage: Stage) -> bool:
        if stage.critical is not None:
            return stage.critical
        return impact_score(stage) >= self.criticality_threshold

    def run_stage(self, stage: Stage) -> WorkloadResult:
        """Execute one stage with the protection its criticality earns.

        Raises:
            RedundancyExhaustedError: a critical stage found no
                majority.
        """
        self.stats.stages_run += 1
        if self._is_critical(stage):
            self.stats.stages_replicated += 1
            outcome = TmrExecutor(self.pool).run(stage.work)
            self.stats.replicated_executions += outcome.executions
            if outcome.detected_corruption:
                self.stats.detections += 1
            return outcome.result
        core = self.pool[self._cursor % len(self.pool)]
        self._cursor += 1
        self.stats.single_executions += 1
        return stage.work(core)

    def run_pipeline(self, stages: Sequence[Stage]) -> list[WorkloadResult]:
        """Run stages in order; returns their results."""
        return [self.run_stage(stage) for stage in stages]


def full_tmr_baseline(
    pool: Sequence[Core], stages: Sequence[Stage]
) -> tuple[list[WorkloadResult], int]:
    """Everything replicated: the §3 worst-case 3x bill.

    Returns (results, total executions).
    """
    executor = TmrExecutor(list(pool))
    results = []
    executions = 0
    for stage in stages:
        outcome = executor.run(stage.work)
        executions += outcome.executions
        results.append(outcome.result)
    return results, executions


def unprotected_baseline(
    core: Core, stages: Sequence[Stage]
) -> list[WorkloadResult]:
    """Nothing replicated: the silent-corruption exposure baseline."""
    return [stage.work(core) for stage in stages]
