"""Instruction-level checking policies: ITHICA, MEEK and RepTFD arms.

§7 asks what it costs to catch a CEE *before* it propagates.  This
module implements the three detector families from the follow-up
literature as per-op checking policies that wrap workload execution:

- :class:`IthicaCheckedCore` — **ITHICA**, intra-thread instruction
  checking: a sampled fraction of operations is re-executed on the
  *same* core and the two results are digest-compared host-side.
  Cheap (no second core) but physically blind to deterministic
  defects — both executions flow through the same broken structure and
  corrupt identically (the §2 self-inverting AES story), so only
  probabilistic CEEs can disagree with themselves.
- :class:`MeekCheckedCore` — **MEEK**, heterogeneous checker pairing: a
  designated checker core re-executes a *compressed* check-stream
  (op, operands, result digest) behind the primary through a bounded
  check-lag queue.  Cross-core, so deterministic defects are visible;
  the price is a second core plus a detection lag, and entries dropped
  on queue overflow are coverage silently lost.
- :class:`ReplayChecker` — **RepTFD**, checkpoint-delimited replay:
  work is committed in granules; a sampled granule is replayed on a
  second core and digest-compared, and a divergence rolls the granule
  back and re-runs it on the next core in the pool (reusing
  :class:`~repro.mitigation.checkpoint.CheckpointRuntime` — §7's
  "recover from a failed computation by restarting on a different
  core").  The only arm here that *corrects* as well as detects.

All digest comparisons are host-side FNV-1a
(:func:`~repro.workloads.base.digest_ints` — the DET-safe idiom from
:mod:`repro.mitigation.redundancy`): the oracle hash is never routed
through a possibly-mercurial core.  Sampling is a deterministic
counter-hash, not an RNG stream, so wrapping a core never perturbs the
defect randomness of the underlying run (DET001 by construction).
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Callable, Iterable, Sequence

from repro.mitigation.checkpoint import CheckpointRuntime
from repro.workloads.base import CoreLike, digest_ints

#: one primitive operation of a work unit: (mnemonic, operands)
OpCall = tuple[str, tuple]

#: one unit of work: an ordered tuple of op calls
WorkUnit = tuple[OpCall, ...]

#: mismatch callback: (suspect core id, op mnemonic, unit tag)
MismatchHook = Callable[[str, str, int], None]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def result_digest(result) -> int:
    """Host-side digest of one op result (scalar or tuple of lanes)."""
    if isinstance(result, tuple):
        return digest_ints(result)
    return digest_ints((int(result),))


def _hash01(seed: int, counter: int) -> float:
    """Deterministic hash of (seed, counter) into [0, 1).

    FNV-1a over the two 64-bit words: a stateless sampler that never
    touches an RNG stream, so checking policies cannot perturb the
    defect randomness of the run they are wrapping.
    """
    h = _FNV_OFFSET
    for word in (seed & _MASK64, counter & _MASK64):
        for shift in range(0, 64, 8):
            h ^= (word >> shift) & 0xFF
            h = (h * _FNV_PRIME) & _MASK64
    return h / 2.0**64


class OpSampler:
    """Deterministic op sampler: rate plus optional op-class filter."""

    __slots__ = ("rate", "ops", "seed", "_counter")

    def __init__(
        self,
        rate: float,
        ops: Iterable[str] | None = None,
        seed: int = 0,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("sample rate must be a probability")
        self.rate = rate
        self.ops = frozenset(ops) if ops is not None else None
        self.seed = seed
        self._counter = 0

    def take(self, op: str) -> bool:
        """Whether this op occurrence is selected for checking."""
        if self.ops is not None and op not in self.ops:
            return False
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        self._counter += 1
        return _hash01(self.seed, self._counter) < self.rate


@dataclasses.dataclass(slots=True)
class InstrCheckStats:
    """Cost/coverage accounting shared by all checking arms.

    ``payload_ops`` is what an unchecked run would have executed;
    everything in ``check_ops`` (duplicates, checker re-executions,
    replays, wasted rollback work) is the price of checking.
    """

    payload_ops: int = 0
    check_ops: int = 0
    ops_sampled: int = 0
    mismatches: int = 0
    lag_drops: int = 0
    replays: int = 0

    @property
    def slowdown_factor(self) -> float:
        """Total executed ops relative to the unchecked baseline."""
        if self.payload_ops == 0:
            return 1.0
        return (self.payload_ops + self.check_ops) / self.payload_ops


class IthicaCheckedCore:
    """ITHICA arm: same-core duplicate execution of sampled ops.

    Wraps a core; a sampled fraction of executed ops (optionally
    restricted to an op class) is immediately re-executed on the *same*
    core and the two results digest-compared.  A disagreement means the
    core is non-deterministically miscomputing — a probabilistic CEE
    caught before the result leaves the thread.  Deterministic defects
    corrupt both executions identically and are invisible by design.
    """

    def __init__(
        self,
        inner: CoreLike,
        sample_rate: float,
        ops: Iterable[str] | None = None,
        seed: int = 0,
        stats: InstrCheckStats | None = None,
        on_mismatch: MismatchHook | None = None,
    ):
        self.inner = inner
        self.core_id = inner.core_id
        self.sampler = OpSampler(sample_rate, ops=ops, seed=seed)
        self.stats = stats if stats is not None else InstrCheckStats()
        self.on_mismatch = on_mismatch
        #: campaign-settable tag attributed to mismatches (unit index)
        self.tag = 0

    def execute(self, op: str, *operands):
        """Execute on the wrapped core; maybe duplicate and compare."""
        result = self.inner.execute(op, *operands)
        stats = self.stats
        stats.payload_ops += 1
        if self.sampler.take(op):
            stats.ops_sampled += 1
            stats.check_ops += 1
            duplicate = self.inner.execute(op, *operands)
            if result_digest(duplicate) != result_digest(result):
                stats.mismatches += 1
                if self.on_mismatch is not None:
                    self.on_mismatch(self.core_id, op, self.tag)
        return result

    def golden(self, op: str, *operands):
        """Defect-free semantics via the wrapped core."""
        return self.inner.golden(op, *operands)


@dataclasses.dataclass(slots=True)
class CheckEntry:
    """One compressed check-stream record handed to the MEEK checker.

    The primary's full result is *not* shipped — only its digest, which
    is the stream compression that makes a lag queue of these cheap.
    """

    op: str
    operands: tuple
    digest: int
    tag: int


class MeekCheckedCore:
    """MEEK arm: heterogeneous checker core behind a bounded lag queue.

    The primary executes everything; sampled ops are appended to a
    check-stream queue as (op, operands, result-digest).  A designated
    checker core drains the queue (:meth:`flush`) at its own pace,
    re-executing each entry and comparing digests.  The queue is
    bounded: when the primary outruns the checker the *oldest* entry is
    dropped and counted — coverage lost, reported honestly via
    ``stats.lag_drops`` and the overflow hook.

    Mismatches are attributed to the primary: the design assumption is
    a trusted (screened) checker, and a defective checker shows up as a
    storm of mismatches against *every* primary it checks.
    """

    def __init__(
        self,
        inner: CoreLike,
        checker: CoreLike,
        sample_rate: float,
        lag_limit: int = 64,
        ops: Iterable[str] | None = None,
        seed: int = 0,
        stats: InstrCheckStats | None = None,
        on_mismatch: MismatchHook | None = None,
        on_overflow: Callable[[str, int], None] | None = None,
    ):
        if lag_limit < 1:
            raise ValueError("lag_limit must be >= 1")
        self.inner = inner
        self.core_id = inner.core_id
        self.checker = checker
        self.lag_limit = lag_limit
        self.sampler = OpSampler(sample_rate, ops=ops, seed=seed)
        self.stats = stats if stats is not None else InstrCheckStats()
        self.on_mismatch = on_mismatch
        self.on_overflow = on_overflow
        self.tag = 0
        self._queue: collections.deque[CheckEntry] = collections.deque()

    @property
    def lag(self) -> int:
        """Entries currently waiting for the checker."""
        return len(self._queue)

    def execute(self, op: str, *operands):
        """Execute on the primary; maybe enqueue a check-stream entry."""
        result = self.inner.execute(op, *operands)
        stats = self.stats
        stats.payload_ops += 1
        if self.sampler.take(op):
            stats.ops_sampled += 1
            if len(self._queue) >= self.lag_limit:
                self._queue.popleft()
                stats.lag_drops += 1
                if self.on_overflow is not None:
                    self.on_overflow(self.core_id, self.tag)
            self._queue.append(
                CheckEntry(op, operands, result_digest(result), self.tag)
            )
        return result

    def golden(self, op: str, *operands):
        """Defect-free semantics via the wrapped core."""
        return self.inner.golden(op, *operands)

    def flush(self, budget: int | None = None) -> int:
        """Drain up to ``budget`` entries through the checker core.

        Returns the number of entries checked.  ``budget=None`` drains
        the whole queue (end-of-run barrier).
        """
        drained = 0
        stats = self.stats
        while self._queue and (budget is None or drained < budget):
            entry = self._queue.popleft()
            drained += 1
            stats.check_ops += 1
            check = self.checker.execute(entry.op, *entry.operands)
            if result_digest(check) != entry.digest:
                stats.mismatches += 1
                if self.on_mismatch is not None:
                    self.on_mismatch(self.core_id, entry.op, entry.tag)
        return drained


class ReplayChecker:
    """RepTFD arm: checkpoint-delimited replay with rollback.

    Executes work units in granules through a
    :class:`~repro.mitigation.checkpoint.CheckpointRuntime` whose
    granule check replays sampled granules on a designated replay core
    and digest-compares per-unit outputs.  A divergence fails the
    check, so the runtime rolls the granule back and re-runs it on the
    next core in the pool — detection *and* correction, at the price of
    replay work plus wasted rollback execution.
    """

    def __init__(
        self,
        pool: Sequence[CoreLike],
        replay_core: CoreLike,
        sample_rate: float = 1.0,
        seed: int = 0,
        max_attempts: int = 4,
        stats: InstrCheckStats | None = None,
        on_divergence: MismatchHook | None = None,
        on_replay: Callable[[int, int], None] | None = None,
    ):
        if not pool:
            raise ValueError("need at least one core in the pool")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample rate must be a probability")
        self.pool = list(pool)
        self.replay_core = replay_core
        self.sample_rate = sample_rate
        self.seed = seed
        self.max_attempts = max_attempts
        self.stats = stats if stats is not None else InstrCheckStats()
        self.on_divergence = on_divergence
        self.on_replay = on_replay
        self.tag = 0
        self._granule_index = 0
        self._units: Sequence[WorkUnit] = ()
        self._tags: Sequence[int] = ()
        self._attempt_core_id = ""

    def _execute_unit(self, core: CoreLike, unit: WorkUnit) -> int:
        return digest_ints(
            result_digest(core.execute(op, *operands))
            for op, operands in unit
        )

    def _step(
        self, core: CoreLike, state: tuple[int, ...], unit: WorkUnit
    ) -> tuple[int, ...]:
        self._attempt_core_id = core.core_id
        self.stats.payload_ops += len(unit)
        return state + (self._execute_unit(core, unit),)

    def _check(self, state: tuple[int, ...]) -> bool:
        committed = self._granule_start
        fresh = state[committed:]
        if not fresh:
            return True
        sampled = (
            self.sample_rate >= 1.0
            or _hash01(self.seed, self._granule_index + 1) < self.sample_rate
        )
        diverged = False
        if sampled:
            self.stats.replays += 1
            if self.on_replay is not None:
                self.on_replay(self.tag, len(fresh))
            for offset, digest in enumerate(fresh):
                unit = self._units[committed + offset]
                self.stats.check_ops += len(unit)
                if self._execute_unit(self.replay_core, unit) != digest:
                    self.stats.mismatches += 1
                    diverged = True
                    if self.on_divergence is not None:
                        self.on_divergence(
                            self._attempt_core_id, unit[0][0],
                            self._tags[committed + offset],
                        )
        if diverged:
            # Wasted primary work becomes check cost: the granule is
            # rolled back and re-run on the next core in the pool.
            wasted = sum(len(self._units[committed + o])
                         for o in range(len(fresh)))
            self.stats.payload_ops -= wasted
            self.stats.check_ops += wasted
            return False
        self._granule_start = len(state)
        return True

    def run_granule(
        self,
        units: Sequence[WorkUnit],
        tags: Sequence[int] | None = None,
    ) -> tuple[int, ...]:
        """Execute one granule of units; return per-unit output digests.

        ``tags`` attributes divergences to caller-visible unit ids
        (lanes interleave units, so tags need not be consecutive).
        The granule index advances per call, so the sampled-replay
        decision is deterministic across workers and re-runs.

        Raises:
            ~repro.mitigation.checkpoint.GranuleFailedError: the
                granule diverged on every core in the pool.
        """
        self._units = list(units)
        self._tags = (
            list(tags) if tags is not None
            else [self.tag + i for i in range(len(self._units))]
        )
        self._granule_start = 0
        runtime: CheckpointRuntime[tuple[int, ...], WorkUnit] = (
            CheckpointRuntime(
                pool=self.pool,  # type: ignore[arg-type]
                step=self._step,
                check=self._check,
                granule=max(1, len(self._units)),
                checkpoint_cost_items=0.0,
                max_attempts_per_granule=self.max_attempts,
            )
        )
        digests = runtime.run((), self._units)
        self._granule_index += 1
        return digests


__all__ = [
    "CheckEntry",
    "InstrCheckStats",
    "IthicaCheckedCore",
    "MeekCheckedCore",
    "OpSampler",
    "ReplayChecker",
    "WorkUnit",
    "result_digest",
]
