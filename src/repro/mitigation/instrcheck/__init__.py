"""Instruction-level checking arms (§7's "continuous verification").

Three literature-anchored policies for catching a CEE *while the
computation is still in flight*, each wrapping the same per-op
execution surface (:meth:`Core.execute <repro.silicon.core.Core.execute>`)
so any workload that ducks through a core — including the
:class:`~repro.silicon.vm.Vm` — can be checked without modification:

- :class:`~repro.mitigation.instrcheck.policies.IthicaCheckedCore` —
  ITHICA-style intra-thread duplicate execution on the *same* core;
- :class:`~repro.mitigation.instrcheck.policies.MeekCheckedCore` —
  MEEK-style heterogeneous pairing with a second checker core behind a
  bounded check-lag queue;
- :class:`~repro.mitigation.instrcheck.policies.ReplayChecker` —
  RepTFD-style checkpoint-delimited replay with rollback on divergence.

:mod:`~repro.mitigation.instrcheck.campaign` races the arms against
mercurial cores and scores slowdown vs coverage (experiment E18).
"""

from repro.mitigation.instrcheck.campaign import (
    ARMS,
    InstrCheckCampaign,
    InstrCheckConfig,
    InstrCheckScorecard,
    build_instrcheck_fleet,
)
from repro.mitigation.instrcheck.policies import (
    InstrCheckStats,
    IthicaCheckedCore,
    MeekCheckedCore,
    OpSampler,
    ReplayChecker,
    result_digest,
)

__all__ = [
    "ARMS",
    "InstrCheckCampaign",
    "InstrCheckConfig",
    "InstrCheckScorecard",
    "InstrCheckStats",
    "IthicaCheckedCore",
    "MeekCheckedCore",
    "OpSampler",
    "ReplayChecker",
    "build_instrcheck_fleet",
    "result_digest",
]
