"""Instrcheck campaigns: checking arms racing corruption to delivery.

One campaign drives a deterministic op-stream workload across a small
fleet under ONE checking arm and scores it on the two axes the §7
tradeoff is about:

- **slowdown factor** — total executed operations (payload plus
  duplicates, checker re-executions, replays, rollback waste, screen
  batteries) relative to the unchecked run;
- **coverage** — the fraction of CEE-affected work units the arm
  flagged before the result propagated downstream, versus the units
  delivered corrupt with no flag (escapes).

Arms:

``ithica``
    :class:`~repro.mitigation.instrcheck.policies.IthicaCheckedCore`
    per lane — same-core duplicate execution of sampled ops.
``meek``
    :class:`~repro.mitigation.instrcheck.policies.MeekCheckedCore`
    per lane, all lanes sharing one checker core drawn via
    :meth:`FleetScheduler.schedule(exclude_core_ids=...)
    <repro.fleet.scheduler.FleetScheduler.schedule>` — the checker
    drains each lane's bounded lag queue at a fixed per-tick budget.
``reptfd``
    :class:`~repro.mitigation.instrcheck.policies.ReplayChecker` per
    lane — granule-delimited commits with sampled replay on the
    checker core and rollback re-runs on spare cores.
``e2e``
    the E11 end-to-end check as a reference point: a sampled fraction
    of whole units is re-executed on a trusted client core (healthy by
    construction — the end-to-end argument needs one honest endpoint)
    and digest-compared before delivery.
``screen``
    the E9 online-screening reference: no per-op checks at all; a
    periodic screening battery runs on each lane core and a failure is
    a confession.  Screening catches *cores*, never in-flight results,
    so its pre-propagation coverage is honestly ~zero — every corrupt
    unit delivered before quarantine is an escape — but it stops the
    bleeding cheaply.

Every catch becomes a weighted :class:`~repro.core.events.CeeEvent`
(``INSTRCHECK_MISMATCH``, ``REPLAY_DIVERGENCE``, ``SCREEN_FAIL``,
``APP_REPORT``; queue overflow logs ``CHECKER_LAG_OVERFLOW``) feeding
the standard analyzer → quarantine loop, so instrcheck catches are
attributable in ``repro trace`` forensics timelines and a condemned
lane is re-placed on a spare core through the fleet scheduler.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.core.confidence import SuspicionTracker
from repro.core.events import CeeEvent, EventKind, EventLog, Reporter
from repro.core.policy import Action, PolicyConfig, QuarantinePolicy
from repro.detection.signals import SignalAnalyzer
from repro.fleet.machine import Machine
from repro.fleet.product import CpuProduct
from repro.fleet.scheduler import FleetScheduler, Task
from repro.mitigation.checkpoint import GranuleFailedError
from repro.mitigation.instrcheck.policies import (
    InstrCheckStats,
    IthicaCheckedCore,
    MeekCheckedCore,
    ReplayChecker,
    WorkUnit,
    _hash01,
    result_digest,
)
from repro.obs.forensics import detection_latency_summary
from repro.silicon.core import Chip, Core
from repro.silicon.defects import OperandPatternDefect, StuckBitDefect
from repro.silicon.errors import CoreOfflineError, MachineCheckError
from repro.silicon.golden import golden_execute
from repro.silicon.units import FunctionalUnit, Op
from repro.workloads.base import digest_ints

MS_PER_DAY = 86_400_000.0

#: the checking arms a campaign can run, cheapest-to-check first
ARMS: tuple[str, ...] = ("screen", "ithica", "reptfd", "meek", "e2e")

#: the op mix every work unit draws from (ALU-heavy, §2's archetypes)
UNIT_OPS: tuple[str, ...] = (
    Op.ADD, Op.SUB, Op.XOR, Op.CMP, Op.ADD, Op.MUL, Op.LOAD, Op.STORE,
)


@dataclasses.dataclass(slots=True)
class InstrCheckConfig:
    """Workload, capacity and timing knobs for one instrcheck campaign."""

    units: int = 320
    unit_ops: int = 16
    n_lanes: int = 4
    sample_rate: float = 0.33
    tick_ms: float = 2.0
    #: MEEK: bounded check-lag queue length per lane
    lag_limit: int = 64
    #: MEEK: checker-core drain budget per lane per tick
    drain_per_tick: int = 12
    #: RepTFD: units per checkpoint-delimited granule
    granule_units: int = 4
    #: screen arm: ticks between screening batteries (per lane core)
    screen_interval_ticks: int = 4
    #: screen arm: ops per battery
    screen_ops: int = 24
    #: operand magnitude for generated units
    operand_bits: int = 20
    #: quarantine capacity sized for multi-bad-core prevalence cells
    policy: PolicyConfig = dataclasses.field(
        default_factory=lambda: PolicyConfig(max_quarantined_fraction=0.5)
    )


@dataclasses.dataclass(slots=True)
class InstrCheckScorecard:
    """What one (arm, sampling rate) configuration achieved."""

    name: str
    sample_rate: float = 0.0
    units_total: int = 0
    units_delivered: int = 0
    units_crashed: int = 0
    #: CEE-affected units the arm flagged before propagation
    cees_caught: int = 0
    #: corrupt units delivered with no flag (the silent hazard)
    cees_escaped: int = 0
    #: flagged units whose delivered output was nonetheless correct
    #: (RepTFD rollback corrections; ITHICA duplicate-run corruptions)
    flagged_clean_units: int = 0
    screen_fails: int = 0
    machine_checks: int = 0
    payload_ops: int = 0
    check_ops: int = 0
    ops_sampled: int = 0
    mismatches: int = 0
    lag_drops: int = 0
    replays: int = 0
    ticks: int = 0
    quarantine_tick: dict[str, int] = dataclasses.field(default_factory=dict)
    #: ground truth: first tick each core demonstrably corrupted
    first_corrupt_tick: dict[str, int] = dataclasses.field(
        default_factory=dict
    )
    #: per-incident stage latencies (see repro.obs.forensics)
    detection_latency_ms: dict = dataclasses.field(default_factory=dict)

    @property
    def slowdown_factor(self) -> float:
        """Total executed ops relative to the unchecked baseline."""
        if self.payload_ops == 0:
            return 1.0
        return (self.payload_ops + self.check_ops) / self.payload_ops

    @property
    def coverage(self) -> float:
        """Fraction of CEE-affected units caught before propagation."""
        total = self.cees_caught + self.cees_escaped
        if total == 0:
            return 1.0
        return self.cees_caught / total

    def summary_row(self) -> list[str]:
        return [
            self.name,
            f"{self.sample_rate:g}",
            f"{self.slowdown_factor:.2f}x",
            f"{self.coverage:.1%}",
            str(self.cees_caught),
            str(self.cees_escaped),
            str(self.lag_drops),
            str(len(self.quarantine_tick)),
        ]

    def to_json(self) -> dict:
        """Machine-readable scorecard (the E18 grid embeds these)."""
        return {
            "name": self.name,
            "sample_rate": self.sample_rate,
            "units_total": self.units_total,
            "units_delivered": self.units_delivered,
            "units_crashed": self.units_crashed,
            "cees_caught": self.cees_caught,
            "cees_escaped": self.cees_escaped,
            "coverage": self.coverage,
            "flagged_clean_units": self.flagged_clean_units,
            "slowdown_factor": self.slowdown_factor,
            "payload_ops": self.payload_ops,
            "check_ops": self.check_ops,
            "ops_sampled": self.ops_sampled,
            "mismatches": self.mismatches,
            "lag_drops": self.lag_drops,
            "replays": self.replays,
            "screen_fails": self.screen_fails,
            "machine_checks": self.machine_checks,
            "ticks": self.ticks,
            "quarantine_tick": dict(sorted(self.quarantine_tick.items())),
            "first_corrupt_tick": dict(
                sorted(self.first_corrupt_tick.items())
            ),
            "detection_latency_ms": self.detection_latency_ms,
        }


class _Lane:
    """One worker lane: a primary core plus its arm-specific wrapper."""

    __slots__ = ("index", "core", "wrapper", "replayer", "buffer",
                 "buffer_tags")

    def __init__(self, index: int, core: Core):
        self.index = index
        self.core = core
        self.wrapper = None
        self.replayer: ReplayChecker | None = None
        self.buffer: list[WorkUnit] = []
        self.buffer_tags: list[int] = []


class InstrCheckCampaign:
    """One arm, one fleet, one deterministic op stream, one scorecard."""

    def __init__(
        self,
        machines: list[Machine],
        arm: str,
        config: InstrCheckConfig | None = None,
        seed: int = 0,
    ):
        if arm not in ARMS:
            raise ValueError(f"unknown arm {arm!r}; known: {ARMS}")
        self.machines = machines
        self.arm = arm
        self.config = config or InstrCheckConfig()
        self.seed = seed

        self.events = EventLog()
        self._core_by_id: dict[str, Core] = {}
        self._machine_by_core: dict[str, str] = {}
        for machine in machines:
            for core in machine.cores:
                self._core_by_id[core.core_id] = core
                self._machine_by_core[core.core_id] = machine.machine_id

        n_cores = len(self._core_by_id)
        self.analyzer = SignalAnalyzer(tracker=SuspicionTracker())
        self.policy = QuarantinePolicy(
            self.config.policy, fleet_cores=n_cores
        )
        self.scheduler = FleetScheduler(machines)
        self.stats = InstrCheckStats()
        self.scorecard = InstrCheckScorecard(
            name=arm, sample_rate=self.config.sample_rate
        )

        # Deterministic workload: units and expected digests up front.
        rng = np.random.default_rng(seed)
        hi = 2 ** self.config.operand_bits
        self.units: list[WorkUnit] = []
        for _ in range(self.config.units):
            unit = []
            for _ in range(self.config.unit_ops):
                op = UNIT_OPS[int(rng.integers(len(UNIT_OPS)))]
                a = int(rng.integers(hi))
                b = int(rng.integers(hi))
                operands = (a,) if op == Op.LOAD or op == Op.STORE else (a, b)
                unit.append((op, operands))
            self.units.append(tuple(unit))
        self.expected = [self._golden_digest(u) for u in self.units]
        self._screen_rng = np.random.default_rng(seed + 11)

        # Lane placement through the scheduler; the MEEK/RepTFD checker
        # core is drawn with the worker cores excluded.
        tasks = [Task(f"lane/{i}") for i in range(self.config.n_lanes)]
        placements, _ = self.scheduler.schedule(tasks)
        if len(placements) < self.config.n_lanes:
            raise ValueError("fleet too small for the requested lane count")
        self.lanes = [
            _Lane(i, self._core_by_id[p.core_id])
            for i, p in enumerate(placements)
        ]
        worker_ids = {lane.core.core_id for lane in self.lanes}
        self.checker_core: Core | None = None
        if arm in ("meek", "reptfd"):
            checker_placed, _ = self.scheduler.schedule(
                [Task("checker")], exclude_core_ids=worker_ids
            )
            if not checker_placed:
                raise ValueError("no spare core available as checker")
            self.checker_core = self._core_by_id[checker_placed[0].core_id]
        # The E11-style end-to-end check runs on the client's own core,
        # trusted by construction.
        self.client_core = Core(
            "client/c00", rng=np.random.default_rng(seed + 1)
        )

        self._caught: set[int] = set()
        self._delivered: dict[int, int] = {}
        self._confessed: set[str] = set()
        self._events_seen = 0
        self._lane_generation = 0
        self._current_tick = 0
        self._overflow_tick: dict[str, int] = {}

        # Ground-truth corruption watcher; unconditional so scorecards
        # are byte-identical with obs on or off.
        self._corruption_base = {
            core_id: core.corruptions_induced
            for core_id, core in self._core_by_id.items()
        }
        self._first_corrupt_tick: dict[str, int] = {}

        self._now_ms = 0.0
        self._ops_checked_seen = 0
        self._obs_on = obs.enabled()
        if self._obs_on:
            obs.tracer.set_clock(lambda: self._now_ms)
            self._m_ops_checked = obs.metrics.counter(
                "instrcheck_ops_checked_total",
                help="ops re-executed by a checking arm (duplicates, "
                     "checker stream, replays)",
                unit="ops",
            )
            self._m_mismatches = obs.metrics.counter(
                "instrcheck_mismatches_total",
                help="duplicate/checker digest disagreements",
                unit="events",
            )
            self._m_lag_drops = obs.metrics.counter(
                "instrcheck_lag_drops_total",
                help="check-stream entries dropped on lag-queue overflow "
                     "(coverage lost)",
                unit="entries",
            )
            self._m_replays = obs.metrics.counter(
                "instrcheck_replays_total",
                help="granules replayed on the checker core (RepTFD)",
                unit="granules",
            )
            self._m_quarantines = obs.metrics.counter(
                "instrcheck_quarantines_total",
                help="cores pulled from the lane pool by the campaign "
                     "policy loop",
                unit="cores",
            )
        for lane in self.lanes:
            self._equip_lane(lane)

    # -- workload ------------------------------------------------------

    @staticmethod
    def _golden_digest(unit: WorkUnit) -> int:
        """Host-side expected digest (never routed through a core)."""
        return digest_ints(
            result_digest(golden_execute(op, *operands))
            for op, operands in unit
        )

    # -- lane equipment ------------------------------------------------

    def _spare_cores(self) -> list[Core]:
        """Online cores not hosting a lane and not the checker."""
        busy = {lane.core.core_id for lane in self.lanes}
        if self.checker_core is not None:
            busy.add(self.checker_core.core_id)
        return [
            core for core_id, core in self._core_by_id.items()
            if core_id not in busy and core.online
        ]

    def _equip_lane(self, lane: _Lane) -> None:
        """(Re)build a lane's arm wrapper around its current core."""
        cfg = self.config
        sampler_seed = self.seed + 100 * lane.index + self._lane_generation
        if self.arm == "ithica":
            lane.wrapper = IthicaCheckedCore(
                lane.core, cfg.sample_rate, seed=sampler_seed,
                stats=self.stats, on_mismatch=self._on_mismatch,
            )
        elif self.arm == "meek":
            assert self.checker_core is not None
            lane.wrapper = MeekCheckedCore(
                lane.core, self.checker_core, cfg.sample_rate,
                lag_limit=cfg.lag_limit, seed=sampler_seed,
                stats=self.stats, on_mismatch=self._on_mismatch,
                on_overflow=self._on_overflow,
            )
        elif self.arm == "reptfd":
            assert self.checker_core is not None
            lane.replayer = ReplayChecker(
                [lane.core] + self._spare_cores(),
                self.checker_core, sample_rate=cfg.sample_rate,
                seed=sampler_seed, stats=self.stats,
                on_divergence=self._on_divergence,
                on_replay=self._on_replay,
            )
        # "e2e" and "screen" run on the bare core.

    # -- event plumbing ------------------------------------------------

    def _emit(
        self,
        core_id: str,
        kind: EventKind,
        detail: str,
        attributed: bool = True,
    ) -> None:
        self.events.append(
            CeeEvent(
                time_days=self._now_ms / MS_PER_DAY,
                machine_id=self._machine_by_core.get(
                    core_id, core_id.rsplit("/", 1)[0]
                ),
                core_id=core_id if attributed else None,
                kind=kind,
                reporter=Reporter.AUTOMATED,
                application="instrcheck",
                detail=detail,
            )
        )

    def _on_mismatch(self, core_id: str, op: str, tag: int) -> None:
        self._caught.add(tag)
        self._emit(core_id, EventKind.INSTRCHECK_MISMATCH, f"op {op}")
        if self._obs_on:
            self._m_mismatches.inc(arm=self.arm)

    def _on_divergence(self, core_id: str, op: str, tag: int) -> None:
        self._caught.add(tag)
        self._emit(core_id, EventKind.REPLAY_DIVERGENCE, f"granule op {op}")
        if self._obs_on:
            self._m_mismatches.inc(arm=self.arm)

    def _on_overflow(self, core_id: str, tag: int) -> None:
        # Deliberately *unattributed* (core_id=None): an overflowing
        # check queue means the checker fell behind — coverage lost,
        # not evidence against the primary.  An attributed weight here
        # would condemn healthy lanes at full sampling rate.  Also
        # throttled to one event per lane per tick; the exact drop
        # count lives in stats.lag_drops and the metric.
        if self._obs_on:
            self._m_lag_drops.inc()
        if self._overflow_tick.get(core_id) == self._current_tick:
            return
        self._overflow_tick[core_id] = self._current_tick
        self._emit(
            core_id, EventKind.CHECKER_LAG_OVERFLOW,
            f"dropped entries near unit {tag}",
            attributed=False,
        )

    def _on_replay(self, tag: int, n_units: int) -> None:
        self.scorecard.replays += 1
        if self._obs_on:
            self._m_replays.inc()
            with obs.tracer.span(
                "instrcheck.replay", tag=tag, units=n_units
            ):
                pass

    # -- unit execution ------------------------------------------------

    def _execute_checked(self, lane: _Lane, tag: int) -> None:
        """Run one unit through the lane's wrapper (ithica / meek)."""
        wrapper = lane.wrapper
        assert wrapper is not None
        wrapper.tag = tag
        digests = []
        try:
            for op, operands in self.units[tag]:
                digests.append(result_digest(wrapper.execute(op, *operands)))
        except MachineCheckError:
            self.scorecard.machine_checks += 1
            self.scorecard.units_crashed += 1
            self._emit(lane.core.core_id, EventKind.MACHINE_CHECK,
                       "mce in unit")
            return
        except CoreOfflineError:
            self.scorecard.units_crashed += 1
            return
        self._delivered[tag] = digest_ints(digests)

    def _execute_plain(self, lane: _Lane, tag: int) -> None:
        """Run one unit on the bare core (e2e / screen arms)."""
        core = lane.core
        digests = []
        try:
            for op, operands in self.units[tag]:
                digests.append(result_digest(core.execute(op, *operands)))
                self.stats.payload_ops += 1
        except MachineCheckError:
            self.scorecard.machine_checks += 1
            self.scorecard.units_crashed += 1
            self._emit(core.core_id, EventKind.MACHINE_CHECK, "mce in unit")
            return
        except CoreOfflineError:
            self.scorecard.units_crashed += 1
            return
        delivered = digest_ints(digests)
        if self.arm == "e2e" and _hash01(
            self.seed + 17, tag
        ) < self.config.sample_rate:
            # E11-style end-to-end check on the trusted client core,
            # before the result is delivered downstream.
            self.stats.ops_sampled += len(self.units[tag])
            self.stats.check_ops += len(self.units[tag])
            redone = digest_ints(
                result_digest(self.client_core.execute(op, *operands))
                for op, operands in self.units[tag]
            )
            if redone != delivered:
                self.stats.mismatches += 1
                self._caught.add(tag)
                self._emit(core.core_id, EventKind.APP_REPORT,
                           "e2e digest mismatch")
                if self._obs_on:
                    self._m_mismatches.inc(arm=self.arm)
        self._delivered[tag] = delivered

    def _flush_reptfd(self, lane: _Lane) -> None:
        """Commit a buffered granule through the lane's replay checker."""
        if not lane.buffer:
            return
        replayer = lane.replayer
        assert replayer is not None
        replayer.pool = [lane.core] + self._spare_cores()
        replayer.tag = lane.buffer_tags[0]
        try:
            digests = replayer.run_granule(lane.buffer, tags=lane.buffer_tags)
        except (GranuleFailedError, MachineCheckError, CoreOfflineError):
            self.scorecard.units_crashed += len(lane.buffer)
        else:
            for tag, digest in zip(lane.buffer_tags, digests):
                self._delivered[tag] = digest
        lane.buffer = []
        lane.buffer_tags = []

    # -- screening (E9 reference arm) ----------------------------------

    def _run_screen(self, tick: int) -> None:
        cfg = self.config
        hi = 2 ** cfg.operand_bits
        for lane in self.lanes:
            core = lane.core
            failed = False
            try:
                for _ in range(cfg.screen_ops):
                    op = UNIT_OPS[int(self._screen_rng.integers(
                        len(UNIT_OPS)
                    ))]
                    a = int(self._screen_rng.integers(hi))
                    b = int(self._screen_rng.integers(hi))
                    operands = (
                        (a,) if op == Op.LOAD or op == Op.STORE else (a, b)
                    )
                    self.stats.check_ops += 1
                    got = core.execute(op, *operands)
                    if result_digest(got) != result_digest(
                        golden_execute(op, *operands)
                    ):
                        failed = True
            except MachineCheckError:
                self.scorecard.machine_checks += 1
                failed = True
            except CoreOfflineError:
                continue
            if failed:
                self.scorecard.screen_fails += 1
                self._confessed.add(core.core_id)
                self._emit(core.core_id, EventKind.SCREEN_FAIL,
                           f"battery at tick {tick}")

    # -- detection loop ------------------------------------------------

    def _run_policy(self, tick: int) -> None:
        new_events = self.events.tail(self._events_seen)
        self._events_seen = len(self.events)
        self.analyzer.ingest_all(new_events)

        now_days = self._now_ms / MS_PER_DAY
        for core_id, score in self.analyzer.suspects(
            now_days, threshold=self.config.policy.retest_threshold
        ):
            core = self._core_by_id.get(core_id)
            if core is None or core_id in self.scorecard.quarantine_tick:
                continue
            decision = self.policy.decide(
                core_id, score, confessed=core_id in self._confessed
            )
            if decision.action in (
                Action.QUARANTINE_CORE, Action.QUARANTINE_MACHINE
            ):
                self._quarantine(core_id, tick)

        for lane in self.lanes:
            if lane.core.core_id in self.scorecard.quarantine_tick:
                self._replace_lane(lane)

    def _quarantine(self, core_id: str, tick: int) -> None:
        if core_id in self.scorecard.quarantine_tick:
            return
        self._core_by_id[core_id].set_online(False)
        self.scorecard.quarantine_tick[core_id] = tick
        if self._obs_on:
            self._m_quarantines.inc()

    def _replace_lane(self, lane: _Lane) -> None:
        """Re-place a quarantined lane on a spare core via the scheduler."""
        # A quarantined lane's granule buffer is abandoned: those units
        # were never committed past a checkpoint.
        if lane.buffer:
            self.scorecard.units_crashed += len(lane.buffer)
            lane.buffer = []
            lane.buffer_tags = []
        if isinstance(lane.wrapper, MeekCheckedCore):
            # The checker verifies the backlog before the lane moves.
            lane.wrapper.flush(None)
        occupied = {peer.core.core_id for peer in self.lanes}
        if self.checker_core is not None:
            occupied.add(self.checker_core.core_id)
        quarantined = set(self.policy.quarantined) | set(
            self.scorecard.quarantine_tick
        )
        placements, _ = self.scheduler.schedule(
            [Task(f"lane/{lane.index}")],
            exclude_core_ids=occupied | quarantined,
        )
        if not placements:
            return  # degraded: the lane stays dark
        lane.core = self._core_by_id[placements[0].core_id]
        self._lane_generation += 1
        self._equip_lane(lane)

    def _note_corruptions(self, tick: int) -> None:
        """Record the first tick each core's corruption counter moved.

        Ground-truth bookkeeping for the forensics timeline; runs
        unconditionally so scorecards don't depend on REPRO_OBS.
        """
        base = self._corruption_base
        for core_id, core in self._core_by_id.items():
            induced = core.corruptions_induced
            if induced != base[core_id]:
                base[core_id] = induced
                if core_id not in self._first_corrupt_tick:
                    self._first_corrupt_tick[core_id] = tick

    # -- the main loop -------------------------------------------------

    def run(self) -> InstrCheckScorecard:
        cfg = self.config
        card = self.scorecard
        obs_on = self._obs_on
        next_unit = 0
        tick = 0
        while next_unit < len(self.units) or any(
            lane.buffer for lane in self.lanes
        ):
            self._now_ms = tick * cfg.tick_ms
            self._current_tick = tick
            for lane in self.lanes:
                if lane.core.core_id in card.quarantine_tick:
                    continue  # dark lane (no spare was available)
                if next_unit >= len(self.units):
                    if self.arm == "reptfd":
                        self._flush_reptfd(lane)
                    continue
                tag = next_unit
                next_unit += 1
                if obs_on:
                    with obs.tracer.span(
                        "instrcheck.unit", unit=tag,
                        core_id=lane.core.core_id,
                    ):
                        self._run_unit(lane, tag)
                else:
                    self._run_unit(lane, tag)
            if self.arm == "meek":
                for lane in self.lanes:
                    if isinstance(lane.wrapper, MeekCheckedCore):
                        lane.wrapper.flush(cfg.drain_per_tick)
            if (
                self.arm == "screen"
                and tick % cfg.screen_interval_ticks == 0
            ):
                self._run_screen(tick)
            self._note_corruptions(tick)
            self._run_policy(tick)
            if obs_on:
                delta = self.stats.ops_sampled - self._ops_checked_seen
                if delta:
                    self._m_ops_checked.inc(delta, arm=self.arm)
                    self._ops_checked_seen = self.stats.ops_sampled
            tick += 1

        # End-of-run barrier: the MEEK checker drains every backlog.
        if self.arm == "meek":
            for lane in self.lanes:
                if isinstance(lane.wrapper, MeekCheckedCore):
                    lane.wrapper.flush(None)
        self._settle(tick)
        return card

    def _run_unit(self, lane: _Lane, tag: int) -> None:
        if self.arm in ("ithica", "meek"):
            self._execute_checked(lane, tag)
        elif self.arm == "reptfd":
            lane.buffer.append(self.units[tag])
            lane.buffer_tags.append(tag)
            if len(lane.buffer) >= self.config.granule_units:
                self._flush_reptfd(lane)
        else:
            self._execute_plain(lane, tag)

    def _settle(self, ticks: int) -> None:
        """Final scoring: deliveries vs golden digests vs catches."""
        card = self.scorecard
        card.ticks = ticks
        card.units_total = len(self.units)
        card.units_delivered = len(self._delivered)
        for tag, delivered in self._delivered.items():
            wrong = delivered != self.expected[tag]
            if tag in self._caught:
                if not wrong:
                    card.flagged_clean_units += 1
            elif wrong:
                card.cees_escaped += 1
        card.cees_caught = len(self._caught)
        card.payload_ops = self.stats.payload_ops
        card.check_ops = self.stats.check_ops
        card.ops_sampled = self.stats.ops_sampled
        card.mismatches = self.stats.mismatches
        card.lag_drops = self.stats.lag_drops
        card.first_corrupt_tick = dict(
            sorted(self._first_corrupt_tick.items())
        )
        card.detection_latency_ms = detection_latency_summary(
            self._first_corrupt_tick, card.quarantine_tick,
            list(self.events), self.config.tick_ms,
        )


# ---------------------------------------------------------------------
# fleet construction for instrcheck experiments
# ---------------------------------------------------------------------

def build_instrcheck_fleet(
    n_machines: int = 2,
    cores_per_machine: int = 4,
    prevalence: float = 0.125,
    base_rate: float = 0.03,
    seed: int = 7,
) -> tuple[list[Machine], list[str]]:
    """A small fleet whose bad cores land among the worker lanes.

    ``round(prevalence * n_cores)`` cores are mercurial, placed at the
    low global indices the scheduler hands to lanes first.  Defects
    alternate between the two §2 archetypes the arms disagree about:
    a *probabilistic* stuck-bit on the ALU (ITHICA can catch it — the
    duplicate run re-rolls the dice) and a *deterministic*
    operand-pattern miscomputation (ITHICA is blind — both executions
    corrupt identically; only a second core can disagree).

    Returns ``(machines, bad core ids)``.
    """
    n_cores = n_machines * cores_per_machine
    n_bad = max(0, min(round(prevalence * n_cores), cores_per_machine - 1))
    bad_indices = set(range(1, 1 + n_bad))
    product = CpuProduct(
        vendor="sim", sku=f"instrcheck-{cores_per_machine}c",
        cores_per_machine=cores_per_machine, core_prevalence=0.0,
    )
    root = np.random.default_rng(seed)
    machines: list[Machine] = []
    bad_core_ids: list[str] = []
    for m in range(n_machines):
        machine_id = f"m{m:05d}"
        cores = []
        for c in range(cores_per_machine):
            core_id = f"{machine_id}/c{c:02d}"
            index = m * cores_per_machine + c
            defects = ()
            if index in bad_indices:
                bad_core_ids.append(core_id)
                if index % 2 == 1:
                    defects = (
                        StuckBitDefect(
                            f"defect/{core_id}", bit=13,
                            base_rate=base_rate,
                            unit=FunctionalUnit.ALU,
                        ),
                    )
                else:
                    defects = (
                        OperandPatternDefect(
                            f"defect/{core_id}", mask=0x7, value=0x5,
                            error=1 << 9, base_rate=1.0,
                            unit=FunctionalUnit.ALU,
                        ),
                    )
            cores.append(
                Core(
                    core_id,
                    defects=defects,
                    rng=np.random.default_rng(root.integers(2**63)),
                )
            )
        machines.append(
            Machine(machine_id=machine_id, product=product, chip=Chip(cores))
        )
    return machines, bad_core_ids


__all__ = [
    "ARMS",
    "InstrCheckCampaign",
    "InstrCheckConfig",
    "InstrCheckScorecard",
    "build_instrcheck_fleet",
]
