"""Tolerating CEEs (paper §7): redundancy, checkpointing, self-checks.

- :mod:`repro.mitigation.redundancy` — DMR/TMR with retry and the
  unreliable-voter ablation.
- :mod:`repro.mitigation.checkpoint` — granular execute-check-commit
  with restart-on-another-core.
- :mod:`repro.mitigation.selfcheck` — self-checking crypto/compression
  wrappers (same-core and cross-core verification).
- :mod:`repro.mitigation.e2e` — end-to-end checksums and replicated
  state machines (the Colossus/Spanner patterns).
- :mod:`repro.mitigation.resilient` — ABFT matrix algorithms, resilient
  sorting, Blum–Kannan checkers.
"""

from repro.mitigation.bft import (
    BftStats,
    Commit,
    QuorumError,
    QuorumReplicatedService,
)
from repro.mitigation.checkpoint import (
    CheckpointRuntime,
    CheckpointStats,
    GranuleFailedError,
)
from repro.mitigation.e2e import (
    ChecksummedStore,
    E2eStats,
    IntegrityError,
    ReplicatedStateMachine,
)
from repro.mitigation.redundancy import (
    DmrExecutor,
    RedundancyExhaustedError,
    RedundantOutcome,
    TmrExecutor,
)
from repro.mitigation.selective import (
    ReplicationStats,
    SelectiveReplicator,
    Stage,
    full_tmr_baseline,
    impact_score,
    unprotected_baseline,
)
from repro.mitigation.selfcheck import (
    CheckedCipher,
    CheckedCodec,
    SelfCheckError,
    SelfCheckStats,
    selfchecked,
)

__all__ = [
    "BftStats",
    "Commit",
    "QuorumError",
    "QuorumReplicatedService",
    "ReplicationStats",
    "SelectiveReplicator",
    "Stage",
    "full_tmr_baseline",
    "impact_score",
    "unprotected_baseline",
    "CheckpointRuntime",
    "CheckpointStats",
    "GranuleFailedError",
    "ChecksummedStore",
    "E2eStats",
    "IntegrityError",
    "ReplicatedStateMachine",
    "DmrExecutor",
    "RedundancyExhaustedError",
    "RedundantOutcome",
    "TmrExecutor",
    "CheckedCipher",
    "CheckedCodec",
    "SelfCheckError",
    "SelfCheckStats",
    "selfchecked",
]
