"""``repro lint`` — the invariant gate's command-line face.

Usage::

    repro lint                         # src tests benchmarks scripts
    repro lint src/repro/serving       # narrow to a subtree
    repro lint --json                  # machine-readable findings
    repro lint --write-baseline        # grandfather current findings
    repro lint --no-baseline           # pretend the baseline is empty
    repro lint --select DET001,API001  # one or a few rules
    repro lint --list-rules            # the registered rule pack

Exit status: 0 clean (every finding baselined or suppressed), 1 new
findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint import baseline as baseline_mod
from repro.lint.base import RULES, all_rules
from repro.lint.engine import LintConfig, run_lint

#: what ``repro lint`` scans when no paths are given
DEFAULT_PATHS: tuple[str, ...] = ("src", "tests", "benchmarks", "scripts")

#: default baseline location (repo root, checked in)
DEFAULT_BASELINE = "lint-baseline.json"


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to a parser (shared with ``repro`` CLI)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help=f"files or directories (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print structured findings instead of human-readable lines",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--root", default=".", metavar="DIR",
        help="directory findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )


def _print_rules() -> int:
    width = max(len(rule_id) for rule_id in RULES)
    for rule in all_rules():
        print(f"{rule.rule_id:<{width}}  [{rule.severity.value:<7}] "
              f"{rule.title}")
    return 0


def _resolve_select(text: str | None) -> frozenset[str] | None:
    if text is None:
        return None
    requested = frozenset(
        part.strip().upper() for part in text.split(",") if part.strip()
    )
    unknown = sorted(requested - set(RULES))
    if unknown:
        known = ", ".join(sorted(RULES))
        raise SystemExit(
            f"repro lint: unknown rule(s) {', '.join(unknown)} "
            f"(known: {known})"
        )
    return requested


def run(args: argparse.Namespace) -> int:
    """Execute a parsed ``repro lint`` invocation."""
    if args.list_rules:
        return _print_rules()
    root = Path(args.root)
    paths = list(args.paths) or [
        p for p in DEFAULT_PATHS if (root / p).exists()
    ]
    missing = [p for p in paths if not (root / p).exists()
               and not Path(p).exists()]
    if missing:
        print(f"repro lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    config = LintConfig(select=_resolve_select(args.select))
    baseline_path = root / args.baseline
    baseline: dict[str, int] | None = None
    if not args.no_baseline and not args.write_baseline:
        if baseline_path.exists():
            try:
                baseline = baseline_mod.load(baseline_path)
            except baseline_mod.BaselineError as exc:
                print(f"repro lint: {exc}", file=sys.stderr)
                return 2

    result = run_lint(paths, root=root, config=config, baseline=baseline)

    if args.write_baseline:
        baseline_mod.save(baseline_path, result.new)
        print(
            f"wrote {baseline_path} ({len(result.new)} finding(s) "
            "grandfathered)",
            file=sys.stderr,
        )
        return 0

    if args.json:
        json.dump(result.to_json(), sys.stdout, indent=2, sort_keys=True)
        print()
        return result.exit_status

    for finding in result.new:
        print(finding.render())
        if finding.hint:
            print(f"    hint: {finding.hint}")
    summary = (
        f"{result.files_scanned} file(s) scanned: "
        f"{len(result.new)} new, {len(result.grandfathered)} baselined, "
        f"{result.suppressed} suppressed"
    )
    print(summary, file=sys.stderr)
    return result.exit_status


__all__ = ["DEFAULT_BASELINE", "DEFAULT_PATHS", "add_arguments", "run"]
