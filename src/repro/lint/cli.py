"""``repro lint`` — the invariant gate's command-line face.

Usage::

    repro lint                         # src tests benchmarks scripts
    repro lint src/repro/serving       # narrow to a subtree
    repro lint --json                  # machine-readable findings
    repro lint --sarif out.sarif       # SARIF 2.1.0 (code scanning)
    repro lint --write-baseline        # grandfather current findings
    repro lint --prune-baseline        # drop stale baseline entries
    repro lint --no-baseline           # pretend the baseline is empty
    repro lint --select DET001,API001  # one or a few rules
    repro lint --workers 4             # parallel per-file pass
    repro lint --statistics            # per-rule / per-phase accounting
    repro lint --list-rules            # the registered rule pack

A warm run re-lints only files whose content changed (the cache lives
at ``.repro-lint-cache.json`` under ``--root``; ``--no-cache`` forces
a cold run).  Exit status: 0 clean (every finding baselined or
suppressed), 1 new findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint import baseline as baseline_mod
from repro.lint import sarif as sarif_mod
from repro.lint.base import RULES, all_rules
from repro.lint.cache import CACHE_FILENAME
from repro.lint.engine import LintConfig, run_lint

#: what ``repro lint`` scans when no paths are given
DEFAULT_PATHS: tuple[str, ...] = ("src", "tests", "benchmarks", "scripts")

#: default baseline location (repo root, checked in)
DEFAULT_BASELINE = "lint-baseline.json"


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to a parser (shared with ``repro`` CLI)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help=f"files or directories (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print structured findings instead of human-readable lines",
    )
    parser.add_argument(
        "--sarif", default=None, metavar="FILE",
        help="also write findings as SARIF 2.1.0 ('-' for stdout)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="rewrite the baseline keeping only still-matching entries",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--root", default=".", metavar="DIR",
        help="directory findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="processes for the per-file pass (default: 1, inline)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help=f"skip the incremental cache ({CACHE_FILENAME})",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="print per-rule and per-phase accounting to stderr",
    )
    parser.add_argument(
        "--statistics-json", default=None, metavar="FILE",
        help="write the statistics payload as JSON (CI artifact)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )


def _print_rules() -> int:
    width = max(len(rule_id) for rule_id in RULES)
    for rule in all_rules():
        print(f"{rule.rule_id:<{width}}  [{rule.severity.value:<7}] "
              f"{rule.title}")
    return 0


def _resolve_select(text: str | None) -> frozenset[str] | None:
    if text is None:
        return None
    requested = frozenset(
        part.strip().upper() for part in text.split(",") if part.strip()
    )
    unknown = sorted(requested - set(RULES))
    if unknown:
        known = ", ".join(sorted(RULES))
        raise SystemExit(
            f"repro lint: unknown rule(s) {', '.join(unknown)} "
            f"(known: {known})"
        )
    return requested


def run(args: argparse.Namespace) -> int:
    """Execute a parsed ``repro lint`` invocation."""
    if args.list_rules:
        return _print_rules()
    root = Path(args.root)
    paths = list(args.paths) or [
        p for p in DEFAULT_PATHS if (root / p).exists()
    ]
    missing = [p for p in paths if not (root / p).exists()
               and not Path(p).exists()]
    if missing:
        print(f"repro lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    if args.prune_baseline and args.no_baseline:
        print("repro lint: --prune-baseline needs the baseline "
              "(drop --no-baseline)", file=sys.stderr)
        return 2

    config = LintConfig(select=_resolve_select(args.select))
    baseline_path = root / args.baseline
    baseline: dict[str, int] | None = None
    if not args.no_baseline and not args.write_baseline:
        if baseline_path.exists():
            try:
                baseline = baseline_mod.load(baseline_path)
            except baseline_mod.BaselineError as exc:
                print(f"repro lint: {exc}", file=sys.stderr)
                return 2

    result = run_lint(
        paths, root=root, config=config, baseline=baseline,
        workers=args.workers,
        cache_path=None if args.no_cache else root / CACHE_FILENAME,
    )

    if args.write_baseline:
        baseline_mod.save(baseline_path, result.new)
        print(
            f"wrote {baseline_path} ({len(result.new)} finding(s) "
            "grandfathered)",
            file=sys.stderr,
        )
        return 0

    if args.prune_baseline:
        # grandfathered == exactly the baseline entries that still
        # match, so re-saving them IS the pruned baseline
        baseline_mod.save(baseline_path, result.grandfathered)
        print(
            f"pruned {baseline_path}: {result.stale_baseline} stale "
            f"entr{'y' if result.stale_baseline == 1 else 'ies'} "
            f"removed, {len(result.grandfathered)} kept",
            file=sys.stderr,
        )

    if args.sarif is not None:
        payload = sarif_mod.to_sarif(result, config)
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if args.sarif == "-":
            sys.stdout.write(text)
        else:
            Path(args.sarif).write_text(text)

    if args.statistics_json is not None and result.stats is not None:
        Path(args.statistics_json).write_text(
            json.dumps(result.stats.to_json(), indent=2, sort_keys=True)
            + "\n"
        )

    if args.json:
        json.dump(result.to_json(), sys.stdout, indent=2, sort_keys=True)
        print()
        if args.statistics and result.stats is not None:
            print(result.stats.render(), file=sys.stderr)
        return result.exit_status

    for finding in result.new:
        print(finding.render())
        if finding.hint:
            print(f"    hint: {finding.hint}")
    summary = (
        f"{result.files_scanned} file(s) scanned: "
        f"{len(result.new)} new, {len(result.grandfathered)} baselined, "
        f"{result.suppressed} suppressed"
    )
    print(summary, file=sys.stderr)
    if result.stale_baseline and not args.prune_baseline:
        print(
            f"note: {result.stale_baseline} baseline entr"
            f"{'y' if result.stale_baseline == 1 else 'ies'} no longer "
            "match(es) any finding; tighten the ratchet with "
            "--prune-baseline",
            file=sys.stderr,
        )
    if args.statistics and result.stats is not None:
        print(result.stats.render(), file=sys.stderr)
    return result.exit_status


__all__ = ["DEFAULT_BASELINE", "DEFAULT_PATHS", "add_arguments", "run"]
