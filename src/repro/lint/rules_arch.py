"""Architecture rule (ARCH001): the layer DAG has no back-edges.

The repo's package layering — ``core/obs`` at the bottom, then
``silicon``/``fleet``, then ``workloads``, then the campaign layers
(``detection``/``mitigation``/``serving``/``storage``/``chaos``),
then ``engine``, ``analysis``, and finally the operator surface
(``cli``/``lint``) — was until now a convention in DESIGN.md §4 that
nothing checked, exactly the failure mode the paper warns about.
ARCH001 makes it a contract: the table lives in
:attr:`~repro.lint.engine.LintConfig.layers` and every *module-level*
import must point at the same or a lower layer.

Escapes, in preference order: (1) restructure so the dependency
points downward; (2) defer with a function-local import (the edge
becomes lazy and leaves the module import graph); (3) annotate a
deliberate upward edge with ``# repro: noqa-ARCH001 -- <why>`` on the
import line — the documented-embed pattern the fleet simulator uses
for the real detection stack it drives.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.lint.base import FileContext, FileRule, register
from repro.lint.findings import Finding
from repro.lint.importgraph import (
    ImportEdge,
    module_imports,
    module_name,
    top_package,
)


@register
class LayerDagRule(FileRule):
    """ARCH001: module-level imports respect the layer DAG."""

    rule_id = "ARCH001"
    title = "module-level imports respect the package layer DAG"
    hint = (
        "point the dependency downward, defer it with a "
        "function-local import, or mark a deliberate embed with "
        "'# repro: noqa-ARCH001 -- <why>'; the layer table is "
        "LintConfig.layers (documented in DESIGN.md)"
    )
    src_only = True

    def _layer_index(self, ctx: FileContext) -> dict[str, int]:
        return {
            package: index
            for index, layer in enumerate(ctx.config.layers)
            for package in layer
        }

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        dotted = module_name(ctx.rel_path)
        if dotted is None:
            return
        own = top_package(dotted)
        if own is None:
            return                 # the bare package root (__init__.py)
        layers = self._layer_index(ctx)
        own_layer = layers.get(own)
        if own_layer is None:
            # a *subpackage* must be placed in the table; a loose
            # top-level module (src/repro/<name>.py) is an entry-point
            # shape and sits at the top: anything below is importable
            if len(ctx.rel_path.split("/")) >= 4:
                yield self.make(ctx, ctx.tree, (
                    f"package '{own}' is not in the LintConfig.layers "
                    "table; add it to the layer it belongs to"
                ))
                return
            own_layer = len(ctx.config.layers)
        for edge in module_imports(ctx.tree):
            yield from self._check_edge(ctx, own, own_layer, layers, edge)

    def _check_edge(
        self, ctx: FileContext, own: str, own_layer: int,
        layers: dict[str, int], edge: ImportEdge,
    ) -> Iterator[Finding]:
        target = top_package(edge.module)
        if target is None or target == own:
            return
        if target not in layers:
            yield self._edge_finding(ctx, edge, (
                f"imported package '{target}' is not in the "
                "LintConfig.layers table"
            ))
            return
        if layers[target] > own_layer:
            yield self._edge_finding(ctx, edge, (
                f"'{own}' (layer {own_layer}) imports "
                f"'{edge.module}' from higher layer {layers[target]}; "
                "the layer DAG has no back-edges"
            ))

    def _edge_finding(
        self, ctx: FileContext, edge: ImportEdge, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=ctx.rel_path,
            line=edge.line,
            col=edge.col,
            message=message,
            hint=self.hint,
            severity=self.severity,
            end_line=edge.end_line,
        )


__all__ = ["LayerDagRule"]
