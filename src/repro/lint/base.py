"""Rule framework: contexts, base classes, and the rule registry.

Two rule shapes exist:

- :class:`FileRule` — sees one parsed file at a time through a
  :class:`FileContext`; most rules (RNG discipline, wall-clock use,
  mutable defaults) are local properties of a single AST.
- :class:`ProjectRule` — runs once per lint invocation against the
  :class:`ProjectContext`; cross-file contracts (every ``EventKind``
  weighted, every emitted metric name declared) live here.

Rules self-register via :func:`register`; the registry is the landing
zone for future project-specific checks — adding a rule is writing one
class, and ``repro lint --list-rules`` / ``tests/test_lint.py`` /
``scripts/check_docs.py`` pick it up automatically.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable, Iterator, TYPE_CHECKING

from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.engine import LintConfig
    from repro.lint.importgraph import ImportGraph


@dataclasses.dataclass(slots=True)
class FileContext:
    """Everything a :class:`FileRule` may look at for one file."""

    path: Path
    rel_path: str            # posix, relative to the scan root
    tree: ast.Module
    source: str
    config: "LintConfig"
    project: "ProjectContext"

    def in_src(self) -> bool:
        """Is this file part of the shipped package (``src/`` tree)?"""
        return self.rel_path.startswith("src/")


class ProjectContext:
    """Cross-file state shared by one lint invocation.

    Parses lazily and caches: project rules ask for well-known files
    (``repro.core.events``, ``repro.obs.names``, ...) by the paths in
    :class:`LintConfig`, which keeps the rules testable against fixture
    trees.
    """

    def __init__(self, root: Path, config: "LintConfig") -> None:
        self.root = root
        self.config = config
        self._trees: dict[str, ast.Module | None] = {}
        self._import_graph: "ImportGraph | None" = None

    def import_graph(self) -> "ImportGraph":
        """The src/repro module-level import graph, built lazily once."""
        if self._import_graph is None:
            from repro.lint.importgraph import ImportGraph
            self._import_graph = ImportGraph.build(self.root)
        return self._import_graph

    def parse(self, rel_path: str) -> ast.Module | None:
        """Parsed AST for ``rel_path`` under the root, or None."""
        if rel_path not in self._trees:
            path = self.root / rel_path
            try:
                self._trees[rel_path] = ast.parse(
                    path.read_text(), filename=str(path)
                )
            except (OSError, SyntaxError):
                self._trees[rel_path] = None
        return self._trees[rel_path]

    def declared_obs_names(self) -> frozenset[str] | None:
        """Metric/span names declared as constants in the names module.

        Returns None when the names module is absent (fixture trees),
        in which case SAFE002 has nothing to check against and stays
        quiet rather than flagging every emission.
        """
        tree = self.parse(self.config.obs_names_path)
        if tree is None:
            return None
        names: set[str] = set()
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Constant):
                continue
            if not isinstance(node.value.value, str):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.isupper():
                    names.add(node.value.value)
        return frozenset(names)


class Rule:
    """Base for all rules; subclasses define the class attributes.

    Attributes:
        rule_id: stable identifier (``FAMILY###``), used by noqa
            comments, baselines, ``--select``, and the docs gate.
        title: one-line summary for ``--list-rules`` and docs.
        severity: default severity of this rule's findings.
        hint: actionable fix guidance attached to every finding.
        src_only: restrict to files under ``src/`` (contracts about the
            shipped package, not about test scaffolding).
    """

    rule_id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    hint: str = ""
    src_only: bool = False

    def make(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Finding at ``node``'s location in ``ctx``'s file."""
        line = getattr(node, "lineno", 1)
        return Finding(
            rule_id=self.rule_id,
            path=ctx.rel_path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint,
            severity=self.severity,
            end_line=getattr(node, "end_lineno", None) or line,
        )


class FileRule(Rule):
    """A rule evaluated independently per file."""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule evaluated once per invocation, across files."""

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        raise NotImplementedError


#: rule_id -> rule class; populated by :func:`register` at import time
RULES: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be new)."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must set rule_id")
    if cls.rule_id in RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    RULES[cls.rule_id] = cls
    return cls


def all_rules(select: frozenset[str] | None = None) -> Iterator[Rule]:
    """Instantiate registered rules in id order, optionally filtered."""
    for rule_id in sorted(RULES):
        if select is None or rule_id in select:
            yield RULES[rule_id]()


def dotted_source(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None (shared helper)."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


__all__ = [
    "FileContext",
    "FileRule",
    "ProjectContext",
    "ProjectRule",
    "RULES",
    "Rule",
    "all_rules",
    "dotted_source",
    "register",
]
