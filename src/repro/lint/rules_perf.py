"""Performance rules (PERF family): hot-path object-layout contracts.

The vectorized fleet loop and the per-op silicon path allocate these
dataclasses millions of times per campaign; ``__slots__`` keeps them
off the per-instance ``__dict__`` (measured in the PR-3 bench pass).
The module table in :class:`~repro.lint.engine.LintConfig` names the
files where that matters — PERF001 stops a refactor from silently
dropping the layout optimization, and PERF002 stops per-core Python
loops from creeping back into the columnar substrate's hot paths.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.base import FileContext, FileRule, dotted_source, register
from repro.lint.findings import Finding


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    """The dataclass decorator node, if this class has one."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_source(target)
        if dotted is not None and dotted.split(".")[-1] == "dataclass":
            return decorator
    return None


def _declares_slots(node: ast.ClassDef, decorator: ast.expr) -> bool:
    if isinstance(decorator, ast.Call):
        for keyword in decorator.keywords:
            if keyword.arg == "slots":
                return bool(getattr(keyword.value, "value", False))
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__"
            for t in stmt.targets
        ):
            return True
    return False


def _cores_attributes(iterable: ast.expr) -> Iterable[ast.Attribute]:
    """``.cores`` attribute accesses inside a loop's iterable expression."""
    for node in ast.walk(iterable):
        if isinstance(node, ast.Attribute) and node.attr == "cores":
            yield node


@register
class PerCoreLoopRule(FileRule):
    """PERF002: no per-core Python loops in columnar hot-path modules.

    The columnar substrate (:mod:`repro.fleet.columns`) exists so that
    fleet-scale code paths never iterate ``machine.cores`` in Python —
    at O(1M) cores one such loop costs more than an entire campaign
    tick.  This rule flags ``for`` loops (and comprehensions) whose
    iterable contains a ``.cores`` attribute access in the modules on
    the hot-path table; the sanctioned object-substrate compatibility
    paths carry ``# repro: noqa-PERF002`` with a tracking note.
    """

    rule_id = "PERF002"
    title = "hot-path modules never loop over .cores in Python"
    hint = (
        "use the FleetColumns arrays (flat indices, machine_core_range, "
        "numpy masks) instead of iterating Core objects; if this is a "
        "sanctioned object-substrate compat path, add "
        "'# repro: noqa-PERF002 -- <why>' on the reported line"
    )
    src_only = True

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.rel_path not in ctx.config.percore_loop_modules:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables = [node.iter]
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                iterables = [gen.iter for gen in node.generators]
            else:
                continue
            for iterable in iterables:
                for attr in _cores_attributes(iterable):
                    yield self.make(ctx, attr, (
                        "per-core Python loop over "
                        f"{dotted_source(attr) or '.cores'} in a "
                        "columnar hot-path module (lint per-core table)"
                    ))


@register
class HotPathSlotsRule(FileRule):
    """PERF001: hot-path dataclasses must declare ``__slots__``."""

    rule_id = "PERF001"
    title = "hot-path dataclasses declare __slots__"
    hint = (
        "add slots=True to the @dataclasses.dataclass(...) decorator "
        "(or an explicit __slots__); these modules allocate instances "
        "in per-op / per-request hot loops"
    )
    src_only = True

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.rel_path not in ctx.config.slots_modules:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            if not _declares_slots(node, decorator):
                yield self.make(ctx, node, (
                    f"dataclass {node.name!r} in a hot-path module "
                    "(lint slots table) does not declare __slots__"
                ))


__all__ = ["HotPathSlotsRule", "PerCoreLoopRule"]
