"""Dataflow rules (DET004 seed provenance, SHM001 shm write-safety).

Both rules ride the shared :mod:`repro.lint.dataflow` walker; each
declares only its taint sources and the sites it cares about.

``DET004`` closes the gap DET001 leaves open: DET001 bans the hidden
module RNG, but nothing stopped ``default_rng(42)`` — seeded, so
deterministic, yet *disconnected from the trial seed*, which quietly
breaks the "same seed, same scorecard" contract the moment two call
sites share the literal.  Every RNG/SeedSequence construction in
``src/repro`` must now trace its seed to a function parameter, a
config field, or a ``SeedSequence.spawn`` child.

``SHM001`` guards the columnar snapshot protocol: arrays reached from
``repro.fleet.shm.attach(...)`` are views into a shared read-only
segment — a worker that writes one corrupts *every* worker's fleet
silently (the exact §3 failure class this repo simulates).  Stores,
aug-assigns, and in-place numpy mutators on names whose def-chain
reaches an attach are flagged; ``thaw()`` / ``copy()`` kill the taint
because they produce private mutable copies.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.base import FileContext, FileRule, dotted_source, register
from repro.lint.dataflow import Dataflow, TaintEnv, TaintPolicy
from repro.lint.findings import Finding
from repro.lint.rules_det import _module_aliases

#: numpy.random constructors DET004 audits, with their seed argument
_CONSTRUCTORS: dict[str, str] = {
    "default_rng": "seed",
    "SeedSequence": "entropy",
    "Generator": "bit_generator",
}


def _numpy_random_bases(tree: ast.Module) -> frozenset[str]:
    """Dotted prefixes that mean ``numpy.random`` in this file."""
    bases = {"numpy.random", "np.random"}
    for alias in _module_aliases(tree, "numpy"):
        bases.add(f"{alias}.random")
    return frozenset(bases)


def _from_imported_constructors(tree: ast.Module) -> dict[str, str]:
    """Local name -> constructor for ``from numpy.random import ...``."""
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.ImportFrom)
            and node.level == 0
            and node.module in ("numpy.random", "np.random")
        ):
            for alias in node.names:
                if alias.name in _CONSTRUCTORS:
                    names[alias.asname or alias.name] = alias.name
    return names


class _SeedPolicy(TaintPolicy):
    """Taint = "derives from a trial seed": params, config fields,
    and anything computed from them (spawn children, rng draws,
    arithmetic)."""

    def __init__(self, rule: "SeedProvenanceRule", ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: list[Finding] = []
        self.bases = _numpy_random_bases(ctx.tree)
        self.imported = _from_imported_constructors(ctx.tree)

    def param_source(self, name: str) -> bool:
        return True

    def attribute_load(self, node: ast.Attribute, base_tainted: bool) -> bool:
        # an attribute read is a config/state field — a declared home
        # for the seed, unlike a literal inlined at the call site
        return True

    def _constructor(self, node: ast.Call) -> str | None:
        if isinstance(node.func, ast.Name):
            return self.imported.get(node.func.id)
        dotted = dotted_source(node.func)
        if dotted is None:
            return None
        base, _, tail = dotted.rpartition(".")
        if tail in _CONSTRUCTORS and base in self.bases:
            return tail
        return None

    def visit_statement(
        self, stmt: ast.stmt, env: TaintEnv, flow: Dataflow
    ) -> None:
        for call, call_env in flow.iter_calls(stmt, env):
            name = self._constructor(call)
            if name is None:
                continue
            seed_kw = _CONSTRUCTORS[name]
            seed_arg: ast.expr | None = None
            if call.args:
                seed_arg = call.args[0]
            else:
                for keyword in call.keywords:
                    if keyword.arg == seed_kw:
                        seed_arg = keyword.value
                        break
            if seed_arg is None:
                self.findings.append(self.rule.make(self.ctx, call, (
                    f"'{name}()' without a {seed_kw} argument draws OS "
                    "entropy; derive the seed from the trial seed"
                )))
            elif not flow.taint(seed_arg, call_env):
                what = (
                    "a literal"
                    if isinstance(seed_arg, ast.Constant)
                    else "an untainted local"
                )
                self.findings.append(self.rule.make(self.ctx, call, (
                    f"{seed_kw} argument of '{name}(...)' is {what}; it "
                    "must trace to a function parameter, config field, "
                    "or SeedSequence.spawn child"
                )))


@register
class SeedProvenanceRule(FileRule):
    """DET004: RNG constructions must derive from the trial seed."""

    rule_id = "DET004"
    title = "RNG/SeedSequence seeds trace to the trial seed"
    hint = (
        "pass the seed in as a parameter or config field (ultimately "
        "from SeedSequence.spawn / derive_trial_seeds); a fixed "
        "literal is deterministic but severed from the campaign seed "
        "— if the site is a deliberate fixed oracle, say so with "
        "'# repro: noqa-DET004 -- <why>'"
    )
    src_only = True

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        policy = _SeedPolicy(self, ctx)
        Dataflow(policy).run(ctx.tree)
        return policy.findings


#: ndarray methods that mutate in place (reads stay legal on views)
_INPLACE_METHODS = frozenset({
    "fill", "sort", "partition", "put", "itemset", "resize",
    "setfield", "setflags",
})

#: numpy module-level functions whose *first* argument is mutated
_INPLACE_FUNCTIONS = frozenset({"copyto", "put", "place", "putmask"})

#: calls that produce a private mutable copy — taint stops here
_COPY_TAILS = frozenset({
    "thaw", "copy", "deepcopy", "to_machines", "from_machines",
})


def _attach_names(tree: ast.Module) -> frozenset[str]:
    """Local names bound to ``repro.fleet.shm.attach`` via from-import."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.ImportFrom)
            and node.level == 0
            and node.module == "repro.fleet.shm"
        ):
            for alias in node.names:
                if alias.name == "attach":
                    names.add(alias.asname or alias.name)
    return frozenset(names)


class _ShmPolicy(TaintPolicy):
    """Taint = "is (a view into) a snapshot-attached fleet"."""

    def __init__(self, rule: "ShmWriteSafetyRule", ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: list[Finding] = []
        self.attach_names = _attach_names(ctx.tree)

    def call_override(self, node: ast.Call) -> bool | None:
        dotted = dotted_source(node.func)
        tail = dotted.rpartition(".")[2] if dotted else None
        if tail in _COPY_TAILS:
            return False
        if tail == "attach":
            if isinstance(node.func, ast.Attribute):
                return True          # shm.attach(...), fleet_shm.attach(...)
            if dotted in self.attach_names:
                return True          # from repro.fleet.shm import attach
        return None

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.rule.make(self.ctx, node, message))

    def _root_dotted(self, node: ast.expr) -> str:
        return dotted_source(node) or "<snapshot view>"

    def visit_statement(
        self, stmt: ast.stmt, env: TaintEnv, flow: Dataflow
    ) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._check_store(target, env, flow)
        elif isinstance(stmt, ast.AugAssign):
            target = stmt.target
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self._check_store(target, env, flow, augmented=True)
            elif isinstance(target, ast.Name) and flow.taint(target, env):
                self._flag(stmt, (
                    f"augmented assignment to '{target.id}' mutates a "
                    "snapshot-attached array in place"
                ))
        for call, call_env in flow.iter_calls(stmt, env):
            self._check_call(call, call_env, flow)

    def _check_store(
        self, target: ast.expr, env: TaintEnv, flow: Dataflow,
        augmented: bool = False,
    ) -> None:
        if isinstance(target, ast.Subscript) and flow.taint(
            target.value, env
        ):
            verb = "augmented subscript store" if augmented else (
                "subscript store"
            )
            self._flag(target, (
                f"{verb} into snapshot-attached "
                f"'{self._root_dotted(target.value)}'; shm views are "
                "read-only in workers"
            ))
        elif isinstance(target, ast.Attribute) and flow.taint(
            target.value, env
        ):
            self._flag(target, (
                f"attribute store on snapshot-attached "
                f"'{self._root_dotted(target.value)}'; thaw() a private "
                "copy before mutating"
            ))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(elt, env, flow, augmented=augmented)

    def _check_call(
        self, call: ast.Call, env: TaintEnv, flow: Dataflow
    ) -> None:
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in _INPLACE_METHODS and flow.taint(call.func.value, env):
                self._flag(call, (
                    f"in-place '.{attr}()' on snapshot-attached "
                    f"'{self._root_dotted(call.func.value)}'"
                ))
                return
            if (
                attr in _INPLACE_FUNCTIONS
                and call.args
                and flow.taint(call.args[0], env)
            ):
                self._flag(call, (
                    f"'{dotted_source(call.func)}(...)' writes into "
                    "snapshot-attached "
                    f"'{self._root_dotted(call.args[0])}'"
                ))


@register
class ShmWriteSafetyRule(FileRule):
    """SHM001: no writes through snapshot-attached fleet views."""

    rule_id = "SHM001"
    title = "snapshot-attached fleet columns are never written"
    hint = (
        "shm-attached FleetColumns are zero-copy views into a shared "
        "read-only segment; call .thaw() (copy-on-thaw) and mutate "
        "the private copy, or do the write before publish()"
    )
    src_only = True

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        policy = _ShmPolicy(self, ctx)
        Dataflow(policy).run(ctx.tree)
        return policy.findings


__all__ = ["SeedProvenanceRule", "ShmWriteSafetyRule"]
