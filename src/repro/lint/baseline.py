"""Baseline file: grandfathered findings that do not fail the gate.

The baseline maps :attr:`~repro.lint.findings.Finding.fingerprint`
(path + rule + message — deliberately line-free, so entries survive
edits elsewhere in the file) to an occurrence count.  ``repro lint``
subtracts the baseline from the current findings; anything left is
*new* and fails.  Shrinking is free (fixed findings just leave stale
entries; ``--write-baseline`` garbage-collects them), growing requires
an explicit ``--write-baseline`` — the ratchet only tightens.
"""

from __future__ import annotations

import collections
import json
from pathlib import Path

from repro.lint.findings import Finding

#: current on-disk schema version
VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def count_fingerprints(findings: list[Finding]) -> dict[str, int]:
    """Occurrence count per fingerprint, in sorted-key order."""
    counts: collections.Counter[str] = collections.Counter(
        finding.fingerprint for finding in findings
    )
    return dict(sorted(counts.items()))


def save(path: Path, findings: list[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, diff-friendly)."""
    payload = {"version": VERSION, "findings": count_fingerprints(findings)}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load(path: Path) -> dict[str, int]:
    """Read a baseline; raises :class:`BaselineError` on bad shape."""
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("version") != VERSION
        or not isinstance(payload.get("findings"), dict)
    ):
        raise BaselineError(
            f"{path}: expected {{'version': {VERSION}, 'findings': "
            "{...}}; regenerate with --write-baseline"
        )
    findings = payload["findings"]
    for key, value in findings.items():
        if not isinstance(key, str) or not isinstance(value, int):
            raise BaselineError(f"{path}: malformed entry {key!r}")
    return dict(findings)


def split_new(
    findings: list[Finding], baseline: dict[str, int]
) -> tuple[list[Finding], list[Finding]]:
    """Partition into (new, grandfathered) against a baseline.

    For each fingerprint, the first ``baseline[fp]`` occurrences (in
    report order, i.e. ascending line) are grandfathered; occurrences
    beyond the baselined count are new.
    """
    remaining = dict(baseline)
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        left = remaining.get(finding.fingerprint, 0)
        if left > 0:
            remaining[finding.fingerprint] = left - 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered


__all__ = [
    "BaselineError",
    "VERSION",
    "count_fingerprints",
    "load",
    "save",
    "split_new",
]
