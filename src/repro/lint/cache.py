"""Content-hash incremental cache: re-lint only what changed.

Per-file findings are pure functions of ``(file source, rule pack,
config, project inputs)``, so a warm run can skip every file whose
inputs are byte-identical to the last run.  Two hash layers enforce
that honestly:

- the **inputs fingerprint** covers the rule-pack version, the
  ``repr`` of the :class:`~repro.lint.engine.LintConfig`, the lint
  package's own ``*.py`` sources, and the project files the rules read
  (events/weights/obs-names modules).  Any change invalidates the
  whole cache — a rule edit must never serve stale findings.
- each **file entry** is keyed by the SHA-256 of that file's source;
  an edited file simply misses and re-lints.

Project rules (SAFE001/SAFE002/OBS003) are *not* cached — they read
cross-file state and are cheap relative to the per-file AST pass — so
the cache stores only file-rule output: kept findings plus the rule
ids of noqa-suppressed ones (needed so ``--statistics`` is identical
for cold and warm runs).

The cache lives at ``.repro-lint-cache.json`` in the scan root; it is
a derived artifact (gitignored) and corruption of any kind degrades to
an empty cache, never to an error.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.engine import LintConfig

#: bump when rule semantics change without a source diff (e.g. a
#: table baked into a published wheel); also the SARIF tool version
PACK_VERSION = "2.0"

#: default cache file name, relative to the scan root
CACHE_FILENAME = ".repro-lint-cache.json"

#: on-disk schema version of the cache file itself
_SCHEMA = 1


def source_digest(source: str) -> str:
    """SHA-256 hex digest of one file's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def inputs_fingerprint(root: Path, config: "LintConfig") -> str:
    """One digest over everything that can change a file's findings.

    Covers the pack version, the config repr (tables like
    ``layers`` and ``slots_modules`` live there), every ``*.py``
    source in this package (a rule edit invalidates wholesale), and
    the project input files named by the config.
    """
    digest = hashlib.sha256()

    def feed(data: bytes) -> None:
        digest.update(data)
        digest.update(b"\x00")

    feed(PACK_VERSION.encode("utf-8"))
    feed(repr(config).encode("utf-8"))
    package_dir = Path(__file__).resolve().parent
    for path in sorted(package_dir.glob("*.py")):
        feed(path.name.encode("utf-8"))
        feed(path.read_bytes())
    for rel in (
        config.events_path, config.weights_path, config.obs_names_path,
    ):
        feed(rel.encode("utf-8"))
        try:
            feed((root / rel).read_bytes())
        except OSError:
            feed(b"<absent>")
    return digest.hexdigest()


@dataclasses.dataclass(slots=True)
class FileEntry:
    """Cached file-rule output for one source state of one file."""

    source_sha: str
    findings: list[Finding]
    suppressed: list[str]    # rule ids the file's noqa comments dropped

    def to_json(self) -> dict[str, object]:
        return {
            "source_sha": self.source_sha,
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": list(self.suppressed),
        }

    @classmethod
    def from_json(cls, payload: dict[str, object]) -> "FileEntry":
        findings = payload.get("findings")
        suppressed = payload.get("suppressed")
        if not isinstance(findings, list) or not isinstance(suppressed, list):
            raise ValueError("malformed cache entry")
        return cls(
            source_sha=str(payload["source_sha"]),
            findings=[Finding.from_json(row) for row in findings],
            suppressed=[str(rule_id) for rule_id in suppressed],
        )


@dataclasses.dataclass
class LintCache:
    """The warm-run store: inputs fingerprint plus per-file entries."""

    inputs: str
    files: dict[str, FileEntry] = dataclasses.field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    @classmethod
    def load(cls, path: Path, inputs: str) -> "LintCache":
        """Read a cache usable under ``inputs``; empty on any mismatch.

        A missing file, bad JSON, wrong schema, a different inputs
        fingerprint, or a malformed entry all degrade to a cold cache
        — the cache can cost a re-lint, never a wrong answer.
        """
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, ValueError):
            return cls(inputs=inputs)
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != _SCHEMA
            or payload.get("inputs") != inputs
            or not isinstance(payload.get("files"), dict)
        ):
            return cls(inputs=inputs)
        files: dict[str, FileEntry] = {}
        for rel, entry in payload["files"].items():
            try:
                files[rel] = FileEntry.from_json(entry)
            except (KeyError, TypeError, ValueError):
                continue
        return cls(inputs=inputs, files=files)

    def get(self, rel: str, digest: str) -> FileEntry | None:
        """The entry for ``rel`` if its source is unchanged, else None."""
        entry = self.files.get(rel)
        if entry is not None and entry.source_sha == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(
        self, rel: str, digest: str,
        findings: list[Finding], suppressed: list[str],
    ) -> None:
        self.files[rel] = FileEntry(
            source_sha=digest,
            findings=list(findings),
            suppressed=list(suppressed),
        )

    def save(self, path: Path) -> None:
        """Persist (best-effort: an unwritable cache is not an error)."""
        payload = {
            "schema": _SCHEMA,
            "inputs": self.inputs,
            "files": {
                rel: self.files[rel].to_json()
                for rel in sorted(self.files)
            },
        }
        try:
            path.write_text(
                json.dumps(payload, indent=1, sort_keys=True) + "\n"
            )
        except OSError:
            pass


__all__ = [
    "CACHE_FILENAME",
    "FileEntry",
    "LintCache",
    "PACK_VERSION",
    "inputs_fingerprint",
    "source_digest",
]
