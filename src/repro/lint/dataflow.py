"""Intraprocedural def-use / taint walker shared by dataflow rules.

The paper's framing applies to lint rules too: a per-statement pattern
match is a *convention check*, but the invariants this repo actually
cares about — "this Generator's seed derives from the trial seed",
"this array is a read-only shm view" — are properties of *def-use
chains*.  This module provides the one walker several rules share, so
each rule only declares *what taints* (its :class:`TaintPolicy`) and
*what to look for* (its statement hook), not how propagation works.

Propagation model (deliberately lint-grade, documented approximations):

- **Assignment**: ``x = expr`` taints ``x`` iff ``expr`` is tainted;
  tuple unpacking taints every target; ``x = clean`` *kills* taint.
- **Call arguments**: a call is tainted when any positional/keyword
  argument is tainted, or when its function is an attribute of a
  tainted object (``rng.integers(...)``, ``seq.spawn(...)``) — unless
  the policy's :meth:`TaintPolicy.call_override` says otherwise.
- **Attribute access**: policy-controlled — the seed rule treats any
  attribute load as a config-field source, the shm rule propagates the
  base object's taint (``attached.columns``).
- **Containers / operators**: subscripts, BinOp/UnaryOp, tuples,
  lists, conditional expressions, starred and f-string pieces all
  propagate the union of their operands' taint.
- **Branches**: ``if``/``try`` arms are analyzed against a copy of the
  environment and merged as a *union* (tainted-in-either-arm counts),
  which favors false negatives over false positives.
- **Loops**: bodies are walked once, in program order.  A name that
  only becomes tainted on a later line of the same loop body is not
  seen by earlier sites — acceptable for the shapes this repo writes.
- **Scopes**: each function/lambda starts from a copy of the
  *enclosing* environment (closure reads see outer locals), then its
  parameters rebind — tainted per the policy, clean otherwise.
  Comprehensions extend a local copy of the current environment with
  their generator targets.  Taint never flows back out of a scope.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator


@dataclasses.dataclass
class TaintEnv:
    """Mutable set of tainted names for one lexical scope."""

    tainted: set[str] = dataclasses.field(default_factory=set)

    def copy(self) -> "TaintEnv":
        return TaintEnv(set(self.tainted))

    def merge(self, *others: "TaintEnv") -> None:
        """Union-merge branch environments back into this one."""
        for other in others:
            self.tainted |= other.tainted


def _stmt_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """The expression parts directly owned by one statement.

    Nested statement bodies are deliberately excluded — every
    statement gets its own :meth:`TaintPolicy.visit_statement` call.
    """
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        yield from stmt.decorator_list
        yield from (d for d in stmt.args.defaults)
        yield from (d for d in stmt.args.kw_defaults if d is not None)
    elif isinstance(stmt, ast.ClassDef):
        yield from stmt.decorator_list
        yield from stmt.bases
        yield from (kw.value for kw in stmt.keywords)
    elif isinstance(stmt, ast.Assign):
        yield from stmt.targets
        yield stmt.value
    elif isinstance(stmt, ast.AnnAssign):
        yield stmt.target
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, ast.AugAssign):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.target
        yield stmt.iter
    elif isinstance(stmt, (ast.While, ast.If)):
        yield stmt.test
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
            if item.optional_vars is not None:
                yield item.optional_vars
    elif isinstance(stmt, (ast.Expr, ast.Return)):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            yield stmt.exc
        if stmt.cause is not None:
            yield stmt.cause
    elif isinstance(stmt, ast.Assert):
        yield stmt.test
        if stmt.msg is not None:
            yield stmt.msg
    elif isinstance(stmt, ast.Delete):
        yield from stmt.targets


class TaintPolicy:
    """What a rule considers a taint source; subclass per rule.

    The default answers make nothing a source, so a bare policy taints
    nothing and a subclass opts into exactly the sources it means.
    """

    def param_source(self, name: str) -> bool:
        """Is binding ``name`` as a function parameter a source?"""
        return False

    def name_source(self, name: str) -> bool:
        """Is a bare name a source regardless of assignments?"""
        return False

    def attribute_load(self, node: ast.Attribute, base_tainted: bool) -> bool:
        """Taint of an attribute *read* (``x.y``)."""
        return base_tainted

    def call_override(self, node: ast.Call) -> bool | None:
        """Fixed taint for a call, or None to use argument propagation.

        Returning False models taint *kills* (``columns.thaw()`` is a
        private copy); returning True models taint *sources*
        (``shm.attach(handle)``).
        """
        return None

    def visit_statement(
        self, stmt: ast.stmt, env: TaintEnv, flow: "Dataflow"
    ) -> None:
        """Hook called for every statement with the env in effect."""


class Dataflow:
    """Run a :class:`TaintPolicy` over one parsed module."""

    def __init__(self, policy: TaintPolicy) -> None:
        self.policy = policy

    # -- entry point ---------------------------------------------------

    def run(self, tree: ast.Module) -> None:
        self._walk_body(tree.body, TaintEnv())

    # -- expression taint ---------------------------------------------

    def taint(self, node: ast.expr | None, env: TaintEnv) -> bool:
        """Is ``node`` tainted under ``env``?"""
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in env.tainted or self.policy.name_source(node.id)
        if isinstance(node, ast.Attribute):
            return self.policy.attribute_load(
                node, self.taint(node.value, env)
            )
        if isinstance(node, ast.Call):
            override = self.policy.call_override(node)
            if override is not None:
                return override
            if any(self.taint(arg, env) for arg in node.args):
                return True
            if any(self.taint(kw.value, env) for kw in node.keywords):
                return True
            # a method call on a tainted object yields tainted data
            # (rng.integers(...), seq.spawn(...)[0], ...)
            if isinstance(node.func, ast.Attribute):
                return self.taint(node.func.value, env)
            return False
        if isinstance(node, ast.Subscript):
            return self.taint(node.value, env)
        if isinstance(node, ast.BinOp):
            return self.taint(node.left, env) or self.taint(node.right, env)
        if isinstance(node, ast.UnaryOp):
            return self.taint(node.operand, env)
        if isinstance(node, ast.BoolOp):
            return any(self.taint(value, env) for value in node.values)
        if isinstance(node, ast.IfExp):
            return self.taint(node.body, env) or self.taint(node.orelse, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.taint(elt, env) for elt in node.elts)
        if isinstance(node, ast.Starred):
            return self.taint(node.value, env)
        if isinstance(node, ast.NamedExpr):
            tainted = self.taint(node.value, env)
            self._bind(node.target, tainted, env)
            return tainted
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        ):
            inner = self._comp_env(node.generators, env)
            return self.taint(node.elt, inner)
        if isinstance(node, ast.DictComp):
            inner = self._comp_env(node.generators, env)
            return self.taint(node.key, inner) or self.taint(
                node.value, inner
            )
        return False

    def iter_calls(
        self, node: ast.expr | ast.stmt, env: TaintEnv
    ) -> Iterator[tuple[ast.Call, TaintEnv]]:
        """Every Call in ``node``'s own expressions, with its env.

        Given a statement, only its *immediate* expression parts are
        scanned — nested statement bodies (loop/if/function bodies)
        get their own :meth:`TaintPolicy.visit_statement` callbacks,
        so scanning them here would double-report.  Comprehension
        bodies are yielded under a generator-extended environment;
        a ``lambda`` body is yielded under the lambda's own scope
        (params tainted per the policy, defaults in the outer scope).
        """
        if isinstance(node, ast.stmt):
            roots: list[ast.expr] = list(_stmt_exprs(node))
        else:
            roots = [node]
        stack: list[tuple[ast.AST, TaintEnv]] = [
            (root, env) for root in roots
        ]
        while stack:
            current, current_env = stack.pop()
            if isinstance(current, ast.Lambda):
                for default in [
                    *current.args.defaults, *current.args.kw_defaults,
                ]:
                    if default is not None:
                        stack.append((default, current_env))
                stack.append(
                    (current.body, self._scope_env(current, current_env))
                )
                continue
            if isinstance(
                current,
                (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
            ):
                current_env = self._comp_env(current.generators, current_env)
            if isinstance(current, ast.Call):
                yield current, current_env
            for child in ast.iter_child_nodes(current):
                stack.append((child, current_env))

    # -- scope / statement walking ------------------------------------

    def _comp_env(
        self, generators: list[ast.comprehension], env: TaintEnv
    ) -> TaintEnv:
        inner = env.copy()
        for gen in generators:
            self._bind(gen.target, self.taint(gen.iter, inner), inner)
        return inner

    def _bind(
        self, target: ast.expr, tainted: bool, env: TaintEnv
    ) -> None:
        """Assign taint to a binding target (Name / Tuple / Starred)."""
        if isinstance(target, ast.Name):
            if tainted:
                env.tainted.add(target.id)
            else:
                env.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, tainted, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tainted, env)
        # Attribute / Subscript stores mutate objects, not names —
        # nothing to bind in a name environment.

    def _scope_env(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
        outer: TaintEnv,
    ) -> TaintEnv:
        """Environment for a function scope: closure copy, params rebind."""
        env = outer.copy()
        args = node.args
        params = [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
        ]
        if args.vararg is not None:
            params.append(args.vararg)
        if args.kwarg is not None:
            params.append(args.kwarg)
        for param in params:
            if self.policy.param_source(param.arg):
                env.tainted.add(param.arg)
            else:
                env.tainted.discard(param.arg)
        return env

    def _enter_scope(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
        outer: TaintEnv,
    ) -> None:
        env = self._scope_env(node, outer)
        args = node.args
        # default expressions evaluate in the *outer* scope
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None:
                self.taint(default, outer)
        if isinstance(node, ast.Lambda):
            self.taint(node.body, env)
        else:
            self._walk_body(node.body, env)

    def _walk_body(self, body: list[ast.stmt], env: TaintEnv) -> None:
        for stmt in body:
            self._walk_stmt(stmt, env)

    def _walk_stmt(self, stmt: ast.stmt, env: TaintEnv) -> None:
        self.policy.visit_statement(stmt, env, self)
        self._visit_nested_lambdas(stmt, env)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._enter_scope(stmt, env)
        elif isinstance(stmt, ast.ClassDef):
            class_env = env.copy()
            self._walk_body(stmt.body, class_env)
        elif isinstance(stmt, ast.Assign):
            tainted = self.taint(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, tainted, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.taint(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            tainted = self.taint(stmt.value, env) or self.taint(
                stmt.target, env
            )
            self._bind(stmt.target, tainted, env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self.taint(stmt.iter, env), env)
            self._walk_body(stmt.body, env)
            self._walk_body(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self.taint(stmt.test, env)
            self._walk_body(stmt.body, env)
            self._walk_body(stmt.orelse, env)
        elif isinstance(stmt, ast.If):
            self.taint(stmt.test, env)
            branches = []
            for arm in (stmt.body, stmt.orelse):
                arm_env = env.copy()
                self._walk_body(arm, arm_env)
                branches.append(arm_env)
            env.merge(*branches)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tainted = self.taint(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, tainted, env)
            self._walk_body(stmt.body, env)
        elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            arms = []
            for arm_body in (
                stmt.body, *[h.body for h in stmt.handlers],
                stmt.orelse, stmt.finalbody,
            ):
                arm_env = env.copy()
                self._walk_body(arm_body, arm_env)
                arms.append(arm_env)
            env.merge(*arms)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            self.taint(stmt.value, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._bind(target, False, env)

    def _visit_nested_lambdas(self, stmt: ast.stmt, env: TaintEnv) -> None:
        """Lambdas embedded in this statement's expressions get a scope."""
        for root in _stmt_exprs(stmt):
            for node in ast.walk(root):
                if isinstance(node, ast.Lambda):
                    self._enter_scope(node, env)


__all__ = ["Dataflow", "TaintEnv", "TaintPolicy"]
