"""``repro.lint`` — AST-based invariant linter for this repo's contracts.

The paper's thesis is that silent corruption survives exactly as long
as nothing checks the invariants everything else assumes (§5–§6);
SiliFuzz and the Meta SDC work both conclude that *systematic scanning*
— not review — is what finds such defects at scale.  This package
applies that stance to the codebase itself: the behavioural contracts
the test suite enforces at runtime (deterministic seeding, simulated
time, a complete evidence-weight table, declared observability names,
hot-path object layout) are enforced *statically*, so a violating diff
fails ``repro lint`` before it can merge.

Rule pack (see CONTRIBUTING.md "Static analysis & invariants"):

- ``DET001`` — no module-level RNG state; thread seeded Generators.
- ``DET002`` — no wall-clock reads outside the benchmarking layer.
- ``DET003`` — no set iteration feeding ordered results.
- ``DET004`` — RNG/SeedSequence seeds trace to the trial seed
  (dataflow taint over :mod:`repro.lint.dataflow`).
- ``SAFE001`` — every ``EventKind`` has a suspicion weight.
- ``SAFE002`` — emitted metric/span names are declared constants.
- ``OBS003`` — every declared obs name is emitted somewhere.
- ``SHM001`` — no writes through snapshot-attached fleet views.
- ``ARCH001`` — module-level imports respect the package layer DAG
  (:mod:`repro.lint.importgraph`).
- ``PERF001`` — hot-path dataclasses declare ``__slots__``.
- ``API001`` — no mutable default arguments.

Importing this package registers the rule pack; add a rule by
subclassing :class:`FileRule` / :class:`ProjectRule` with ``@register``
in a ``rules_*`` module and importing it here.
"""

from __future__ import annotations

from repro.lint.base import (  # noqa: F401  (re-exported API)
    FileContext,
    FileRule,
    ProjectContext,
    ProjectRule,
    RULES,
    Rule,
    all_rules,
    register,
)
from repro.lint.findings import Finding, Severity  # noqa: F401
from repro.lint.engine import (  # noqa: F401
    LintConfig,
    LintResult,
    lint_source,
    run_lint,
)

# importing the rule modules populates the registry
from repro.lint import rules_api  # noqa: F401,E402
from repro.lint import rules_arch  # noqa: F401,E402
from repro.lint import rules_det  # noqa: F401,E402
from repro.lint import rules_flow  # noqa: F401,E402
from repro.lint import rules_obs  # noqa: F401,E402
from repro.lint import rules_perf  # noqa: F401,E402
from repro.lint import rules_safe  # noqa: F401,E402

__all__ = [
    "Finding",
    "FileContext",
    "FileRule",
    "LintConfig",
    "LintResult",
    "ProjectContext",
    "ProjectRule",
    "RULES",
    "Rule",
    "Severity",
    "all_rules",
    "lint_source",
    "register",
    "run_lint",
]
