"""Finding model for the invariant linter: what a rule reports.

A :class:`Finding` is one violation at one source location.  Findings
are value objects: hashable, sortable, JSON-serializable, and stable
under line drift via :attr:`Finding.fingerprint` (which deliberately
excludes the line/column so a baseline entry survives unrelated edits
above the finding).
"""

from __future__ import annotations

import dataclasses
import enum


class Severity(enum.Enum):
    """How bad a violation is; both levels gate CI today."""

    ERROR = "error"
    WARNING = "warning"


@dataclasses.dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one location.

    Attributes:
        rule_id: e.g. ``"DET001"``.
        path: repo-relative posix path of the offending file.
        line: 1-based source line.
        col: 0-based column.
        message: what is wrong, specific to this site.
        hint: how to fix it (rule-level, actionable).
        severity: gate level.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    severity: Severity = Severity.ERROR
    #: last source line of the reported node (== line for single-line
    #: findings); ``# repro: noqa`` matches anywhere in line..end_line
    end_line: int = 0

    @property
    def last_line(self) -> int:
        """End of the reported node's line range (never before line)."""
        return max(self.line, self.end_line)

    @property
    def fingerprint(self) -> str:
        """Line-drift-stable identity used by the baseline file."""
        return f"{self.path}::{self.rule_id}::{self.message}"

    def render(self) -> str:
        """One-line human rendering (``path:line:col RULE message``)."""
        return (
            f"{self.path}:{self.line}:{self.col} "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )

    def to_json(self) -> dict[str, object]:
        """Strict-JSON dict (schema pinned by ``tests/test_lint.py``)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "end_line": self.last_line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_json(cls, payload: dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_json` (used by the incremental cache)."""
        return cls(
            rule_id=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload["line"]),          # type: ignore[arg-type]
            col=int(payload["col"]),            # type: ignore[arg-type]
            message=str(payload["message"]),
            hint=str(payload["hint"]),
            severity=Severity(payload["severity"]),
            end_line=int(payload.get("end_line", 0)),  # type: ignore[arg-type]
        )


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Deterministic report order: path, line, column, rule."""
    return sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
    )


__all__ = ["Finding", "Severity", "sort_findings"]
