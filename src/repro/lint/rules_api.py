"""API-hygiene rules (API family).

API001 is the classic shared-mutable-default trap: a ``def f(x=[])``
default is evaluated once at definition time, so every call shares the
same list — in this codebase that shape has an extra sting, because a
shared accumulator crossing trials silently breaks worker-count
invariance (trial N sees state from trial N-1 only when both land on
the same pool worker).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.base import FileContext, FileRule, dotted_source, register
from repro.lint.findings import Finding

#: call targets that construct a fresh mutable container
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})
_MUTABLE_CALL_TAILS = ("defaultdict", "OrderedDict", "Counter", "deque")


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_source(node.func)
        if dotted is None:
            return False
        tail = dotted.split(".")[-1]
        return tail in _MUTABLE_CALLS or tail in _MUTABLE_CALL_TAILS
    return False


@register
class MutableDefaultRule(FileRule):
    """API001: no mutable default arguments."""

    rule_id = "API001"
    title = "no mutable default arguments"
    hint = (
        "default to None and construct inside the function, or use "
        "dataclasses.field(default_factory=...) for dataclass fields"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            name = getattr(node, "name", "<lambda>")
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.make(ctx, default, (
                        f"function {name!r} has a mutable default "
                        "argument (shared across calls)"
                    ))


__all__ = ["MutableDefaultRule"]
