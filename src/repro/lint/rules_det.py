"""Determinism rules (DET family): seeds in, hidden state out.

The repo's reproducibility contract — same seed, same scorecard, any
worker count — only holds while no code path reads ambient
nondeterminism.  These rules make the three known leak classes
unmergeable: module-level RNG state (DET001), wall clocks in simulated
paths (DET002), and unordered-set iteration feeding results (DET003).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.base import FileContext, FileRule, dotted_source, register
from repro.lint.findings import Finding, Severity

#: stdlib ``random`` functions that mutate/read the hidden module RNG
_RANDOM_MODULE_FNS = frozenset({
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "gammavariate",
    "paretovariate", "vonmisesvariate", "weibullvariate", "triangular",
    "getrandbits", "randbytes", "binomialvariate",
})

#: ``numpy.random`` attributes that are explicit-state constructors
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "RandomState", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


def _module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Names the file binds to ``module`` via plain imports."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
                elif alias.name.startswith(module + ".") and not alias.asname:
                    # ``import numpy.random`` binds top-level ``numpy``
                    aliases.add(module)
    return aliases


@register
class UnseededRandomRule(FileRule):
    """DET001: no module-level RNG state; thread a seeded Generator."""

    rule_id = "DET001"
    title = "no unseeded / module-level RNG state"
    hint = (
        "thread a numpy Generator derived from the trial seed "
        "(np.random.default_rng / SeedSequence.spawn) through the call "
        "chain instead of the hidden module-level RNG"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        random_aliases = _module_aliases(ctx.tree, "random")
        numpy_aliases = _module_aliases(ctx.tree, "numpy")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    ctx, node, random_aliases, numpy_aliases
                )

    def _check_import_from(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        if node.module == "random":
            for alias in node.names:
                if alias.name in _RANDOM_MODULE_FNS:
                    yield self.make(ctx, node, (
                        f"'from random import {alias.name}' pulls in the "
                        "hidden module-level RNG"
                    ))
        elif node.module in ("numpy.random", "np.random"):
            for alias in node.names:
                if alias.name not in _NP_RANDOM_ALLOWED:
                    yield self.make(ctx, node, (
                        f"'from numpy.random import {alias.name}' uses "
                        "numpy's module-level RNG state"
                    ))

    def _check_call(
        self, ctx: FileContext, node: ast.Call,
        random_aliases: set[str], numpy_aliases: set[str],
    ) -> Iterator[Finding]:
        dotted = dotted_source(node.func)
        if dotted is None or "." not in dotted:
            return
        base, _, fn = dotted.rpartition(".")
        if base in random_aliases and fn in _RANDOM_MODULE_FNS:
            yield self.make(ctx, node, (
                f"call to module-level '{dotted}()' draws from hidden "
                "global RNG state"
            ))
            return
        np_base, _, np_mid = base.rpartition(".")
        if (
            np_mid == "random"
            and (np_base in numpy_aliases or base in ("numpy.random",))
            and fn not in _NP_RANDOM_ALLOWED
        ):
            yield self.make(ctx, node, (
                f"call to legacy '{dotted}()' uses numpy's module-level "
                "RNG state"
            ))


#: ``time`` module functions that read the host clock
_TIME_MODULE_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "clock_gettime",
})

#: attribute tails that read the host clock off datetime objects
_DATETIME_TAILS = ("datetime.now", "datetime.utcnow", "date.today")


@register
class WallClockRule(FileRule):
    """DET002: no wall-clock reads outside the benchmarking layer."""

    rule_id = "DET002"
    title = "no wall-clock reads in simulated paths"
    hint = (
        "simulated components must take time from the campaign tick "
        "counter (ticks x tick_ms) or an injected clock; wall-clock "
        "timing belongs in repro.engine.bench / benchmarks/ only"
    )

    def _allowed(self, ctx: FileContext) -> bool:
        for entry in ctx.config.wallclock_allowed:
            if entry.endswith("/"):
                if ctx.rel_path.startswith(entry):
                    return True
            elif ctx.rel_path == entry:
                return True
        return False

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if self._allowed(ctx):
            return
        time_aliases = _module_aliases(ctx.tree, "time")
        from_time: set[str] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.level == 0
                and node.module == "time"
            ):
                for alias in node.names:
                    if alias.name in _TIME_MODULE_FNS:
                        from_time.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_source(node.func)
            if dotted is None:
                continue
            if dotted in from_time:
                yield self.make(ctx, node, (
                    f"call to '{dotted}()' (imported from time) reads "
                    "the host clock"
                ))
                continue
            base, _, fn = dotted.rpartition(".")
            if base in time_aliases and fn in _TIME_MODULE_FNS:
                yield self.make(ctx, node, (
                    f"call to '{dotted}()' reads the host clock"
                ))
            elif any(dotted.endswith(tail) for tail in _DATETIME_TAILS):
                yield self.make(ctx, node, (
                    f"call to '{dotted}()' reads the host clock/date"
                ))


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register
class UnorderedIterationRule(FileRule):
    """DET003: set iteration order must not reach ordered results."""

    rule_id = "DET003"
    title = "no iteration over unordered sets into ordered results"
    severity = Severity.WARNING
    hint = (
        "wrap the set in sorted(...) before iterating, or use an "
        "order-preserving container; hash-order iteration differs "
        "across processes and poisons byte-identical scorecards"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield self.make(ctx, node.iter, (
                    "for-loop iterates a set in hash order"
                ))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield self.make(ctx, gen.iter, (
                            "comprehension iterates a set in hash order"
                        ))
            elif isinstance(node, ast.Call):
                ordered_sink = (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple", "enumerate")
                ) or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                )
                if ordered_sink and node.args and _is_set_expr(node.args[0]):
                    sink = (
                        node.func.id if isinstance(node.func, ast.Name)
                        else "str.join"
                    )
                    yield self.make(ctx, node.args[0], (
                        f"{sink}() materializes a set in hash order"
                    ))


__all__ = [
    "UnorderedIterationRule",
    "UnseededRandomRule",
    "WallClockRule",
]
