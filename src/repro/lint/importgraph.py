"""Project import graph: which ``repro`` module imports which.

Built once per lint invocation (cached on the
:class:`~repro.lint.base.ProjectContext`) and shared by the project
rules: ``ARCH001`` checks each edge against the layer DAG in
:class:`~repro.lint.engine.LintConfig`, and ``OBS003`` uses the module
set as its scan universe.  Edges record *module-level* imports only —
a function-local ``import`` is the sanctioned way to defer a
dependency (it cannot deadlock package import and expresses "used
lazily, not structurally"), and imports under ``if TYPE_CHECKING:``
never execute at runtime at all.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterator

#: directories never descended into during graph discovery
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclasses.dataclass(frozen=True)
class ImportEdge:
    """One module-level import of a ``repro`` module."""

    module: str        # imported module, e.g. "repro.detection.signals"
    line: int
    col: int
    end_line: int = 0  # last line of the import statement


def module_name(rel_path: str) -> str | None:
    """Dotted module for a repo-relative path, or None outside src/.

    ``src/repro/fleet/shm.py`` -> ``repro.fleet.shm``;
    ``src/repro/__init__.py`` -> ``repro``.
    """
    parts = rel_path.split("/")
    if parts[:1] != ["src"] or not rel_path.endswith(".py"):
        return None
    dotted = parts[1:]
    dotted[-1] = dotted[-1][: -len(".py")]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted) if dotted else None


def top_package(module: str) -> str | None:
    """The layer-granularity package of a ``repro`` module.

    ``repro.fleet.shm`` -> ``fleet``; top-level modules map to
    themselves (``repro.chaos`` -> ``chaos``, ``repro.cli`` ->
    ``cli``); the bare root package returns None.
    """
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


def _is_type_checking_guard(node: ast.stmt) -> bool:
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return (
        isinstance(test, ast.Attribute)
        and test.attr == "TYPE_CHECKING"
    )


def _module_level_stmts(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level statements, descending into if/try wrappers.

    ``if TYPE_CHECKING:`` bodies are skipped — those imports never run.
    Function and class bodies are *not* descended into: imports there
    are deferred by construction.
    """
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop(0)
        if _is_type_checking_guard(stmt):
            stack.extend(stmt.orelse)
            continue
        if isinstance(stmt, ast.If):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
            continue
        if isinstance(stmt, ast.Try):
            stack.extend(stmt.body)
            for handler in stmt.handlers:
                stack.extend(handler.body)
            stack.extend(stmt.orelse)
            stack.extend(stmt.finalbody)
            continue
        yield stmt


def module_imports(tree: ast.Module) -> list[ImportEdge]:
    """Module-level ``repro`` imports of one parsed file.

    ``from repro import obs`` resolves per-alias to ``repro.obs``;
    ``from repro.fleet import columns`` records ``repro.fleet`` (the
    package boundary is what layering cares about).
    """
    edges: list[ImportEdge] = []
    for stmt in _module_level_stmts(tree):
        end = getattr(stmt, "end_lineno", None) or stmt.lineno
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    edges.append(ImportEdge(
                        alias.name, stmt.lineno, stmt.col_offset, end,
                    ))
        elif isinstance(stmt, ast.ImportFrom) and stmt.level == 0:
            module = stmt.module or ""
            if module == "repro":
                for alias in stmt.names:
                    edges.append(ImportEdge(
                        f"repro.{alias.name}", stmt.lineno,
                        stmt.col_offset, end,
                    ))
            elif module.startswith("repro."):
                edges.append(
                    ImportEdge(module, stmt.lineno, stmt.col_offset, end)
                )
    return edges


@dataclasses.dataclass
class ImportGraph:
    """All ``src/repro`` modules and their module-level import edges."""

    #: rel_path -> dotted module name, sorted iteration order
    modules: dict[str, str]
    #: rel_path -> module-level repro imports
    edges: dict[str, list[ImportEdge]]

    @classmethod
    def build(cls, root: Path) -> "ImportGraph":
        modules: dict[str, str] = {}
        edges: dict[str, list[ImportEdge]] = {}
        package_root = root / "src" / "repro"
        if not package_root.is_dir():
            return cls(modules, edges)
        for path in sorted(package_root.rglob("*.py")):
            if _SKIP_DIRS.intersection(path.parts):
                continue
            rel = path.relative_to(root).as_posix()
            dotted = module_name(rel)
            if dotted is None:
                continue
            modules[rel] = dotted
            try:
                tree = ast.parse(path.read_text(), filename=str(path))
            except (OSError, SyntaxError):
                edges[rel] = []
                continue
            edges[rel] = module_imports(tree)
        return cls(modules, edges)


__all__ = [
    "ImportEdge",
    "ImportGraph",
    "module_imports",
    "module_name",
    "top_package",
]
