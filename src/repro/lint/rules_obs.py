"""Observability hygiene (OBS003): no dead names in the registry.

The reverse of SAFE002: SAFE002 stops an *emission* whose name was
never declared, OBS003 stops a *declaration* that nothing emits.  A
dead constant in :mod:`repro.obs.names` is a silent lie — dashboards,
OBSERVABILITY.md, and alert templates all treat the registry as "what
the system can emit", so an entry that survived a refactor keeps
operators hunting for a signal that can no longer fire (the same
stale-runbook hazard §6 pins on undocumented detection surfaces).

A constant counts as *emitted* when some module in the project import
graph (every ``src/repro`` module except the names module itself)
either passes its string value as the name argument of an
``obs.metrics`` / ``obs.tracer`` emission call, or references the
constant by name (``names.FOO`` or a ``from repro.obs.names import
FOO`` use).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.base import (
    ProjectContext,
    ProjectRule,
    dotted_source,
    register,
)
from repro.lint.findings import Finding
from repro.lint.rules_safe import _is_metrics_base, _is_tracer_base

#: emission attribute names on the metrics registry singleton
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})


def _declared_constants(tree: ast.Module) -> list[tuple[str, str, int]]:
    """(constant name, string value, line) triples in the names module."""
    declared: list[tuple[str, str, int]] = []
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not (
            isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id.isupper():
                declared.append((target.id, node.value.value, node.lineno))
    return declared


def _used_in_module(
    tree: ast.Module,
    constant_names: frozenset[str],
    values: frozenset[str],
) -> tuple[set[str], set[str]]:
    """(constants referenced, values emitted) by one module."""
    imported: set[str] = set()          # local alias -> counts as use
    alias_to_const: dict[str, str] = {}
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.ImportFrom)
            and node.level == 0
            and node.module == "repro.obs.names"
        ):
            for alias in node.names:
                if alias.name in constant_names:
                    alias_to_const[alias.asname or alias.name] = alias.name

    used_consts: set[str] = set()
    used_values: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr in constant_names:
            base = dotted_source(node.value)
            if base is not None and base.rpartition(".")[2] == "names":
                used_consts.add(node.attr)
        elif isinstance(node, ast.Name) and node.id in alias_to_const:
            imported.add(alias_to_const[node.id])
        elif isinstance(node, ast.Call):
            value = _emitted_literal(node)
            if value is not None and value in values:
                used_values.add(value)
    return used_consts | imported, used_values


def _emitted_literal(node: ast.Call) -> str | None:
    """The literal name argument of an emission call, if any."""
    if not isinstance(node.func, ast.Attribute) or not node.args:
        return None
    base = dotted_source(node.func.value)
    if base is None:
        return None
    attr = node.func.attr
    is_metric = attr in _METRIC_METHODS and _is_metrics_base(base)
    is_span = attr == "span" and _is_tracer_base(base)
    if not (is_metric or is_span):
        return None
    name_arg = node.args[0]
    if isinstance(name_arg, ast.Constant) and isinstance(
        name_arg.value, str
    ):
        return name_arg.value
    return None


@register
class DeadObsNameRule(ProjectRule):
    """OBS003: every declared obs name is emitted by some module."""

    rule_id = "OBS003"
    title = "every name declared in repro.obs.names is emitted"
    hint = (
        "emit the metric/span somewhere under src/repro, or delete "
        "the constant (and its OBSERVABILITY.md row) — the registry "
        "documents what the system *can* emit, not what it once did"
    )
    src_only = True

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        names_tree = project.parse(project.config.obs_names_path)
        if names_tree is None:
            return
        declared = _declared_constants(names_tree)
        if not declared:
            return
        constant_names = frozenset(name for name, _, _ in declared)
        values = frozenset(value for _, value, _ in declared)

        used_consts: set[str] = set()
        used_values: set[str] = set()
        graph = project.import_graph()
        for rel in graph.modules:
            if rel == project.config.obs_names_path:
                continue
            tree = project.parse(rel)
            if tree is None:
                continue
            consts, vals = _used_in_module(tree, constant_names, values)
            used_consts |= consts
            used_values |= vals

        for name, value, line in declared:
            if name in used_consts or value in used_values:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=project.config.obs_names_path,
                line=line, col=0,
                message=(
                    f"declared name {name} ({value!r}) is never emitted "
                    "or referenced by any src/repro module"
                ),
                hint=self.hint, severity=self.severity,
                end_line=line,
            )


__all__ = ["DeadObsNameRule"]
