"""SARIF 2.1.0 export: findings in the code-scanning interchange shape.

One :class:`~repro.lint.engine.LintResult` becomes one SARIF ``run``:
the rule pack as ``tool.driver.rules`` (id, short description, full
help text from the rule's hint), every finding as a ``result`` with a
physical location and a ``partialFingerprints`` entry carrying the
same line-free fingerprint the baseline uses — so a SARIF consumer's
dedup tracks ours.  Grandfathered findings are emitted with an
``external`` suppression rather than dropped: the honest rendering of
"known, ratcheted, not a gate failure".

Conventions pinned by ``tests/test_lint.py``:

- columns are converted 0-based -> 1-based (SARIF regions are 1-based),
- URIs are repo-relative posix paths under the ``ROOT`` uriBase,
- ``level`` maps :class:`~repro.lint.findings.Severity` verbatim
  (``error``/``warning`` are valid SARIF levels).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lint.base import all_rules
from repro.lint.cache import PACK_VERSION
from repro.lint.engine import PARSE_RULE_ID, LintConfig
from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.engine import LintResult

#: the spec version this module emits
SARIF_VERSION = "2.1.0"

#: canonical schema URI for ``$schema`` (consumers validate against it)
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: fingerprint key: versioned so a future fingerprint change can
#: coexist with old uploads instead of silently re-opening alerts
FINGERPRINT_KEY = "reproLint/v1"


def _rule_descriptors(config: LintConfig | None) -> list[dict[str, object]]:
    """``tool.driver.rules``: the pack that ran, plus the parse rule."""
    select = config.select if config is not None else None
    descriptors: list[dict[str, object]] = []
    for rule in all_rules(select):
        descriptors.append({
            "id": rule.rule_id,
            "shortDescription": {"text": rule.title},
            "help": {"text": rule.hint},
            "defaultConfiguration": {"level": rule.severity.value},
        })
    descriptors.append({
        "id": PARSE_RULE_ID,
        "shortDescription": {"text": "file parses as Python"},
        "help": {"text": "fix the syntax error; no rules ran on this file"},
        "defaultConfiguration": {"level": "error"},
    })
    return descriptors


def _result(
    finding: Finding, rule_index: dict[str, int], baselined: bool
) -> dict[str, object]:
    message = finding.message
    if finding.hint:
        message = f"{finding.message}\nhint: {finding.hint}"
    row: dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": finding.severity.value,
        "message": {"text": message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "ROOT",
                },
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col + 1,
                    "endLine": finding.last_line,
                },
            },
        }],
        "partialFingerprints": {FINGERPRINT_KEY: finding.fingerprint},
    }
    index = rule_index.get(finding.rule_id)
    if index is not None:
        row["ruleIndex"] = index
    if baselined:
        row["suppressions"] = [{"kind": "external"}]
    return row


def to_sarif(
    result: "LintResult", config: LintConfig | None = None
) -> dict[str, object]:
    """Render one lint invocation as a SARIF 2.1.0 log."""
    rules = _rule_descriptors(config)
    rule_index = {
        str(descriptor["id"]): position
        for position, descriptor in enumerate(rules)
    }
    results = [
        _result(finding, rule_index, baselined=False)
        for finding in result.new
    ] + [
        _result(finding, rule_index, baselined=True)
        for finding in result.grandfathered
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "version": PACK_VERSION,
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "ROOT": {"description": {"text": "repository root"}},
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


__all__ = [
    "FINGERPRINT_KEY",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "to_sarif",
]
