"""Lint engine: discovery, suppression, baselines, and the run loop.

One :func:`run_lint` call walks the requested paths, parses each
``*.py`` once, runs every registered file rule on each tree and every
project rule once, applies ``# repro: noqa-RULE`` line suppressions
and the baseline, and returns a :class:`LintResult` the CLI renders as
text or JSON.

Suppression syntax (the comment must sit on the reported line)::

    started = time.time()   # repro: noqa-DET002 -- operator-facing UX
    x = tricky()            # repro: noqa               (all rules)
    y = both()              # repro: noqa-DET001,API001

Everything after ``--`` in the comment is the tracking note; the
linter requires no particular wording but CONTRIBUTING.md asks for
one sentence on why the site is safe.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Iterable

from repro.lint import baseline as baseline_mod
from repro.lint.base import (
    FileContext,
    FileRule,
    ProjectContext,
    ProjectRule,
    all_rules,
)
from repro.lint.findings import Finding, Severity, sort_findings

#: rule id for files the parser itself rejects
PARSE_RULE_ID = "LINT000"

#: suppression comments: ``# repro: noqa`` / ``# repro: noqa-DET001,API001``
_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:-(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?"
)

#: directories never descended into during discovery
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Tunable contract tables (defaults encode this repo's layout).

    Attributes:
        select: restrict to these rule ids (None = all registered).
        wallclock_allowed: rel-path files (or ``dir/`` prefixes) where
            DET002 permits host-clock reads — the benchmarking layer.
        slots_modules: rel-path files whose dataclasses PERF001
            requires to declare ``__slots__`` (the hot-path table).
        percore_loop_modules: rel-path files where PERF002 forbids
            per-core Python loops over ``.cores`` (the columnar
            substrate and its fleet-scale consumers).
        events_path: module defining :class:`EventKind` (SAFE001).
        weights_path: module defining ``SUSPICION_WEIGHTS`` (SAFE001).
        obs_names_path: module declaring metric/span names (SAFE002).
    """

    select: frozenset[str] | None = None
    wallclock_allowed: tuple[str, ...] = (
        "src/repro/engine/bench.py",
        "benchmarks/",
    )
    slots_modules: tuple[str, ...] = (
        "src/repro/core/events.py",
        "src/repro/detection/fleetscreen.py",
        "src/repro/engine/runner.py",
        "src/repro/fleet/machine.py",
        "src/repro/mitigation/instrcheck/campaign.py",
        "src/repro/mitigation/instrcheck/policies.py",
        "src/repro/serving/service.py",
        "src/repro/silicon/defects.py",
        "src/repro/silicon/isa.py",
        "src/repro/silicon/vm.py",
        "src/repro/storage/wal.py",
        "src/repro/workloads/base.py",
    )
    percore_loop_modules: tuple[str, ...] = (
        "src/repro/detection/fleetscreen.py",
        "src/repro/engine/runner.py",
        "src/repro/fleet/columns.py",
        "src/repro/fleet/population.py",
        "src/repro/fleet/scheduler.py",
        "src/repro/fleet/shm.py",
        "src/repro/fleet/simulator.py",
    )
    events_path: str = "src/repro/core/events.py"
    weights_path: str = "src/repro/detection/weights.py"
    obs_names_path: str = "src/repro/obs/names.py"


@dataclasses.dataclass
class LintResult:
    """Everything one invocation produced, pre-baseline-split."""

    new: list[Finding]
    grandfathered: list[Finding]
    suppressed: int
    files_scanned: int
    baseline_used: bool

    @property
    def all_findings(self) -> list[Finding]:
        return sort_findings(self.new + self.grandfathered)

    @property
    def exit_status(self) -> int:
        return 1 if self.new else 0

    def to_json(self) -> dict[str, object]:
        """The ``repro lint --json`` payload (schema pinned by tests)."""
        def rows(findings: list[Finding], baselined: bool) -> list[dict]:
            return [
                dict(finding.to_json(), baselined=baselined)
                for finding in findings
            ]

        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "baseline_used": self.baseline_used,
            "new_count": len(self.new),
            "baselined_count": len(self.grandfathered),
            "suppressed_count": self.suppressed,
            "findings": rows(sort_findings(self.new), False)
            + rows(sort_findings(self.grandfathered), True),
        }


def _suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Line -> suppressed rule ids (None = all) from noqa comments."""
    table: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = None
        else:
            table[lineno] = frozenset(
                rule.strip() for rule in rules.split(",")
            )
    return table


def _apply_suppressions(
    findings: Iterable[Finding], source: str
) -> tuple[list[Finding], int]:
    table = _suppressions(source)
    kept: list[Finding] = []
    dropped = 0
    for finding in findings:
        suppressed_rules = table.get(finding.line, frozenset())
        if suppressed_rules is None or finding.rule_id in suppressed_rules:
            dropped += 1
        else:
            kept.append(finding)
    return kept, dropped


def discover(paths: Iterable[Path], root: Path) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files: set[Path] = set()
    for path in paths:
        resolved = path if path.is_absolute() else root / path
        if resolved.is_file() and resolved.suffix == ".py":
            files.add(resolved)
        elif resolved.is_dir():
            for candidate in resolved.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
    return sorted(files)


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _lint_one_file(
    path: Path, rel: str, source: str, config: LintConfig,
    project: ProjectContext, file_rules: list[FileRule],
) -> tuple[list[Finding], int]:
    """All (kept, suppressed-count) findings for one source file."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding(
            rule_id=PARSE_RULE_ID, path=rel,
            line=exc.lineno or 1, col=exc.offset or 0,
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error; no other rules ran on this file",
            severity=Severity.ERROR,
        )
        return [finding], 0
    ctx = FileContext(
        path=path, rel_path=rel, tree=tree, source=source,
        config=config, project=project,
    )
    findings: list[Finding] = []
    for rule in file_rules:
        if rule.src_only and not ctx.in_src():
            continue
        findings.extend(rule.check_file(ctx))
    return _apply_suppressions(findings, source)


def run_lint(
    paths: Iterable[str | Path],
    root: str | Path = ".",
    config: LintConfig | None = None,
    baseline: dict[str, int] | None = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) relative to ``root``."""
    root = Path(root)
    config = config or LintConfig()
    project = ProjectContext(root, config)
    rules = list(all_rules(config.select))
    file_rules = [r for r in rules if isinstance(r, FileRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    findings: list[Finding] = []
    suppressed = 0
    files = discover([Path(p) for p in paths], root)
    for path in files:
        rel = _rel_path(path, root)
        kept, dropped = _lint_one_file(
            path, rel, path.read_text(), config, project, file_rules
        )
        findings.extend(kept)
        suppressed += dropped

    for rule in project_rules:
        findings.extend(rule.check_project(project))

    findings = sort_findings(findings)
    if baseline is not None:
        new, grandfathered = baseline_mod.split_new(findings, baseline)
    else:
        new, grandfathered = findings, []
    return LintResult(
        new=new, grandfathered=grandfathered, suppressed=suppressed,
        files_scanned=len(files), baseline_used=baseline is not None,
    )


def lint_source(
    source: str,
    rel_path: str = "src/repro/snippet.py",
    config: LintConfig | None = None,
    root: str | Path = ".",
) -> list[Finding]:
    """Lint one in-memory snippet (the unit-test entry point).

    ``rel_path`` controls scoping (``src/``-only rules, DET002
    allowlists, the PERF001 module table) exactly as a real file path
    would; project rules do not run here.
    """
    config = config or LintConfig()
    project = ProjectContext(Path(root), config)
    file_rules = [
        r for r in all_rules(config.select) if isinstance(r, FileRule)
    ]
    kept, _ = _lint_one_file(
        Path(rel_path), rel_path, source, config, project, file_rules
    )
    return sort_findings(kept)


__all__ = [
    "LintConfig",
    "LintResult",
    "PARSE_RULE_ID",
    "discover",
    "lint_source",
    "run_lint",
]
