"""Lint engine: discovery, suppression, baselines, cache, and the run loop.

One :func:`run_lint` call walks the requested paths, parses each
``*.py`` once, runs every registered file rule on each tree and every
project rule once, applies ``# repro: noqa-RULE`` suppressions and the
baseline, and returns a :class:`LintResult` the CLI renders as text,
JSON, or SARIF.

Three engine features keep the gate fast and honest at repo scale:

- **Incremental cache** (:mod:`repro.lint.cache`): per-file findings
  are reused when the file's content hash and the whole rule pack's
  inputs fingerprint both match; a warm run re-lints only edited
  files.
- **Parallel fan-out**: file linting is a pure per-file map, so it
  rides :func:`repro.engine.runner.run_tasks` — the same chunked pool
  the simulations use — with results merged in deterministic file
  order (``workers`` never changes the report).
- **Statistics** (:mod:`repro.lint.stats`): per-rule finding and
  suppression counts plus per-phase wall time, for ``--statistics``.

Suppression syntax::

    started = time.time()   # repro: noqa-DET002 -- operator-facing UX
    x = tricky()            # repro: noqa               (all rules)
    y = both()              # repro: noqa-DET001,API001

A noqa comment matches a finding when it sits on *any* line of the
reported node (``lineno..end_lineno``) — a multi-line call can carry
the comment on whichever physical line fits.  The flip side: a
suppression inside a large node (a class body, for PERF001) suppresses
that rule for the whole node, so keep noqa comments on the offending
statement itself.  Everything after ``--`` in the comment is the
tracking note; CONTRIBUTING.md asks for one sentence on why the site
is safe.
"""

from __future__ import annotations

import ast
import dataclasses
import functools
import re
from pathlib import Path
from typing import Iterable

from repro.engine.runner import run_tasks
from repro.lint import baseline as baseline_mod
from repro.lint import cache as cache_mod
from repro.lint.base import (
    FileContext,
    FileRule,
    ProjectContext,
    ProjectRule,
    all_rules,
)
from repro.lint.findings import Finding, Severity, sort_findings
from repro.lint.stats import LintStats

#: rule id for files the parser itself rejects
PARSE_RULE_ID = "LINT000"

#: suppression comments: ``# repro: noqa`` / ``# repro: noqa-DET001,API001``
_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:-(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?"
)

#: directories never descended into during discovery
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Tunable contract tables (defaults encode this repo's layout).

    Attributes:
        select: restrict to these rule ids (None = all registered).
        wallclock_allowed: rel-path files (or ``dir/`` prefixes) where
            DET002 permits host-clock reads — the benchmarking layer.
        slots_modules: rel-path files whose dataclasses PERF001
            requires to declare ``__slots__`` (the hot-path table).
        percore_loop_modules: rel-path files where PERF002 forbids
            per-core Python loops over ``.cores`` (the columnar
            substrate and its fleet-scale consumers).
        layers: the package layer DAG for ARCH001, bottom-up: each
            inner tuple is one layer of ``repro.*`` top-level
            packages, and module-level imports may only point at the
            same or an earlier (lower) layer.
        events_path: module defining :class:`EventKind` (SAFE001).
        weights_path: module defining ``SUSPICION_WEIGHTS`` (SAFE001).
        obs_names_path: module declaring metric/span names
            (SAFE002/OBS003).
    """

    select: frozenset[str] | None = None
    wallclock_allowed: tuple[str, ...] = (
        "src/repro/engine/bench.py",
        "benchmarks/",
    )
    slots_modules: tuple[str, ...] = (
        "src/repro/core/events.py",
        "src/repro/detection/fleetscreen.py",
        "src/repro/engine/runner.py",
        "src/repro/fleet/machine.py",
        "src/repro/mitigation/instrcheck/campaign.py",
        "src/repro/mitigation/instrcheck/policies.py",
        "src/repro/serving/service.py",
        "src/repro/silicon/defects.py",
        "src/repro/silicon/isa.py",
        "src/repro/silicon/vm.py",
        "src/repro/storage/wal.py",
        "src/repro/workloads/base.py",
    )
    percore_loop_modules: tuple[str, ...] = (
        "src/repro/detection/fleetscreen.py",
        "src/repro/engine/runner.py",
        "src/repro/fleet/columns.py",
        "src/repro/fleet/population.py",
        "src/repro/fleet/scheduler.py",
        "src/repro/fleet/shm.py",
        "src/repro/fleet/simulator.py",
    )
    layers: tuple[tuple[str, ...], ...] = (
        ("core", "obs"),
        ("silicon", "fleet"),
        ("workloads",),
        ("chaos", "detection", "mitigation", "serving", "storage"),
        ("engine",),
        ("analysis",),
        ("cli", "lint", "__main__"),
    )
    events_path: str = "src/repro/core/events.py"
    weights_path: str = "src/repro/detection/weights.py"
    obs_names_path: str = "src/repro/obs/names.py"


@dataclasses.dataclass
class LintResult:
    """Everything one invocation produced, pre-baseline-split."""

    new: list[Finding]
    grandfathered: list[Finding]
    suppressed: int
    files_scanned: int
    baseline_used: bool
    #: baseline entries (by count) no current finding matched; a
    #: nonzero value means the ratchet can tighten (--prune-baseline)
    stale_baseline: int = 0
    stats: LintStats | None = None

    @property
    def all_findings(self) -> list[Finding]:
        return sort_findings(self.new + self.grandfathered)

    @property
    def exit_status(self) -> int:
        return 1 if self.new else 0

    def to_json(self) -> dict[str, object]:
        """The ``repro lint --json`` payload (schema pinned by tests)."""
        def rows(findings: list[Finding], baselined: bool) -> list[dict]:
            return [
                dict(finding.to_json(), baselined=baselined)
                for finding in findings
            ]

        return {
            "version": 2,
            "files_scanned": self.files_scanned,
            "baseline_used": self.baseline_used,
            "new_count": len(self.new),
            "baselined_count": len(self.grandfathered),
            "suppressed_count": self.suppressed,
            "stale_baseline_count": self.stale_baseline,
            "findings": rows(sort_findings(self.new), False)
            + rows(sort_findings(self.grandfathered), True),
        }


def _suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Line -> suppressed rule ids (None = all) from noqa comments."""
    table: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = None
        else:
            table[lineno] = frozenset(
                rule.strip() for rule in rules.split(",")
            )
    return table


def _is_suppressed(
    finding: Finding, table: dict[int, frozenset[str] | None]
) -> bool:
    """Does any noqa line inside the finding's node range cover it?"""
    for lineno in range(finding.line, finding.last_line + 1):
        if lineno not in table:
            continue
        rules = table[lineno]
        if rules is None or finding.rule_id in rules:
            return True
    return False


def _apply_suppressions(
    findings: Iterable[Finding], source: str
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (kept, noqa-suppressed) for one source."""
    table = _suppressions(source)
    if not table:
        return list(findings), []
    kept: list[Finding] = []
    dropped: list[Finding] = []
    for finding in findings:
        if _is_suppressed(finding, table):
            dropped.append(finding)
        else:
            kept.append(finding)
    return kept, dropped


def discover(paths: Iterable[Path], root: Path) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files: set[Path] = set()
    for path in paths:
        resolved = path if path.is_absolute() else root / path
        if resolved.is_file() and resolved.suffix == ".py":
            files.add(resolved)
        elif resolved.is_dir():
            for candidate in resolved.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
    return sorted(files)


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _lint_one_file(
    path: Path, rel: str, source: str, config: LintConfig,
    project: ProjectContext, file_rules: list[FileRule],
) -> tuple[list[Finding], list[Finding]]:
    """(kept, noqa-suppressed) file-rule findings for one source file."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding(
            rule_id=PARSE_RULE_ID, path=rel,
            line=exc.lineno or 1, col=exc.offset or 0,
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error; no other rules ran on this file",
            severity=Severity.ERROR,
        )
        return [finding], []
    ctx = FileContext(
        path=path, rel_path=rel, tree=tree, source=source,
        config=config, project=project,
    )
    findings: list[Finding] = []
    for rule in file_rules:
        if rule.src_only and not ctx.in_src():
            continue
        findings.extend(rule.check_file(ctx))
    return _apply_suppressions(findings, source)


#: per-worker-process state for the parallel fan-out, keyed by
#: (root, config repr); pool workers are long-lived within one run
_TASK_STATE: dict[tuple[str, str], tuple[ProjectContext, list[FileRule]]] = {}


def _task_state(
    root: str, config: LintConfig
) -> tuple[ProjectContext, list[FileRule]]:
    key = (root, repr(config))
    state = _TASK_STATE.get(key)
    if state is None:
        project = ProjectContext(Path(root), config)
        file_rules = [
            r for r in all_rules(config.select) if isinstance(r, FileRule)
        ]
        state = (project, file_rules)
        _TASK_STATE[key] = state
    return state


def _lint_file_task(
    item: tuple[str, str, str], root: str, config: LintConfig
) -> tuple[str, list[Finding], list[str]]:
    """Pool task: lint one (path, rel, source); picklable round trip."""
    path_str, rel, source = item
    project, file_rules = _task_state(root, config)
    kept, dropped = _lint_one_file(
        Path(path_str), rel, source, config, project, file_rules
    )
    return rel, kept, [finding.rule_id for finding in dropped]


def _suppress_project_findings(
    findings: list[Finding],
    sources: dict[str, str],
    root: Path,
) -> tuple[list[Finding], list[Finding]]:
    """Apply noqa comments to project-rule findings, per target file."""
    by_path: dict[str, list[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    kept: list[Finding] = []
    dropped: list[Finding] = []
    for rel, group in by_path.items():
        source = sources.get(rel)
        if source is None:
            try:
                source = (root / rel).read_text()
            except OSError:
                kept.extend(group)
                continue
        group_kept, group_dropped = _apply_suppressions(group, source)
        kept.extend(group_kept)
        dropped.extend(group_dropped)
    return kept, dropped


def run_lint(
    paths: Iterable[str | Path],
    root: str | Path = ".",
    config: LintConfig | None = None,
    baseline: dict[str, int] | None = None,
    *,
    workers: int | None = 1,
    cache_path: str | Path | None = None,
    stats: LintStats | None = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) relative to ``root``.

    ``workers`` fans the per-file pass over a process pool (1 =
    inline); the report is identical for any worker count.
    ``cache_path`` enables the incremental cache at that location
    (None = cold run, nothing persisted).  ``stats`` receives per-rule
    and per-phase accounting; one is created (and attached to the
    result) when not supplied.
    """
    root = Path(root)
    config = config or LintConfig()
    stats = stats if stats is not None else LintStats()
    project = ProjectContext(root, config)
    rules = list(all_rules(config.select))
    file_rules = [r for r in rules if isinstance(r, FileRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    with stats.phase("discover"):
        files = discover([Path(p) for p in paths], root)

    cache: cache_mod.LintCache | None = None
    if cache_path is not None:
        with stats.phase("cache"):
            fingerprint = cache_mod.inputs_fingerprint(root, config)
            cache = cache_mod.LintCache.load(Path(cache_path), fingerprint)

    # Read every source once; serve cache hits; queue the misses.
    per_file: dict[str, tuple[list[Finding], list[str]]] = {}
    sources: dict[str, str] = {}
    pending: list[tuple[str, str, str]] = []
    with stats.phase("read"):
        for path in files:
            rel = _rel_path(path, root)
            source = path.read_text()
            sources[rel] = source
            if cache is not None:
                digest = cache_mod.source_digest(source)
                entry = cache.get(rel, digest)
                if entry is not None:
                    per_file[rel] = (entry.findings, entry.suppressed)
                    continue
            pending.append((str(path), rel, source))

    with stats.phase("files"):
        if pending:
            task = functools.partial(
                _lint_file_task, root=str(root), config=config
            )
            for rel, kept, dropped_ids in run_tasks(
                task, pending, workers=workers
            ):
                per_file[rel] = (kept, dropped_ids)
                if cache is not None:
                    cache.put(
                        rel, cache_mod.source_digest(sources[rel]),
                        kept, dropped_ids,
                    )

    findings: list[Finding] = []
    suppressed = 0
    for path in files:               # deterministic file-order merge
        rel = _rel_path(path, root)
        kept, dropped_ids = per_file[rel]
        findings.extend(kept)
        suppressed += len(dropped_ids)
        stats.count_suppressions(dropped_ids)

    with stats.phase("project"):
        project_findings: list[Finding] = []
        for rule in project_rules:
            project_findings.extend(rule.check_project(project))
        kept, dropped = _suppress_project_findings(
            project_findings, sources, root
        )
        findings.extend(kept)
        suppressed += len(dropped)
        stats.count_suppressions(f.rule_id for f in dropped)

    findings = sort_findings(findings)
    stats.count_findings(findings)
    stats.files_scanned = len(files)
    stats.files_from_cache = cache.hits if cache is not None else 0

    with stats.phase("baseline"):
        stale = 0
        if baseline is not None:
            new, grandfathered = baseline_mod.split_new(findings, baseline)
            stale = sum(baseline.values()) - len(grandfathered)
        else:
            new, grandfathered = findings, []

    if cache is not None:
        with stats.phase("cache"):
            cache.save(Path(cache_path))  # type: ignore[arg-type]

    return LintResult(
        new=new, grandfathered=grandfathered, suppressed=suppressed,
        files_scanned=len(files), baseline_used=baseline is not None,
        stale_baseline=stale, stats=stats,
    )


def lint_source(
    source: str,
    rel_path: str = "src/repro/snippet.py",
    config: LintConfig | None = None,
    root: str | Path = ".",
) -> list[Finding]:
    """Lint one in-memory snippet (the unit-test entry point).

    ``rel_path`` controls scoping (``src/``-only rules, DET002
    allowlists, the PERF001 module table) exactly as a real file path
    would; project rules do not run here.
    """
    config = config or LintConfig()
    project = ProjectContext(Path(root), config)
    file_rules = [
        r for r in all_rules(config.select) if isinstance(r, FileRule)
    ]
    kept, _ = _lint_one_file(
        Path(rel_path), rel_path, source, config, project, file_rules
    )
    return sort_findings(kept)


__all__ = [
    "LintConfig",
    "LintResult",
    "PARSE_RULE_ID",
    "discover",
    "lint_source",
    "run_lint",
]
