"""Safety-contract rules (SAFE family): cross-file invariants.

These encode contracts that span modules: the detection weight table
must cover every event kind the infrastructure can emit (SAFE001 —
the paper's §6 evidence model, previously enforced only at test
runtime), and every metric/span name emitted through the obs
singletons must be declared in :mod:`repro.obs.names` (SAFE002 —
catching typo'd label drift before it ships a dashboard-less metric).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.base import (
    FileContext,
    FileRule,
    ProjectContext,
    ProjectRule,
    dotted_source,
    register,
)
from repro.lint.findings import Finding


def _class_members(tree: ast.Module, class_name: str) -> dict[str, int]:
    """Uppercase name -> line for assignments in ``class_name``'s body."""
    members: dict[str, int] = {}
    for node in tree.body:
        if not (isinstance(node, ast.ClassDef) and node.name == class_name):
            continue
        for stmt in node.body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id.isupper():
                    members[target.id] = stmt.lineno
    return members


def _weight_table_keys(
    tree: ast.Module, table_name: str, enum_name: str
) -> dict[str, int]:
    """``EnumName.MEMBER`` keys of the dict bound to ``table_name``."""
    keys: dict[str, int] = {}
    for node in tree.body:
        value: ast.expr | None = None
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if node.target.id == table_name:
                value = node.value
        elif isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == table_name
                for t in node.targets
            ):
                value = node.value
        if not isinstance(value, ast.Dict):
            continue
        for key in value.keys:
            if (
                isinstance(key, ast.Attribute)
                and isinstance(key.value, ast.Name)
                and key.value.id == enum_name
            ):
                keys[key.attr] = key.lineno
    return keys


@register
class WeightTableCompleteRule(ProjectRule):
    """SAFE001: every EventKind member has a suspicion weight."""

    rule_id = "SAFE001"
    title = "every EventKind member appears in detection.weights"
    hint = (
        "add a SuspicionWeight entry (weight + rationale) to "
        "repro.detection.weights.SUSPICION_WEIGHTS for the new kind, "
        "and a matching row to the DESIGN.md weight table"
    )
    src_only = True

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        events = project.parse(project.config.events_path)
        weights = project.parse(project.config.weights_path)
        if events is None or weights is None:
            return
        members = _class_members(events, "EventKind")
        if not members:
            return
        keys = _weight_table_keys(weights, "SUSPICION_WEIGHTS", "EventKind")
        for member, line in sorted(members.items()):
            if member not in keys:
                yield Finding(
                    rule_id=self.rule_id,
                    path=project.config.events_path,
                    line=line, col=0,
                    message=(
                        f"EventKind.{member} has no entry in "
                        "SUSPICION_WEIGHTS; the analyzer would fall "
                        "back to an unaudited default"
                    ),
                    hint=self.hint, severity=self.severity,
                )
        for key, line in sorted(keys.items()):
            if key not in members:
                yield Finding(
                    rule_id=self.rule_id,
                    path=project.config.weights_path,
                    line=line, col=0,
                    message=(
                        f"SUSPICION_WEIGHTS keys EventKind.{key}, which "
                        "is not a declared EventKind member (stale entry)"
                    ),
                    hint=self.hint, severity=self.severity,
                )


def _is_metrics_base(base: str) -> bool:
    return base == "metrics" or base.endswith(".metrics")


def _is_tracer_base(base: str) -> bool:
    return (
        base in ("tracer", "obs.tracer")
        or base.endswith(".tracer")
        or base.endswith("_tracer")
    )


@register
class DeclaredObsNameRule(FileRule):
    """SAFE002: emitted metric/span names must be declared constants."""

    rule_id = "SAFE002"
    title = "emitted metric/span names are declared in repro.obs.names"
    hint = (
        "declare the name as an UPPER_CASE constant in "
        "src/repro/obs/names.py (and document it in OBSERVABILITY.md); "
        "the registry is what keeps dashboards, docs, and emissions "
        "from drifting apart"
    )
    src_only = True

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        declared = ctx.project.declared_obs_names()
        if declared is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, declared)

    def _check_call(
        self, ctx: FileContext, node: ast.Call, declared: frozenset[str]
    ) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Attribute):
            return
        base = dotted_source(node.func.value)
        if base is None:
            return
        attr = node.func.attr
        is_metric = attr in ("counter", "gauge", "histogram")
        if is_metric and not _is_metrics_base(base):
            return
        if attr == "span" and not _is_tracer_base(base):
            return
        if not is_metric and attr != "span":
            return
        if not node.args:
            return
        name_arg = node.args[0]
        kind = "metric" if is_metric else "span"
        if isinstance(name_arg, ast.Constant) and isinstance(
            name_arg.value, str
        ):
            if name_arg.value not in declared:
                yield self.make(ctx, name_arg, (
                    f"{kind} name {name_arg.value!r} is not declared in "
                    "repro.obs.names"
                ))
        elif isinstance(name_arg, (ast.JoinedStr, ast.BinOp)):
            yield self.make(ctx, name_arg, (
                f"{kind} name is built dynamically; emit a declared "
                "constant and move variability into labels/attrs"
            ))


__all__ = ["DeclaredObsNameRule", "WeightTableCompleteRule"]
