"""Run statistics: what each rule found and where the time went.

``repro lint --statistics`` answers two operator questions the plain
report hides: *which rules carry the suppression load* (a rule whose
suppression count keeps growing is mis-tuned — the same drift §5 warns
about when mitigations outpace their evidence) and *which phase is the
wall-clock cost* (is a slow run parse-bound, rule-bound, or
project-rule-bound — the input for deciding whether ``--workers`` or
the cache is the right lever).

Phase timing reads the host clock, which DET002 forbids in the
shipped package — the one sanctioned read is wrapped in :func:`_now`
below so the exemption stays a single annotated line.
"""

from __future__ import annotations

import collections
import contextlib
import dataclasses
import time
from typing import Iterable, Iterator

from repro.lint.findings import Finding


def _now() -> float:
    """Monotonic seconds for phase timing (reporting, not simulation)."""
    return time.perf_counter()  # repro: noqa-DET002 -- operator-facing phase timing; simulated time never flows through the linter


@dataclasses.dataclass
class LintStats:
    """Per-rule and per-phase accounting for one lint invocation."""

    rule_findings: collections.Counter[str] = dataclasses.field(
        default_factory=collections.Counter
    )
    rule_suppressions: collections.Counter[str] = dataclasses.field(
        default_factory=collections.Counter
    )
    phase_seconds: dict[str, float] = dataclasses.field(
        default_factory=dict
    )
    files_scanned: int = 0
    files_from_cache: int = 0

    def count_findings(self, findings: Iterable[Finding]) -> None:
        self.rule_findings.update(f.rule_id for f in findings)

    def count_suppressions(self, rule_ids: Iterable[str]) -> None:
        self.rule_suppressions.update(rule_ids)

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named phase; repeated phases accumulate."""
        start = _now()
        try:
            yield
        finally:
            elapsed = _now() - start
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + elapsed
            )

    def to_json(self) -> dict[str, object]:
        """The ``--statistics-json`` payload (CI artifact)."""
        rule_ids = sorted(
            set(self.rule_findings) | set(self.rule_suppressions)
        )
        return {
            "version": 1,
            "files": {
                "scanned": self.files_scanned,
                "from_cache": self.files_from_cache,
            },
            "rules": {
                rule_id: {
                    "findings": self.rule_findings.get(rule_id, 0),
                    "suppressed": self.rule_suppressions.get(rule_id, 0),
                }
                for rule_id in rule_ids
            },
            "phases": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.phase_seconds.items())
            },
        }

    def render(self) -> str:
        """Text table for ``--statistics`` (goes to stderr)."""
        lines = [
            "lint statistics:",
            f"  files: {self.files_scanned} scanned, "
            f"{self.files_from_cache} from cache",
        ]
        rule_ids = sorted(
            set(self.rule_findings) | set(self.rule_suppressions)
        )
        if rule_ids:
            width = max(len(rule_id) for rule_id in rule_ids)
            lines.append("  per rule (findings / suppressed):")
            for rule_id in rule_ids:
                lines.append(
                    f"    {rule_id:<{width}}  "
                    f"{self.rule_findings.get(rule_id, 0):>4} / "
                    f"{self.rule_suppressions.get(rule_id, 0)}"
                )
        if self.phase_seconds:
            lines.append("  per phase (seconds):")
            width = max(len(name) for name in self.phase_seconds)
            for name, seconds in sorted(self.phase_seconds.items()):
                lines.append(f"    {name:<{width}}  {seconds:9.4f}")
        return "\n".join(lines)


__all__ = ["LintStats"]
