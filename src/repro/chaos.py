"""Chaos fault injection shared by the serving and storage campaigns.

SiliFuzz-style continuous fault-finding coexists with production
traffic; this harness is the adversarial half of that bargain: a
scripted schedule of mid-campaign faults exercises every defence a
hardened configuration claims to have.  The schedule is deliberately
substrate-agnostic — the same :class:`ChaosAction` stream drives an RPC
campaign (:mod:`repro.serving.campaign`) or a replicated-storage
campaign (:mod:`repro.storage.campaign`); each driver interprets the
action kinds against its own resources.

The fault classes come straight from the paper's phenomenology:

- ``ACTIVATE_DEFECT`` — late-onset activation: CEEs "can manifest long
  after initial installation" (§1); the action ages the target core
  past its defect's onset, so a previously-clean fleet core starts
  corrupting mid-campaign.
- ``CRASH_CORE`` — the core drops out for a while (Core Surprise
  Removal analog); in-flight work sees
  :class:`~repro.silicon.errors.CoreOfflineError`, and a storage
  replica loses its memtable and must replay its write-ahead log
  (including any torn tail) on recovery.
- ``MACHINE_CHECK_BURST`` — a run of fail-noisy faults (§2's "more
  disruptive" symptom class) on one replica.
- ``TRAFFIC_BURST`` — an arrival-rate multiplier window; the load-shed
  and deadline stressor for serving, the write-pressure stressor for
  storage.
"""

from __future__ import annotations

import bisect
import dataclasses
import enum


class ChaosKind(enum.Enum):
    """The campaign chaos vocabulary: what an injected fault does."""

    ACTIVATE_DEFECT = "activate_defect"
    CRASH_CORE = "crash_core"
    MACHINE_CHECK_BURST = "machine_check_burst"
    TRAFFIC_BURST = "traffic_burst"


@dataclasses.dataclass(frozen=True)
class ChaosAction:
    """One scheduled fault.

    Attributes:
        at_tick: campaign tick the fault fires on.
        kind: fault class.
        core_id: target core (None for fleet-wide actions).
        magnitude: kind-specific intensity — age-days to advance for
            ``ACTIVATE_DEFECT``, arrival-rate multiplier for
            ``TRAFFIC_BURST``, forced machine checks for
            ``MACHINE_CHECK_BURST``.
        duration_ticks: how long the fault persists (crash outage /
            burst window); 0 means instantaneous.
    """

    at_tick: int
    kind: ChaosKind
    core_id: str | None = None
    magnitude: float = 1.0
    duration_ticks: int = 0


class ChaosSchedule:
    """An ordered script of :class:`ChaosAction`."""

    def __init__(self, actions: list[ChaosAction] | None = None):
        self.actions = sorted(actions or [], key=lambda a: a.at_tick)
        self._fired = 0

    def due(self, tick: int) -> list[ChaosAction]:
        """Actions firing at or before ``tick`` not yet handed out."""
        ticks = [a.at_tick for a in self.actions]
        end = bisect.bisect_right(ticks, tick)
        due = self.actions[self._fired:end]
        self._fired = max(self._fired, end)
        return due

    def reset(self) -> None:
        self._fired = 0

    def __len__(self) -> int:
        return len(self.actions)

    @classmethod
    def standard(
        cls,
        bad_core_id: str,
        victim_core_id: str,
        ticks: int,
        onset_age_days: float = 400.0,
    ) -> "ChaosSchedule":
        """The default serving campaign script used by E15.

        A late-onset defect activates on ``bad_core_id`` a quarter of
        the way in; a healthy ``victim_core_id`` crashes and recovers;
        a machine-check burst and a traffic burst land in the second
        half.  Scales with campaign length.
        """
        return cls(
            [
                ChaosAction(
                    at_tick=ticks // 4,
                    kind=ChaosKind.ACTIVATE_DEFECT,
                    core_id=bad_core_id,
                    magnitude=onset_age_days,
                ),
                ChaosAction(
                    at_tick=ticks // 2,
                    kind=ChaosKind.CRASH_CORE,
                    core_id=victim_core_id,
                    duration_ticks=max(4, ticks // 12),
                ),
                ChaosAction(
                    at_tick=(ticks * 5) // 8,
                    kind=ChaosKind.MACHINE_CHECK_BURST,
                    core_id=victim_core_id,
                    magnitude=4.0,
                ),
                ChaosAction(
                    at_tick=(ticks * 3) // 4,
                    kind=ChaosKind.TRAFFIC_BURST,
                    magnitude=3.0,
                    duration_ticks=max(6, ticks // 10),
                ),
            ]
        )

    @classmethod
    def serve_scale(
        cls,
        bad_core_ids: list[str],
        shard_core_ids: list[str],
        storm_core_ids: list[str],
        ticks: int,
        onset_age_days: float = 400.0,
    ) -> "ChaosSchedule":
        """The E17 serve-at-scale script: shard loss + breaker storm.

        Every mercurial core's late-onset defect activates a quarter of
        the way in (staggered by a few ticks so trips don't all land on
        one tick).  At the halfway mark an entire shard's cores crash
        at once (shard loss — the cluster must absorb the capacity hole
        or degrade gracefully); at 5/8 a machine-check storm hammers
        several healthy cores in quick succession (a breaker storm: many
        boards trip close together, which is what drives the
        degradation ladder); and a 3× traffic burst lands in the final
        quarter on top of whatever capacity is left.
        """
        actions = [
            ChaosAction(
                at_tick=ticks // 4 + 3 * index,
                kind=ChaosKind.ACTIVATE_DEFECT,
                core_id=core_id,
                magnitude=onset_age_days,
            )
            for index, core_id in enumerate(bad_core_ids)
        ]
        actions += [
            ChaosAction(
                at_tick=ticks // 2,
                kind=ChaosKind.CRASH_CORE,
                core_id=core_id,
                duration_ticks=max(6, ticks // 10),
            )
            for core_id in shard_core_ids
        ]
        actions += [
            ChaosAction(
                at_tick=(ticks * 5) // 8 + index,
                kind=ChaosKind.MACHINE_CHECK_BURST,
                core_id=core_id,
                magnitude=4.0,
            )
            for index, core_id in enumerate(storm_core_ids)
        ]
        actions.append(
            ChaosAction(
                at_tick=(ticks * 3) // 4,
                kind=ChaosKind.TRAFFIC_BURST,
                magnitude=3.0,
                duration_ticks=max(8, ticks // 8),
            )
        )
        return cls(actions)

    @classmethod
    def storage_standard(
        cls,
        bad_core_id: str,
        victim_core_id: str,
        ticks: int,
        onset_age_days: float = 400.0,
    ) -> "ChaosSchedule":
        """The default durable-path campaign script used by E16.

        The late-onset defect activates on ``bad_core_id`` a quarter of
        the way in, then that replica *crashes* shortly after — so its
        recovery must replay a write-ahead log that now contains
        corrupt records and a torn tail.  A healthy ``victim_core_id``
        replica crashes mid-campaign and eats a machine-check burst,
        and a write burst lands in the final quarter.
        """
        return cls(
            [
                ChaosAction(
                    at_tick=ticks // 4,
                    kind=ChaosKind.ACTIVATE_DEFECT,
                    core_id=bad_core_id,
                    magnitude=onset_age_days,
                ),
                ChaosAction(
                    at_tick=ticks // 4 + max(4, ticks // 16),
                    kind=ChaosKind.CRASH_CORE,
                    core_id=bad_core_id,
                    duration_ticks=max(3, ticks // 20),
                ),
                ChaosAction(
                    at_tick=ticks // 2,
                    kind=ChaosKind.CRASH_CORE,
                    core_id=victim_core_id,
                    duration_ticks=max(4, ticks // 12),
                ),
                ChaosAction(
                    at_tick=(ticks * 5) // 8,
                    kind=ChaosKind.MACHINE_CHECK_BURST,
                    core_id=victim_core_id,
                    magnitude=4.0,
                ),
                ChaosAction(
                    at_tick=(ticks * 3) // 4,
                    kind=ChaosKind.TRAFFIC_BURST,
                    magnitude=3.0,
                    duration_ticks=max(6, ticks // 10),
                ),
            ]
        )


__all__ = ["ChaosAction", "ChaosKind", "ChaosSchedule"]
