"""Core-aware task scheduling with quarantine support.

§6.1: removing a machine is easy; "isolating a specific core could be
more challenging, because it undermines a scheduler assumption that all
machines of a specific type have identical resources."  This scheduler
models that burden explicitly: machines advertise *slots* (one per
online core); core quarantine shrinks a machine's slot count, making
the fleet heterogeneous; the scheduler tracks stranded capacity and bin
packs around the holes.

It also implements the §6.1 speculation: optionally placing tasks whose
op mix avoids a quarantined core's implicated units back onto that core
("safe tasks"), recovering capacity at a measurable residual risk.
"""

from __future__ import annotations

import dataclasses
from typing import Collection, Sequence

import numpy as np

from repro.detection.quarantine import heuristic_safe_op_mix  # repro: noqa-ARCH001 -- the scheduler steers suspect cores onto the same safe mix the quarantine policy defines, by design
from repro.fleet.columns import FleetColumns
from repro.fleet.machine import Machine
from repro.silicon.core import Core


@dataclasses.dataclass(frozen=True)
class Task:
    """A schedulable unit with an operation-mix profile."""

    task_id: str
    op_mix: dict[str, float] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class Placement:
    """One task bound to one core (flagging quarantine violations)."""

    task: Task
    core_id: str
    on_quarantined_core: bool = False


@dataclasses.dataclass
class ScheduleStats:
    """Scheduler outcome tallies for one placement round."""

    placed: int = 0
    unplaceable: int = 0
    placed_on_quarantined: int = 0
    slots_total: int = 0
    slots_stranded: int = 0
    slots_excluded: int = 0

    @property
    def stranded_fraction(self) -> float:
        if self.slots_total == 0:
            return 0.0
        return self.slots_stranded / self.slots_total


class FleetScheduler:
    """Slot-per-core scheduler over a heterogeneous (post-quarantine) fleet.

    Works on either substrate: a sequence of ``Machine`` objects (the
    original overload, pinned by tests) or a
    :class:`~repro.fleet.columns.FleetColumns` fleet.  Placement order
    is identical across substrates — free slots are consumed in flat
    core order — so results don't depend on the representation.
    """

    def __init__(
        self,
        machines: Sequence[Machine] | FleetColumns,
        allow_safe_tasks: bool = False,
        implicated_units_by_core: dict[str, frozenset] | None = None,
    ):
        """
        Args:
            allow_safe_tasks: enable §6.1 safe-task placement on
                quarantined cores.
            implicated_units_by_core: which units confessions implicated
                per quarantined core (needed for safe-task decisions).
        """
        if isinstance(machines, FleetColumns):
            self.columns: FleetColumns | None = machines
            self.machines: list[Machine] = []
        else:
            self.columns = None
            self.machines = list(machines)
        self.allow_safe_tasks = allow_safe_tasks
        self.implicated_units_by_core = implicated_units_by_core or {}

    def _all_cores(self) -> list[Core]:
        return [core for machine in self.machines for core in machine.cores]  # repro: noqa-PERF002 -- object-substrate slot scan (compat path)

    def _exclude_mask(
        self,
        exclude_core_ids: Collection[str] | np.ndarray | None,
    ) -> np.ndarray:
        """Columnar exclusion mask from ids *or* flat index arrays.

        Callers operating on columns pass numpy integer indices (or a
        boolean mask) straight through — no Core objects, no id-string
        materialization.  String collections still work for callers
        carrying quarantine sets keyed by core id.
        """
        assert self.columns is not None
        n_cores = self.columns.n_cores
        mask = np.zeros(n_cores, dtype=bool)
        if exclude_core_ids is None:
            return mask
        if isinstance(exclude_core_ids, np.ndarray):
            if exclude_core_ids.dtype == bool:
                if exclude_core_ids.shape != (n_cores,):
                    raise ValueError(
                        "boolean exclude mask must have one entry per core"
                    )
                return exclude_core_ids.copy()
            mask[exclude_core_ids.astype(np.int64)] = True
            return mask
        for core_id in exclude_core_ids:
            flat = self.columns.core_index(core_id)
            if flat is not None:
                mask[flat] = True
        return mask

    def _schedule_columnar(
        self,
        tasks: Sequence[Task],
        exclude_core_ids: Collection[str] | np.ndarray | None,
    ) -> tuple[list[Placement], ScheduleStats]:
        columns = self.columns
        assert columns is not None
        excluded = self._exclude_mask(exclude_core_ids)
        stats = ScheduleStats()
        stats.slots_total = columns.n_cores
        stats.slots_excluded = int(excluded.sum())
        online = columns.online & ~excluded
        stranded = ~columns.online & ~excluded
        stats.slots_stranded = int(stranded.sum())
        free_online = np.nonzero(online)[0]
        free_quarantined = np.nonzero(stranded)[0].tolist()

        placements: list[Placement] = []
        cursor = 0
        for task in tasks:
            if cursor < free_online.shape[0]:
                placements.append(
                    Placement(task, columns.core_id(int(free_online[cursor])))
                )
                cursor += 1
                stats.placed += 1
                continue
            placed = False
            if self.allow_safe_tasks:
                for index, flat in enumerate(free_quarantined):
                    core_id = columns.core_id(flat)
                    implicated = self.implicated_units_by_core.get(
                        core_id, frozenset()
                    )
                    if heuristic_safe_op_mix(implicated, task.op_mix):
                        free_quarantined.pop(index)
                        placements.append(
                            Placement(task, core_id, on_quarantined_core=True)
                        )
                        stats.placed += 1
                        stats.placed_on_quarantined += 1
                        placed = True
                        break
            if not placed:
                stats.unplaceable += 1
        return placements, stats

    def schedule(
        self,
        tasks: Sequence[Task],
        exclude_core_ids: Collection[str] | np.ndarray | None = None,
    ) -> tuple[list[Placement], ScheduleStats]:
        """Place each task on a free core slot; round-robin over machines.

        Returns placements plus capacity accounting.  One task per core
        slot (the scheduler's unit of capacity).

        Args:
            exclude_core_ids: cores the caller has already committed
                elsewhere (e.g. serving replicas being re-placed after
                a quarantine, which must not land back on an occupied
                or suspect core).  Excluded slots are accounted
                separately from quarantine-stranded ones.  On the
                columnar substrate this also accepts a numpy integer
                index array (flat core indices) or a per-core boolean
                mask — no ``Core`` objects are materialized either way.
        """
        if self.columns is not None:
            return self._schedule_columnar(tasks, exclude_core_ids)
        if isinstance(exclude_core_ids, np.ndarray):
            raise TypeError(
                "index-array exclusion needs a FleetColumns scheduler; "
                "object fleets take core-id collections"
            )
        exclude = frozenset(exclude_core_ids or ())
        stats = ScheduleStats()
        placements: list[Placement] = []
        free_online: list[Core] = []
        free_quarantined: list[Core] = []
        for core in self._all_cores():
            stats.slots_total += 1
            if core.core_id in exclude:
                stats.slots_excluded += 1
                continue
            if core.online:
                free_online.append(core)
            else:
                stats.slots_stranded += 1
                free_quarantined.append(core)

        for task in tasks:
            if free_online:
                core = free_online.pop(0)
                placements.append(Placement(task, core.core_id))
                stats.placed += 1
                continue
            placed = False
            if self.allow_safe_tasks:
                for index, core in enumerate(free_quarantined):
                    implicated = self.implicated_units_by_core.get(
                        core.core_id, frozenset()
                    )
                    if heuristic_safe_op_mix(implicated, task.op_mix):
                        free_quarantined.pop(index)
                        placements.append(
                            Placement(task, core.core_id, on_quarantined_core=True)
                        )
                        stats.placed += 1
                        stats.placed_on_quarantined += 1
                        placed = True
                        break
            if not placed:
                stats.unplaceable += 1
        return placements, stats

    def capacity(self) -> tuple[int, int]:
        """(online slots, total slots)."""
        if self.columns is not None:
            return (
                int(self.columns.online.sum()),
                int(self.columns.n_cores),
            )
        total = 0
        online = 0
        for core in self._all_cores():
            total += 1
            online += core.online
        return online, total
