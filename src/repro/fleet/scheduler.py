"""Core-aware task scheduling with quarantine support.

§6.1: removing a machine is easy; "isolating a specific core could be
more challenging, because it undermines a scheduler assumption that all
machines of a specific type have identical resources."  This scheduler
models that burden explicitly: machines advertise *slots* (one per
online core); core quarantine shrinks a machine's slot count, making
the fleet heterogeneous; the scheduler tracks stranded capacity and bin
packs around the holes.

It also implements the §6.1 speculation: optionally placing tasks whose
op mix avoids a quarantined core's implicated units back onto that core
("safe tasks"), recovering capacity at a measurable residual risk.
"""

from __future__ import annotations

import dataclasses
from typing import Collection, Sequence

from repro.detection.quarantine import heuristic_safe_op_mix
from repro.fleet.machine import Machine
from repro.silicon.core import Core


@dataclasses.dataclass(frozen=True)
class Task:
    """A schedulable unit with an operation-mix profile."""

    task_id: str
    op_mix: dict[str, float] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class Placement:
    """One task bound to one core (flagging quarantine violations)."""

    task: Task
    core_id: str
    on_quarantined_core: bool = False


@dataclasses.dataclass
class ScheduleStats:
    """Scheduler outcome tallies for one placement round."""

    placed: int = 0
    unplaceable: int = 0
    placed_on_quarantined: int = 0
    slots_total: int = 0
    slots_stranded: int = 0
    slots_excluded: int = 0

    @property
    def stranded_fraction(self) -> float:
        if self.slots_total == 0:
            return 0.0
        return self.slots_stranded / self.slots_total


class FleetScheduler:
    """Slot-per-core scheduler over a heterogeneous (post-quarantine) fleet."""

    def __init__(
        self,
        machines: Sequence[Machine],
        allow_safe_tasks: bool = False,
        implicated_units_by_core: dict[str, frozenset] | None = None,
    ):
        """
        Args:
            allow_safe_tasks: enable §6.1 safe-task placement on
                quarantined cores.
            implicated_units_by_core: which units confessions implicated
                per quarantined core (needed for safe-task decisions).
        """
        self.machines = list(machines)
        self.allow_safe_tasks = allow_safe_tasks
        self.implicated_units_by_core = implicated_units_by_core or {}

    def _all_cores(self) -> list[Core]:
        return [core for machine in self.machines for core in machine.cores]

    def schedule(
        self,
        tasks: Sequence[Task],
        exclude_core_ids: Collection[str] | None = None,
    ) -> tuple[list[Placement], ScheduleStats]:
        """Place each task on a free core slot; round-robin over machines.

        Returns placements plus capacity accounting.  One task per core
        slot (the scheduler's unit of capacity).

        Args:
            exclude_core_ids: cores the caller has already committed
                elsewhere (e.g. serving replicas being re-placed after
                a quarantine, which must not land back on an occupied
                or suspect core).  Excluded slots are accounted
                separately from quarantine-stranded ones.
        """
        exclude = frozenset(exclude_core_ids or ())
        stats = ScheduleStats()
        placements: list[Placement] = []
        free_online: list[Core] = []
        free_quarantined: list[Core] = []
        for core in self._all_cores():
            stats.slots_total += 1
            if core.core_id in exclude:
                stats.slots_excluded += 1
                continue
            if core.online:
                free_online.append(core)
            else:
                stats.slots_stranded += 1
                free_quarantined.append(core)

        for task in tasks:
            if free_online:
                core = free_online.pop(0)
                placements.append(Placement(task, core.core_id))
                stats.placed += 1
                continue
            placed = False
            if self.allow_safe_tasks:
                for index, core in enumerate(free_quarantined):
                    implicated = self.implicated_units_by_core.get(
                        core.core_id, frozenset()
                    )
                    if heuristic_safe_op_mix(implicated, task.op_mix):
                        free_quarantined.pop(index)
                        placements.append(
                            Placement(task, core.core_id, on_quarantined_core=True)
                        )
                        stats.placed += 1
                        stats.placed_on_quarantined += 1
                        placed = True
                        break
            if not placed:
                stats.unplaceable += 1
        return placements, stats

    def capacity(self) -> tuple[int, int]:
        """(online slots, total slots)."""
        total = 0
        online = 0
        for core in self._all_cores():
            total += 1
            online += core.online
        return online, total
