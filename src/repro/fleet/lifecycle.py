"""Machine lifecycle: burn-in, deployment, RMA and replacement.

§1: "there is already a vast installed base of vulnerable chips, and we
need to find scalable ways to keep using these systems without
suffering from frequent errors, rather than replacing them (at enormous
expense)".  The lifecycle model makes that expense comparable against
quarantine strategies:

- :func:`burn_in` — pre-deployment screening (§6 axis 2): runs the
  corpus against a machine's cores at stress conditions before it joins
  the fleet, catching manufacturing escapes that are active on day one.
- :class:`RmaTracker` — accounts replacement cost and lead time for
  machines pulled from the fleet.
"""

from __future__ import annotations

import dataclasses

from repro.detection.corpus import TestCorpus  # repro: noqa-ARCH001 -- lifecycle embeds the real screening corpus so burn-in runs the production tests, not a stub
from repro.detection.screener import ScreenResult  # repro: noqa-ARCH001 -- burn-in verdicts reuse the production ScreenResult shape end-to-end
from repro.fleet.machine import Machine
from repro.silicon.environment import stress_points


@dataclasses.dataclass
class BurnInReport:
    """Outcome of pre-deployment screening for one machine."""

    machine_id: str
    rejected: bool
    confessing_cores: list[str]
    results: list[ScreenResult]


def burn_in(
    machine: Machine,
    corpus: TestCorpus | None = None,
    repetitions: int = 2,
) -> BurnInReport:
    """Pre-deployment screen of every core at stress conditions.

    Catches day-zero defects (manufacturing-test escapes); late-onset
    defects pass burn-in by definition — the paper's reason why
    "testing becomes part of the full lifecycle of a CPU, not just an
    issue for vendors or burn-in testing" (§6).
    """
    corpus = corpus or TestCorpus.standard()
    confessing: list[str] = []
    results: list[ScreenResult] = []
    for core in machine.cores:
        original_env = core.env
        merged = ScreenResult(core_id=core.core_id, passed=True)
        try:
            for point in stress_points(machine.dvfs):
                core.set_environment(point)
                result = corpus.screen(core, repetitions=repetitions)
                merged.tests_run += result.tests_run
                merged.ops_cost += result.ops_cost
                merged.machine_checks += result.machine_checks
                merged.failed_tests.extend(result.failed_tests)
                if not result.passed:
                    merged.passed = False
        finally:
            core.set_environment(original_env)
        results.append(merged)
        if merged.confessed:
            confessing.append(core.core_id)
    return BurnInReport(
        machine_id=machine.machine_id,
        rejected=bool(confessing),
        confessing_cores=confessing,
        results=results,
    )


@dataclasses.dataclass
class RmaTracker:
    """Replacement economics for pulled machines.

    Attributes:
        machine_cost_units: capital cost of one replacement machine
            (arbitrary units; experiments compare, not price).
        lead_time_days: capacity gap between pull and replacement.
    """

    machine_cost_units: float = 1.0
    lead_time_days: float = 30.0
    machines_pulled: int = 0
    capacity_gap_machinedays: float = 0.0

    def pull(self, n_machines: int = 1) -> None:
        self.machines_pulled += n_machines
        self.capacity_gap_machinedays += n_machines * self.lead_time_days

    @property
    def replacement_cost(self) -> float:
        return self.machines_pulled * self.machine_cost_units
