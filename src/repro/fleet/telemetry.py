"""Fleet telemetry: machine-check logs and crash-dump evidence.

§2/§6: suspicion is built from "production incidents, core-dump
evidence, and failure-mode guesses", "crashes of user processes and
kernels and analysis of our existing logs of machine checks."

This module models the *quality* of those logs — the part the event
stream alone doesn't capture: machine-check records carry structured
fields (bank, address, core) with vendor-dependent completeness, and
crash dumps yield a core attribution only when the dying thread was
pinned.  The analyzers convert raw records into
:class:`~repro.core.events.CeeEvent` streams with honest attribution
gaps, and summarize per-core recidivism the way a fleet health
dashboard would.
"""

from __future__ import annotations

import collections
import dataclasses

import numpy as np

from repro import obs
from repro.core.events import CeeEvent, EventKind, EventLog, Reporter


@dataclasses.dataclass(frozen=True)
class MceRecord:
    """One raw machine-check log entry."""

    time_days: float
    machine_id: str
    bank: int
    core_id: str | None       # None: the bank is not core-scoped
    corrected: bool           # corrected errors are noise; UC are signal


@dataclasses.dataclass(frozen=True)
class CrashDump:
    """One crash-dump summary from a dying process or kernel."""

    time_days: float
    machine_id: str
    process: str
    pinned_core_id: str | None   # attribution only if thread was pinned
    kernel: bool = False


class MceLogAnalyzer:
    """Turns raw MCE records into attributed events.

    Corrected errors (the vast majority on healthy machines) are
    dropped unless a core shows *excess* corrected-error recidivism —
    §6's signal analysis applied to the MCE log itself.
    """

    def __init__(self, corrected_excess_threshold: int = 10):
        self.corrected_excess_threshold = corrected_excess_threshold
        self._corrected_counts: collections.Counter = collections.Counter()
        self.records_seen = 0
        self._obs_on = obs.enabled()
        if self._obs_on:
            self._m_records = obs.metrics.counter(
                "telemetry_mce_records_total",
                help="raw machine-check log records analyzed",
                unit="records",
            )
            self._m_events = obs.metrics.counter(
                "telemetry_mce_events_total",
                help="signal-worthy MCE events appended to the log",
                unit="events",
            )

    def analyze(self, records: list[MceRecord], log: EventLog) -> int:
        """Append signal-worthy events to ``log``; returns events added."""
        added = 0
        for record in records:
            self.records_seen += 1
            if record.corrected:
                if record.core_id is None:
                    continue
                self._corrected_counts[record.core_id] += 1
                if self._corrected_counts[record.core_id] != \
                        self.corrected_excess_threshold:
                    continue
                detail = "corrected-error recidivism"
            else:
                detail = f"uncorrected MCE bank {record.bank}"
            log.append(
                CeeEvent(
                    time_days=record.time_days,
                    machine_id=record.machine_id,
                    core_id=record.core_id,
                    kind=EventKind.MACHINE_CHECK,
                    reporter=Reporter.AUTOMATED,
                    detail=detail,
                )
            )
            added += 1
        if self._obs_on:
            self._m_records.inc(len(records))
            self._m_events.inc(added)
        return added

    def corrected_recidivists(self) -> list[tuple[str, int]]:
        return [
            (core_id, count)
            for core_id, count in self._corrected_counts.most_common()
            if count >= self.corrected_excess_threshold
        ]


class CrashDumpAnalyzer:
    """Extracts core attributions from crash dumps.

    Only pinned threads yield a core id; the ``pinned_fraction`` of a
    fleet determines how often crashes are attributable at all — one
    reason the paper leans on screening rather than crashes alone.
    """

    def __init__(self, rng: np.random.Generator, pinned_fraction: float = 0.3):
        if not 0.0 <= pinned_fraction <= 1.0:
            raise ValueError("pinned_fraction must be a probability")
        self.rng = rng
        self.pinned_fraction = pinned_fraction
        self._obs_on = obs.enabled()
        if self._obs_on:
            self._m_dumps = obs.metrics.counter(
                "telemetry_crash_dumps_total",
                help="crash dumps converted to CRASH events, by whether "
                     "the dying thread was pinned (core-attributable)",
                unit="dumps",
            )

    def synthesize_dump(
        self,
        time_days: float,
        machine_id: str,
        core_id: str,
        process: str = "task",
        kernel: bool = False,
    ) -> CrashDump:
        """Model a crash on ``core_id``: attribution survives only if
        the thread was pinned."""
        pinned = self.rng.random() < self.pinned_fraction
        return CrashDump(
            time_days=time_days,
            machine_id=machine_id,
            process=process,
            pinned_core_id=core_id if pinned else None,
            kernel=kernel,
        )

    def analyze(self, dumps: list[CrashDump], log: EventLog) -> int:
        """Convert dumps to CRASH events; returns events added."""
        if self._obs_on:
            attributed = sum(
                1 for d in dumps if d.pinned_core_id is not None
            )
            self._m_dumps.inc(attributed, attributed="yes")
            self._m_dumps.inc(len(dumps) - attributed, attributed="no")
        for dump in dumps:
            log.append(
                CeeEvent(
                    time_days=dump.time_days,
                    machine_id=dump.machine_id,
                    core_id=dump.pinned_core_id,
                    kind=EventKind.CRASH,
                    reporter=Reporter.AUTOMATED,
                    application=dump.process,
                    detail="kernel crash" if dump.kernel else "process crash",
                )
            )
        return len(dumps)


@dataclasses.dataclass(frozen=True)
class HealthSummary:
    """Per-core dashboard row."""

    core_id: str
    machine_checks: int
    crashes: int
    app_reports: int

    @property
    def total_signals(self) -> int:
        return self.machine_checks + self.crashes + self.app_reports


def fleet_health_dashboard(
    log: EventLog, top_n: int = 10
) -> list[HealthSummary]:
    """Rank cores by attributed-signal volume (the triage queue)."""
    mce = log.per_core_counts(EventKind.MACHINE_CHECK)
    crash = log.per_core_counts(EventKind.CRASH)
    reports = log.per_core_counts(EventKind.APP_REPORT)
    all_cores = set(mce) | set(crash) | set(reports)
    summaries = [
        HealthSummary(
            core_id=core_id,
            machine_checks=mce.get(core_id, 0),
            crashes=crash.get(core_id, 0),
            app_reports=reports.get(core_id, 0),
        )
        for core_id in all_cores
    ]
    summaries.sort(key=lambda s: s.total_signals, reverse=True)
    return summaries[:top_n]
