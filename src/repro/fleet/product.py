"""CPU products: vendors, SKUs, and their defect statistics.

§1/§2: "CEEs appear to be an industry-wide problem, not specific to any
vendor, but the rate is not uniform across CPU products", and the
incidence is "on the order of a few mercurial cores per several
thousand machines".

A :class:`CpuProduct` carries the per-core probability that a core is
mercurial (the *prevalence*), the spread of defect base rates, and the
aging/onset statistics for that SKU's process node.  The default
portfolio mixes four SKUs whose blended incidence lands in the paper's
band while individual SKUs differ by ~an order of magnitude.
"""

from __future__ import annotations

import dataclasses

from repro.silicon.aging import WeibullOnset


@dataclasses.dataclass(frozen=True)
class CpuProduct:
    """One CPU SKU in the fleet.

    Attributes:
        vendor: vendor name (anonymized, like the paper).
        sku: product identifier.
        cores_per_machine: hardware threads per machine.
        core_prevalence: probability any given core is mercurial.
        rate_decades: (low, high) log10 bounds of defect base rates.
        onset: aging/onset sampler for this SKU.
    """

    vendor: str
    sku: str
    cores_per_machine: int
    core_prevalence: float
    rate_decades: tuple[float, float] = (-7.5, -2.5)
    onset: WeibullOnset = dataclasses.field(default_factory=WeibullOnset)

    def __post_init__(self) -> None:
        if self.cores_per_machine < 1:
            raise ValueError("need at least one core per machine")
        if not 0.0 <= self.core_prevalence <= 1.0:
            raise ValueError("core_prevalence must be a probability")

    @property
    def machine_prevalence(self) -> float:
        """Probability a machine has at least one mercurial core."""
        return 1.0 - (1.0 - self.core_prevalence) ** self.cores_per_machine


#: Default SKU portfolio.  Newer, denser nodes (smaller features, more
#: cores) get higher prevalence — §5's scaling argument — and more
#: late-onset defects.
DEFAULT_PRODUCTS: tuple[CpuProduct, ...] = (
    CpuProduct(
        vendor="vendorA", sku="A-28nm-16c", cores_per_machine=16,
        core_prevalence=1.0e-5,
        onset=WeibullOnset(scale_days=900.0, shape=1.8, escape_fraction=0.45),
    ),
    CpuProduct(
        vendor="vendorA", sku="A-14nm-32c", cores_per_machine=32,
        core_prevalence=2.5e-5,
        onset=WeibullOnset(scale_days=700.0, shape=2.0, escape_fraction=0.35),
    ),
    CpuProduct(
        vendor="vendorB", sku="B-10nm-48c", cores_per_machine=48,
        core_prevalence=4.0e-5,
        onset=WeibullOnset(scale_days=600.0, shape=2.2, escape_fraction=0.30),
    ),
    CpuProduct(
        vendor="vendorB", sku="B-7nm-64c", cores_per_machine=64,
        core_prevalence=6.0e-5,
        onset=WeibullOnset(scale_days=500.0, shape=2.4, escape_fraction=0.25),
    ),
)


def blended_machine_prevalence(
    products: tuple[CpuProduct, ...] = DEFAULT_PRODUCTS,
    weights: tuple[float, ...] | None = None,
) -> float:
    """Fleet-level machine prevalence for a product mix."""
    if weights is None:
        weights = tuple(1.0 for _ in products)
    if len(weights) != len(products):
        raise ValueError("one weight per product")
    total = sum(weights)
    return sum(
        w * p.machine_prevalence for w, p in zip(weights, products)
    ) / total
