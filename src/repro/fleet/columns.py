"""Struct-of-arrays fleet state: the columnar substrate.

The paper's argument is statistical — mercurial cores are a
few-per-several-thousand phenomenon — so every conclusion sharpens with
fleet size.  Per-object fleets top out well below the O(10^5-10^6)
cores that SiliFuzz and the Facebook SDC paper operate at: building a
``Core`` instance per hardware thread costs a Python allocation, a
dict/slots layout and a GC header each, and shipping such a fleet to a
pool worker costs a full pickle round-trip.

:class:`FleetColumns` stores the same fleet as a handful of numpy
arrays — machine columns, per-core columns, and dense per-mercurial
columns (the mercurial population is tiny, so everything a defect model
needs lives in arrays sized by *defective* cores, not total cores).
The contract with the object world is lossless: ``to_machines()``
materializes the exact fleet :meth:`repro.fleet.population.FleetBuilder.build`
would have produced (bit-identical ids, defects, seeds and ages — pinned
by tests), and :meth:`from_machines` goes the other way.

Memory layout (1M cores ≈ 7 MB, vs ≈ 1 GB of ``Core`` objects):

=====================  =========  ===========================================
column                 dtype      meaning
=====================  =========  ===========================================
machine_product        int16      SKU index into ``products`` (per machine)
machine_deploy_day     float64    fleet day the machine entered service
machine_core_start     int64      prefix offsets: machine m owns flat core
                                  indices ``[start[m], start[m+1])``
core_machine           int32      owning machine index (per core)
mercurial              bool       ground truth: core carries defects
online                 bool       schedulable (False = quarantined/drained)
merc_core              int64      flat core index of each mercurial core
merc_onset             float64    earliest defect onset age (days)
merc_defect_mode       int16      archetype code of the primary defect
merc_age               float64    current core age in days
merc_sample_seed       uint64     seed that regenerates the defect set
merc_core_seed         uint64     seed of the core's own defect RNG
=====================  =========  ===========================================

Everything above is a flat buffer, so a fleet can be handed to pool
workers as a zero-copy :mod:`multiprocessing.shared_memory` snapshot
(see :mod:`repro.fleet.shm`) — workers attach read-only and materialize
no per-core objects at all.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.fleet.product import CpuProduct
from repro.silicon.catalog import sample_core_defects
from repro.silicon.core import Chip, Core
from repro.silicon.environment import NOMINAL, OperatingPoint

if TYPE_CHECKING:
    from repro.fleet.machine import Machine
    from repro.fleet.population import FleetGroundTruth
    from repro.silicon.defects import DefectModel

#: defect archetype → ``merc_defect_mode`` code (0 = unknown/other).
DEFECT_MODE_CODES: dict[str, int] = {
    "StuckBitDefect": 1,
    "SboxPermutationDefect": 2,
    "OperandPatternDefect": 3,
    "SharedLogicDefect": 4,
    "AtomicsDefect": 5,
    "MachineCheckDefect": 6,
}

#: the array fields serialized into a shared-memory snapshot, in a
#: stable order (the snapshot hand-off protocol depends on it)
SNAPSHOT_FIELDS: tuple[str, ...] = (
    "machine_product",
    "machine_deploy_day",
    "machine_core_start",
    "core_machine",
    "mercurial",
    "online",
    "merc_core",
    "merc_onset",
    "merc_defect_mode",
    "merc_age",
    "merc_sample_seed",
    "merc_core_seed",
)


def defect_mode_code(defects: Sequence["DefectModel"]) -> int:
    """Archetype code of a core's primary (first-sampled) defect."""
    if not defects:
        return 0
    return DEFECT_MODE_CODES.get(type(defects[0]).__name__, 0)


@dataclasses.dataclass
class FleetColumns:
    """A whole fleet as struct-of-arrays (see module docstring).

    Instances come from :meth:`repro.fleet.population.FleetBuilder.build_columns`
    (seeded synthesis), :meth:`from_machines` (adapting an object
    fleet), or :func:`repro.fleet.shm.attach` (zero-copy view of a
    shared-memory snapshot; arrays arrive read-only).
    """

    products: tuple[CpuProduct, ...]
    machine_product: np.ndarray
    machine_deploy_day: np.ndarray
    machine_core_start: np.ndarray
    core_machine: np.ndarray
    mercurial: np.ndarray
    online: np.ndarray
    merc_core: np.ndarray
    merc_onset: np.ndarray
    merc_defect_mode: np.ndarray
    merc_age: np.ndarray
    merc_sample_seed: np.ndarray
    merc_core_seed: np.ndarray
    #: machine ids; generated fleets use ``m%05d`` but adapted object
    #: fleets keep whatever ids they had
    machine_ids: np.ndarray = dataclasses.field(default=None)  # type: ignore[assignment]
    #: defect models per mercurial core.  Builder fleets regenerate them
    #: lazily from ``merc_sample_seed``; adapted fleets carry the actual
    #: object tuples; snapshot-attached fleets get them from the handle
    #: sidecar.  ``None`` entries mean "not materialized yet".
    _merc_defects: list | None = dataclasses.field(default=None, repr=False)
    #: per-mercurial operating points (NOMINAL unless adapted from
    #: objects that were moved off the nominal point)
    _merc_env: list | None = dataclasses.field(default=None, repr=False)
    #: explicit per-core id strings, only when the fleet does not follow
    #: the generated ``<machine>/cNN`` pattern
    _core_ids: list | None = dataclasses.field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.machine_ids is None:
            self.machine_ids = np.array(
                [f"m{index:05d}" for index in range(self.n_machines)]
            )

    # -- shape ----------------------------------------------------------

    @property
    def n_machines(self) -> int:
        return int(self.machine_product.shape[0])

    @property
    def n_cores(self) -> int:
        return int(self.core_machine.shape[0])

    @property
    def n_mercurial(self) -> int:
        return int(self.merc_core.shape[0])

    @property
    def cores_per_machine(self) -> np.ndarray:
        """Per-machine core counts (derived from the prefix offsets)."""
        return np.diff(self.machine_core_start)

    @property
    def nbytes(self) -> int:
        """Total array payload (what a snapshot costs)."""
        return sum(
            int(getattr(self, name).nbytes) for name in SNAPSHOT_FIELDS
        ) + int(self.machine_ids.nbytes)

    # -- identity -------------------------------------------------------

    def machine_id(self, machine_index: int) -> str:
        return str(self.machine_ids[machine_index])

    def core_id(self, flat_index: int) -> str:
        """Stable core id for a flat core index."""
        if self._core_ids is not None:
            return self._core_ids[flat_index]
        machine = int(self.core_machine[flat_index])
        within = flat_index - int(self.machine_core_start[machine])
        return f"{self.machine_ids[machine]}/c{within:02d}"

    def core_index(self, core_id: str) -> int | None:
        """Flat index for a core id; ``None`` if the id is unknown."""
        machine_part, _, core_part = core_id.rpartition("/c")
        if not machine_part:
            return None
        machine = self._machine_index_map().get(machine_part)
        if machine is None:
            return None
        try:
            within = int(core_part)
        except ValueError:
            return None
        start = int(self.machine_core_start[machine])
        if not 0 <= within < int(self.machine_core_start[machine + 1]) - start:
            return None
        return start + within

    def _machine_index_map(self) -> dict[str, int]:
        cached = getattr(self, "_machine_map", None)
        if cached is None:
            cached = {
                str(machine_id): index
                for index, machine_id in enumerate(self.machine_ids)
            }
            object.__setattr__(self, "_machine_map", cached)
        return cached

    def machine_core_range(self, machine_index: int) -> tuple[int, int]:
        """Flat index range ``[start, stop)`` of one machine's cores."""
        return (
            int(self.machine_core_start[machine_index]),
            int(self.machine_core_start[machine_index + 1]),
        )

    # -- mercurial population -------------------------------------------

    def merc_defects(self, merc_index: int) -> tuple:
        """Defect models of one mercurial core, regenerated on demand.

        Builder fleets resample from ``merc_sample_seed`` — identical
        calls to what :meth:`FleetBuilder.build` made, so the defect
        parameters are bit-identical to the object fleet's.
        """
        if self._merc_defects is None:
            self._merc_defects = [None] * self.n_mercurial
        cached = self._merc_defects[merc_index]
        if cached is None:
            flat = int(self.merc_core[merc_index])
            product = self.products[
                int(self.machine_product[int(self.core_machine[flat])])
            ]
            cached = tuple(
                sample_core_defects(
                    np.random.default_rng(int(self.merc_sample_seed[merc_index])),
                    self.core_id(flat),
                    onset=product.onset,
                )
            )
            self._merc_defects[merc_index] = cached
        return cached

    def merc_env(self, merc_index: int) -> OperatingPoint:
        """Operating point of one mercurial core (NOMINAL unless adapted)."""
        if self._merc_env is None:
            return NOMINAL
        return self._merc_env[merc_index]

    def ground_truth(self) -> "FleetGroundTruth":
        """What the detectors must discover, derived from the columns."""
        from repro.fleet.population import FleetGroundTruth

        mercurial_ids = {
            self.core_id(int(flat)) for flat in self.merc_core
        }
        onsets = {
            self.core_id(int(flat)): float(self.merc_onset[index])
            for index, flat in enumerate(self.merc_core)
        }
        return FleetGroundTruth(mercurial_ids, onsets)

    def ground_truth_map(self) -> dict[str, bool]:
        """core id → is mercurial, for every core (detector scoring)."""
        flags = self.mercurial
        return {
            self.core_id(flat): bool(flags[flat])
            for flat in range(self.n_cores)
        }

    # -- conversions ----------------------------------------------------

    @classmethod
    def from_machines(
        cls, machines: Sequence["Machine"], products: Sequence[CpuProduct] | None = None
    ) -> "FleetColumns":
        """Adapt an object fleet into columns (the objects keep working).

        The adapted columns reference the fleet's *actual* defect model
        objects (no resampling), so analytic rates match the objects
        exactly.  ``to_machines()`` on an adapted instance is refused —
        the original objects are the materialization.
        """
        if products is None:
            seen: dict[int, CpuProduct] = {}
            for machine in machines:
                seen.setdefault(id(machine.product), machine.product)
            products = tuple(seen.values())
        product_index = {id(p): i for i, p in enumerate(products)}

        n_machines = len(machines)
        machine_product = np.zeros(n_machines, dtype=np.int16)
        machine_deploy_day = np.zeros(n_machines, dtype=np.float64)
        counts = np.zeros(n_machines, dtype=np.int64)
        machine_ids = []
        for index, machine in enumerate(machines):
            machine_product[index] = product_index[id(machine.product)]
            machine_deploy_day[index] = machine.deploy_day
            counts[index] = len(machine.cores)
            machine_ids.append(machine.machine_id)
        machine_core_start = np.zeros(n_machines + 1, dtype=np.int64)
        np.cumsum(counts, out=machine_core_start[1:])
        n_cores = int(machine_core_start[-1])

        core_machine = np.repeat(
            np.arange(n_machines, dtype=np.int32), counts
        )
        mercurial = np.zeros(n_cores, dtype=bool)
        online = np.ones(n_cores, dtype=bool)
        merc_core_list: list[int] = []
        merc_defects: list = []
        merc_env: list = []
        merc_onset_list: list[float] = []
        merc_age_list: list[float] = []
        merc_mode_list: list[int] = []
        pattern_ok = True
        core_ids: list[str] = []
        flat = 0
        for m_index, machine in enumerate(machines):
            for within, core in enumerate(machine.cores):  # repro: noqa-PERF002 -- the one sanctioned object->columns adaptation pass
                expected = f"{machine.machine_id}/c{within:02d}"
                if core.core_id != expected:
                    pattern_ok = False
                core_ids.append(core.core_id)
                online[flat] = core.online
                if core.is_mercurial:
                    mercurial[flat] = True
                    merc_core_list.append(flat)
                    merc_defects.append(core.defects)
                    merc_env.append(core.env)
                    merc_onset_list.append(
                        min(d.aging.onset_days for d in core.defects)
                    )
                    merc_age_list.append(core.age_days)
                    merc_mode_list.append(defect_mode_code(core.defects))
                flat += 1

        columns = cls(
            products=tuple(products),
            machine_product=machine_product,
            machine_deploy_day=machine_deploy_day,
            machine_core_start=machine_core_start,
            core_machine=core_machine,
            mercurial=mercurial,
            online=online,
            merc_core=np.array(merc_core_list, dtype=np.int64),
            merc_onset=np.array(merc_onset_list, dtype=np.float64),
            merc_defect_mode=np.array(merc_mode_list, dtype=np.int16),
            merc_age=np.array(merc_age_list, dtype=np.float64),
            merc_sample_seed=np.zeros(len(merc_core_list), dtype=np.uint64),
            merc_core_seed=np.zeros(len(merc_core_list), dtype=np.uint64),
            machine_ids=np.array(machine_ids) if machine_ids else np.array([], dtype="<U1"),
            _merc_defects=merc_defects,
            _merc_env=merc_env,
            _core_ids=None if pattern_ok else core_ids,
        )
        object.__setattr__(columns, "_adapted", True)
        return columns

    def to_machines(self) -> tuple[list["Machine"], "FleetGroundTruth"]:
        """Materialize the object fleet these columns describe.

        Bit-identical to what :meth:`FleetBuilder.build` produces for
        the same seed (pinned by tests): same ids, same defect
        parameters, same per-core RNG seeding, same deploy days.
        """
        from repro.fleet.machine import Machine

        if getattr(self, "_adapted", False):
            raise ValueError(
                "columns adapted from an object fleet cannot re-materialize "
                "one (no regeneration seeds); use the original machines"
            )
        merc_by_flat = {
            int(flat): index for index, flat in enumerate(self.merc_core)
        }
        machines: list[Machine] = []
        for m_index in range(self.n_machines):
            machine_id = self.machine_id(m_index)
            product = self.products[int(self.machine_product[m_index])]
            start, stop = self.machine_core_range(m_index)
            cores = []
            for flat in range(start, stop):
                core_id = self.core_id(flat)
                merc_index = merc_by_flat.get(flat)
                if merc_index is not None:
                    core = Core(
                        core_id,
                        defects=self.merc_defects(merc_index),
                        env=NOMINAL,
                        rng=np.random.default_rng(
                            int(self.merc_core_seed[merc_index])
                        ),
                        age_days=float(self.merc_age[merc_index]),
                    )
                    core.online = bool(self.online[flat])
                else:
                    core = Core(core_id, env=NOMINAL)
                    core.online = bool(self.online[flat])
                cores.append(core)
            machines.append(
                Machine(
                    machine_id=machine_id,
                    product=product,
                    chip=Chip(cores),
                    deploy_day=float(self.machine_deploy_day[m_index]),
                )
            )
        return machines, self.ground_truth()

    # -- mutability -----------------------------------------------------

    @property
    def read_only(self) -> bool:
        """True when the arrays are snapshot views (not writable)."""
        return not self.online.flags.writeable

    def thaw(self) -> "FleetColumns":
        """A copy whose mutable-state arrays are private and writable.

        Snapshot-attached columns are read-only by contract; a simulator
        that needs to quarantine cores or age the mercurial population
        calls this to copy just the columns it mutates (``online``,
        ``merc_age`` — a megabyte at 1M cores) while the heavy immutable
        columns stay zero-copy views of the shared segment.
        """
        return dataclasses.replace(
            self,
            online=self.online.copy(),
            merc_age=self.merc_age.copy(),
        )


__all__ = [
    "DEFECT_MODE_CODES",
    "FleetColumns",
    "SNAPSHOT_FIELDS",
    "defect_mode_code",
]
