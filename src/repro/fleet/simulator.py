"""The fleet simulator: months of fleet time, analytically.

Executing every operation of a 10k-machine fleet is impossible in any
simulator; the paper's own observations are *rates* (Fig. 1 plots
normalized incident rates per machine over time).  The simulator
therefore runs the defect models in their analytic form: every active
mercurial core has a per-day corruption rate under the production
operation mix (:func:`repro.workloads.generator.blended_op_mix`), and
the simulator samples Poisson incident counts per surfacing channel —
application self-checks, crashes, machine checks, user-visible
incidents — per tick.  Everything downstream of the events (suspicion,
policy, triage, quarantine) is the *actual* detection stack from
:mod:`repro.core` and :mod:`repro.detection`, not a model of it.

The automated-detection series rises over the campaign for two reasons,
both from the paper: late-onset defects keep activating (§2 "these can
manifest long after initial installation"), and the test corpus gains
coverage "a few times per year" as new CEE classes are root-caused
(§6), modeled as stepwise coverage expansions.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro import obs
from repro.core.confidence import SuspicionTracker
from repro.core.events import CeeEvent, EventKind, EventLog, Reporter
from repro.core.policy import Action, PolicyConfig, QuarantinePolicy
from repro.core.report import Complaint, CoreComplaintService
from repro.core.triage import HumanTriageModel, TriageOutcome
from repro.detection.signals import SignalAnalyzer  # repro: noqa-ARCH001 -- the simulator drives the real detection stack (the paper's point is testing production detectors, not mocks)
from repro.fleet.columns import FleetColumns
from repro.fleet.machine import Machine
from repro.fleet.population import FleetGroundTruth
from repro.silicon.core import Core
from repro.silicon.defects import MachineCheckDefect
from repro.workloads.generator import blended_op_mix  # repro: noqa-ARCH001 -- fleet days replay the production workload blend so corruption rates match the serving mix


@dataclasses.dataclass
class SimulatorConfig:
    """Calibration knobs; defaults land in the paper's bands."""

    horizon_days: float = 365.0
    #: steady-state lead-in simulated before t=0; events in the warmup
    #: are processed (suspicion, quarantine) but excluded from the
    #: reported [0, horizon) timelines, so Fig. 1 shows a managed
    #: fleet, not the first-ever screening sweep of an unmanaged one
    warmup_days: float = 180.0
    tick_days: float = 1.0
    #: effective operations/day per core counted against defect rates
    exposed_ops_per_day: float = 2e7
    # surfacing probabilities per silent corruption
    p_selfcheck_surface: float = 2e-3
    p_crash_surface: float = 6e-4
    p_user_surface: float = 6e-4
    # attribution: which events carry a core id
    p_attribute_selfcheck: float = 0.9
    p_attribute_crash: float = 0.35
    p_attribute_mce: float = 0.9
    p_attribute_user: float = 0.5
    #: cap on surfaced events per core per channel per day — a core
    #: corrupting millions of ops/day takes its machine out of
    #: service long before millions of tickets get filed
    max_surfaced_per_channel_per_day: int = 12
    # background noise from plain software bugs, per machine-day
    bg_crash_rate: float = 8e-3
    bg_user_rate: float = 2e-5
    # screening cadence and effort
    online_screen_period_days: float = 7.0
    online_corpus_ops: float = 2e5
    offline_screen_period_days: float = 90.0
    offline_corpus_ops: float = 2e6
    offline_env_boost: float = 6.0
    # §6: corpus coverage expands "a few times per year"
    coverage_initial: float = 0.30
    coverage_step: float = 0.10
    coverage_expansions_per_year: float = 3.0
    # confession testing triggered by the policy
    confession_corpus_ops: float = 2e6
    confession_attempts: int = 3
    policy: PolicyConfig = dataclasses.field(default_factory=PolicyConfig)
    suspicion_retest_threshold: float = 2.0
    #: batch all per-tick Poisson/binomial/attribution draws across the
    #: active mercurial population instead of drawing per core.  Both
    #: paths are self-deterministic and statistically identical, but
    #: they consume the RNG stream in different orders, so flipping this
    #: changes individual event realizations (not the calibrated bands).
    vectorized: bool = True
    #: how stale a cached (silent, mce) rate split may get before the
    #: vectorized path recomputes it from the defect models.  Defect
    #: aging curves move on week scales, so 7 days loses nothing.
    rate_refresh_days: float = 7.0


@dataclasses.dataclass
class SimulationResult:
    """Everything an experiment needs from one campaign."""

    config: SimulatorConfig
    events: EventLog
    truth: FleetGroundTruth
    n_machines: int
    n_cores: int
    quarantined_cores: set[str]
    quarantine_day: dict[str, float]
    detection_latency_days: dict[str, float]
    triage: HumanTriageModel
    total_corruptions: int
    app_visible_corruptions: int
    screening_ops_spent: float

    def flagged(self) -> set[str]:
        return set(self.quarantined_cores)

    def reported_rate_series(
        self, reporter: Reporter, bucket_days: float = 30.0
    ) -> list[tuple[float, float]]:
        """All-event rate per machine-day, bucketed."""
        return self.events.rate_timeline(
            bucket_days=bucket_days,
            horizon_days=self.config.horizon_days,
            reporter=reporter,
            machines=self.n_machines,
        )

    #: event kinds that count as a *CEE incident report* (Fig. 1's
    #: y-axis counts suspected-CEE reports, not every crash in the
    #: fleet — background software-bug crashes are excluded because
    #: they are never filed as CEE incidents)
    AUTO_REPORT_KINDS = frozenset(
        {
            EventKind.APP_REPORT,
            EventKind.SCREEN_FAIL,
            EventKind.MACHINE_CHECK,
            EventKind.SELF_CHECK_FAILURE,
            EventKind.SANITIZER,
        }
    )

    def cee_report_series(
        self, reporter: Reporter, bucket_days: float = 30.0
    ) -> list[tuple[float, float]]:
        """Fig. 1's series proper: CEE incident reports per machine-day."""
        kinds = (
            self.AUTO_REPORT_KINDS
            if reporter is Reporter.AUTOMATED
            else {EventKind.USER_REPORT}
        )
        return self.events.rate_timeline(
            bucket_days=bucket_days,
            horizon_days=self.config.horizon_days,
            reporter=reporter,
            machines=self.n_machines,
            kinds=kinds,
        )


class FleetSimulator:
    """Drives a fleet through a detection campaign.

    The fleet comes in one of two substrates:

    - ``list[Machine]`` — the object fleet (plus an explicit ground
      truth).  Both tick paths work; this is the compatibility anchor.
    - :class:`~repro.fleet.columns.FleetColumns` — the columnar
      substrate, including zero-copy shared-memory snapshots (read-only
      columns are thawed automatically).  Only the vectorized tick runs
      on columns, and it is bit-identical to the object vectorized tick
      at equal seeds (pinned by parity tests): both consume the same
      RNG stream in the same order, because the per-mercurial rate
      caches and event-emission order are substrate-independent.
    """

    def __init__(
        self,
        fleet: list[Machine] | FleetColumns,
        truth: FleetGroundTruth | None = None,
        config: SimulatorConfig | None = None,
        seed: int = 0,
    ):
        self.config = config or SimulatorConfig()
        self.columns: FleetColumns | None = None
        if isinstance(fleet, FleetColumns):
            if not self.config.vectorized:
                raise ValueError(
                    "the scalar tick needs Core objects; materialize the "
                    "columns with to_machines() to run vectorized=False"
                )
            self.columns = fleet.thaw() if fleet.read_only else fleet
            self.machines: list[Machine] = []
            self.truth = truth if truth is not None else self.columns.ground_truth()
            self.n_machines = self.columns.n_machines
            self.n_cores = self.columns.n_cores
        else:
            self.machines = fleet
            if truth is None:
                raise TypeError("an object fleet needs an explicit ground truth")
            self.truth = truth
            self.n_machines = len(fleet)
            self.n_cores = sum(len(m.cores) for m in fleet)
        self.rng = np.random.default_rng(seed)
        self.events = EventLog()
        self.production_mix = blended_op_mix()

        n_cores = self.n_cores
        # Unattributed events are dropped rather than spread across a
        # machine's cores: the dilution weight is negligible for 16-64
        # cores and spreading is O(cores) per event at fleet scale.
        self.analyzer = SignalAnalyzer(tracker=SuspicionTracker())
        self.complaints = CoreComplaintService(
            n_cores_visible=n_cores, event_log=self.events
        )
        self.policy = QuarantinePolicy(self.config.policy, fleet_cores=n_cores)
        self.triage = HumanTriageModel(np.random.default_rng(seed + 1))

        self._core_by_id: dict[str, Core] = {}
        self._machine_by_core: dict[str, Machine] = {}
        self._mercurial: list[tuple[Machine, Core]] = []
        if self.columns is None:
            for machine in self.machines:
                for core in machine.cores:  # repro: noqa-PERF002 -- object-substrate index build (compat path)
                    self._core_by_id[core.core_id] = core
                    self._machine_by_core[core.core_id] = machine
                    if core.is_mercurial:
                        self._mercurial.append((machine, core))

        self.total_corruptions = 0
        self.app_visible = 0
        self.screening_ops = 0.0
        self.quarantine_day: dict[str, float] = {}
        self.detection_latency: dict[str, float] = {}
        self._screen_cursor = 0

        # Observability: the enabled flag is cached so the per-tick hot
        # loop pays one attribute test when off (BENCH_OBS contract).
        self._obs_on = obs.enabled()
        if self._obs_on:
            self._m_ticks = obs.metrics.counter(
                "fleet_ticks_total", help="simulator ticks run", unit="ticks",
            )
            self._m_events = obs.metrics.counter(
                "fleet_events_total",
                help="CeeEvents appended by the simulator", unit="events",
            )
            self._m_quarantines = obs.metrics.counter(
                "fleet_quarantines_total",
                help="cores taken offline by the fleet policy, by ground "
                     "truth of the victim",
                unit="cores",
            )
            self._h_latency = obs.metrics.histogram(
                "fleet_detection_latency_days",
                help="defect onset to quarantine, truly mercurial cores",
                unit="days",
                buckets=(1.0, 5.0, 10.0, 30.0, 60.0, 120.0, 240.0, 480.0),
            )

        # Vectorized-path caches: per-mercurial-core (silent, mce) rate
        # splits, refreshed on defect onset and then at most every
        # ``rate_refresh_days`` of core age.  Whole-population arrays
        # drive the active-core scan: onset is a pure age threshold
        # (min across the core's defects), so activity and aging never
        # need a per-core Python trip.  Both substrates fill the same
        # arrays — the tick itself is substrate-independent.
        if self.columns is None:
            n_mercurial = len(self._mercurial)
            self._machine_ids = [m.machine_id for m in self.machines]
            self._merc_onset = np.array([
                min((d.aging.onset_days for d in core.defects), default=np.inf)
                for _, core in self._mercurial
            ])
            self._merc_deploy = np.array(
                [machine.deploy_day for machine, _ in self._mercurial]
            )
            # The age array mirrors core.age_days; the Core objects are
            # synced on rate refresh (the only in-loop reader) and at
            # end of run.
            self._merc_age = np.array(
                [core.age_days for _, core in self._mercurial]
            )
            self._merc_machine_id = [m.machine_id for m, _ in self._mercurial]
            self._merc_core_id = [c.core_id for _, c in self._mercurial]
            self._merc_flat: np.ndarray | None = None
            self._merc_machine_index: np.ndarray | None = None
            self._merc_synced_age: np.ndarray | None = None
            self._merc_defect_models: list[tuple] | None = None
            self._merc_envs: list | None = None
            self._merc_index_by_flat: dict[int, int] | None = None
        else:
            columns = self.columns
            n_mercurial = columns.n_mercurial
            self._machine_ids = [str(m) for m in columns.machine_ids.tolist()]
            merc_flat = np.asarray(columns.merc_core, dtype=np.int64)
            self._merc_flat = merc_flat
            self._merc_machine_index = columns.core_machine[merc_flat].astype(
                np.int64
            )
            self._merc_onset = columns.merc_onset.astype(np.float64, copy=True)
            self._merc_deploy = columns.machine_deploy_day[
                self._merc_machine_index
            ].astype(np.float64)
            self._merc_age = columns.merc_age.astype(np.float64, copy=True)
            # Mirrors what core.age_days would be on the object
            # substrate: advanced only at rate refresh, so stale reads
            # (triage activity checks, confession rates) see the same
            # age either way.
            self._merc_synced_age = self._merc_age.copy()
            self._merc_defect_models = [
                columns.merc_defects(i) for i in range(n_mercurial)
            ]
            self._merc_envs = [columns.merc_env(i) for i in range(n_mercurial)]
            self._merc_machine_id = [
                self._machine_ids[int(m)] for m in self._merc_machine_index
            ]
            self._merc_core_id = [
                columns.core_id(int(flat)) for flat in merc_flat.tolist()
            ]
            self._merc_index_by_flat = {
                int(flat): index for index, flat in enumerate(merc_flat.tolist())
            }
        self._n_mercurial = n_mercurial
        self._merc_silent = np.zeros(n_mercurial)
        self._merc_mce = np.zeros(n_mercurial)
        self._merc_rate_age = np.full(n_mercurial, -np.inf)

    # -- rate helpers ---------------------------------------------------

    @staticmethod
    def _split_rate_parts(
        defects, env, age_days: float, op_mix: dict[str, float]
    ) -> tuple[float, float]:
        """(silent corruption rate, machine-check rate) per op."""
        silent = 0.0
        noisy = 0.0
        for defect in defects:
            rate = defect.mean_rate(op_mix, env, age_days)
            if isinstance(defect, MachineCheckDefect):
                noisy += rate
            else:
                silent += rate
        return silent, noisy

    @classmethod
    def _split_rates(
        cls, core: Core, op_mix: dict[str, float]
    ) -> tuple[float, float]:
        """(silent corruption rate, machine-check rate) per op."""
        return cls._split_rate_parts(
            core.defects, core.env, core.age_days, op_mix
        )

    def _coverage(self, now_days: float) -> float:
        """Automated corpus coverage: stepwise expansion (§6)."""
        elapsed = now_days + self.config.warmup_days
        steps = max(
            0,
            math.floor(elapsed / 365.0 * self.config.coverage_expansions_per_year),
        )
        return min(1.0, self.config.coverage_initial
                   + steps * self.config.coverage_step)

    # -- event emission ---------------------------------------------------

    def _emit(self, **kwargs) -> None:
        self.events.append(CeeEvent(**kwargs))

    def _emit_incidents(
        self, machine: Machine, core: Core, now: float, tick: float
    ) -> None:
        cfg = self.config
        silent_rate, mce_rate = self._split_rates(core, self.production_mix)
        exposed = cfg.exposed_ops_per_day * tick
        n_corruptions = int(self.rng.poisson(silent_rate * exposed))
        n_mce = int(self.rng.poisson(mce_rate * exposed))
        self.total_corruptions += n_corruptions
        cap = max(1, int(cfg.max_surfaced_per_channel_per_day * tick))
        n_mce = min(n_mce, cap)

        for _ in range(n_mce):
            attributed = self.rng.random() < cfg.p_attribute_mce
            self._emit(
                time_days=now, machine_id=machine.machine_id,
                core_id=core.core_id if attributed else None,
                kind=EventKind.MACHINE_CHECK, reporter=Reporter.AUTOMATED,
                detail="mce",
            )

        if n_corruptions == 0:
            return
        surfaced_selfcheck = min(
            int(self.rng.binomial(n_corruptions, cfg.p_selfcheck_surface)), cap
        )
        surfaced_crash = min(
            int(self.rng.binomial(n_corruptions, cfg.p_crash_surface)), cap
        )
        surfaced_user = min(
            int(self.rng.binomial(n_corruptions, cfg.p_user_surface)), cap
        )
        self.app_visible += surfaced_selfcheck

        for _ in range(surfaced_selfcheck):
            attributed = self.rng.random() < cfg.p_attribute_selfcheck
            if attributed:
                self.complaints.report(
                    Complaint(
                        time_days=now,
                        application=f"app{int(self.rng.integers(8))}",
                        machine_id=machine.machine_id,
                        core_id=core.core_id,
                        detail="self-check failure",
                    )
                )
            else:
                self._emit(
                    time_days=now, machine_id=machine.machine_id, core_id=None,
                    kind=EventKind.SELF_CHECK_FAILURE,
                    reporter=Reporter.AUTOMATED, detail="self-check failure",
                )
        for _ in range(surfaced_crash):
            attributed = self.rng.random() < cfg.p_attribute_crash
            self._emit(
                time_days=now, machine_id=machine.machine_id,
                core_id=core.core_id if attributed else None,
                kind=EventKind.CRASH, reporter=Reporter.AUTOMATED,
                detail="process crash",
            )
        for _ in range(surfaced_user):
            attributed = self.rng.random() < cfg.p_attribute_user
            self._emit(
                time_days=now, machine_id=machine.machine_id,
                core_id=core.core_id if attributed else None,
                kind=EventKind.USER_REPORT, reporter=Reporter.HUMAN,
                detail="production incident",
            )

    def _emit_background(self, now: float, tick: float) -> None:
        cfg = self.config
        n_machines = len(self.machines)
        n_crash = int(self.rng.poisson(cfg.bg_crash_rate * n_machines * tick))
        for _ in range(n_crash):
            machine = self.machines[int(self.rng.integers(n_machines))]
            self._emit(
                time_days=now, machine_id=machine.machine_id, core_id=None,
                kind=EventKind.CRASH, reporter=Reporter.AUTOMATED,
                detail="software bug",
            )
        n_user = int(self.rng.poisson(cfg.bg_user_rate * n_machines * tick))
        for _ in range(n_user):
            machine = self.machines[int(self.rng.integers(n_machines))]
            # Humans sometimes (wrongly) finger a specific healthy core.
            core = machine.cores[int(self.rng.integers(len(machine.cores)))]
            attributed = self.rng.random() < cfg.p_attribute_user
            self._emit(
                time_days=now, machine_id=machine.machine_id,
                core_id=core.core_id if attributed else None,
                kind=EventKind.USER_REPORT, reporter=Reporter.HUMAN,
                detail="suspected bad machine",
            )

    # -- screening (analytic) ----------------------------------------------

    def _screen_detection_probability(
        self, core: Core, corpus_ops: float, env_boost: float, coverage: float
    ) -> float:
        silent_rate, mce_rate = self._split_rates(core, self.production_mix)
        rate = (silent_rate + mce_rate) * env_boost * coverage
        return 1.0 - math.exp(-rate * corpus_ops)

    def _run_screening(self, now: float, tick: float) -> None:
        """Statistical screening pass.

        Healthy cores always pass, so their screening contributes only
        cost — accounted in bulk.  Each mercurial core is "due" with
        probability tick/period per tick (the round-robin cadence in
        expectation), and confesses with the analytic detection
        probability for the corpus effort at the relevant conditions.
        """
        cfg = self.config
        n_cores = self.n_cores
        coverage = self._coverage(now)
        self.screening_ops += (
            n_cores * tick / cfg.online_screen_period_days * cfg.online_corpus_ops
        )
        self.screening_ops += (
            n_cores * tick / cfg.offline_screen_period_days * cfg.offline_corpus_ops
        )
        schedules = (
            (cfg.online_screen_period_days, cfg.online_corpus_ops, 1.0, "online screen"),
            (
                cfg.offline_screen_period_days,
                cfg.offline_corpus_ops,
                cfg.offline_env_boost,
                "offline screen",
            ),
        )
        for machine, core in self._mercurial:
            if not core.online or not core.is_defective_now():
                continue
            for period, corpus_ops, env_boost, label in schedules:
                if self.rng.random() >= tick / period:
                    continue
                p = self._screen_detection_probability(
                    core, corpus_ops, env_boost=env_boost, coverage=coverage
                )
                if self.rng.random() < p:
                    self._emit(
                        time_days=now,
                        machine_id=machine.machine_id,
                        core_id=core.core_id, kind=EventKind.SCREEN_FAIL,
                        reporter=Reporter.AUTOMATED, detail=label,
                    )

    # -- policy + triage ----------------------------------------------------

    def _confession_probability(self, core: Core, now: float) -> float:
        return self._screen_detection_probability(
            core,
            self.config.confession_corpus_ops,
            env_boost=self.config.offline_env_boost,
            coverage=self._coverage(now),
        )

    def _confession_probability_cached(
        self, merc_index: int, now: float
    ) -> float:
        """Columnar twin of :meth:`_confession_probability`.

        The cached (silent, mce) split was computed at exactly the age
        the object substrate would read back (ages only advance at rate
        refresh), so this is bit-identical to recomputing from the
        defect models — same sums, same expression order.
        """
        cfg = self.config
        silent_rate = float(self._merc_silent[merc_index])
        mce_rate = float(self._merc_mce[merc_index])
        rate = (
            (silent_rate + mce_rate)
            * cfg.offline_env_boost
            * self._coverage(now)
        )
        return 1.0 - math.exp(-rate * cfg.confession_corpus_ops)

    def _merc_defective_by_flat(self, flat: int) -> bool:
        """Columnar twin of ``core.is_defective_now()`` (stale-age
        semantics included: activity is judged at the last-synced age,
        like the object substrate's ``core.age_days``)."""
        assert self._merc_index_by_flat is not None
        assert self._merc_synced_age is not None
        merc_index = self._merc_index_by_flat.get(flat)
        if merc_index is None:
            return False
        return bool(
            self._merc_synced_age[merc_index] >= self._merc_onset[merc_index]
        )

    def _quarantine(self, core_id: str, now: float) -> None:
        if core_id in self.quarantine_day:
            return
        if self.columns is None:
            core = self._core_by_id.get(core_id)
            if core is None:
                return
            core.set_online(False)
            is_mercurial = core.is_mercurial
        else:
            flat = self.columns.core_index(core_id)
            if flat is None:
                return
            self.columns.online[flat] = False
            is_mercurial = bool(self.columns.mercurial[flat])
        self.quarantine_day[core_id] = now
        if is_mercurial:
            onset = self.truth.onset_days_by_core.get(core_id, 0.0)
            self.detection_latency[core_id] = max(0.0, now - onset)
        if self._obs_on:
            mercurial = "yes" if is_mercurial else "no"
            self._m_quarantines.inc(mercurial=mercurial)
            if is_mercurial:
                self._h_latency.observe(self.detection_latency[core_id])

    def _apply_policy(self, now: float) -> None:
        columns = self.columns
        suspects = self.analyzer.suspects(
            now, threshold=self.config.suspicion_retest_threshold
        )
        for core_id, score in suspects:
            if columns is None:
                core = self._core_by_id.get(core_id)
                if core is None or not core.online:
                    continue
                is_mercurial = core.is_mercurial
                machine_id = self._machine_by_core[core_id].machine_id
                flat = -1
            else:
                maybe_flat = columns.core_index(core_id)
                if maybe_flat is None or not columns.online[maybe_flat]:
                    continue
                flat = maybe_flat
                is_mercurial = bool(columns.mercurial[flat])
                machine_id = self._machine_ids[int(columns.core_machine[flat])]
            confessed = False
            decision = self.policy.decide(core_id, score, confessed=False)
            if decision.action is Action.RETEST:
                # Run confession testing (offline, stress conditions).
                if not is_mercurial:
                    p = 0.0
                elif columns is None:
                    p = self._confession_probability(core, now)
                else:
                    assert self._merc_index_by_flat is not None
                    p = self._confession_probability_cached(
                        self._merc_index_by_flat[flat], now
                    )
                for _ in range(self.config.confession_attempts):
                    self.screening_ops += self.config.confession_corpus_ops
                    if self.rng.random() < p:
                        confessed = True
                        break
                if confessed:
                    self._emit(
                        time_days=now,
                        machine_id=machine_id,
                        core_id=core_id, kind=EventKind.SCREEN_FAIL,
                        reporter=Reporter.AUTOMATED, detail="confession",
                    )
                    decision = self.policy.decide(core_id, score, confessed=True)
            if decision.action in (Action.QUARANTINE_CORE, Action.QUARANTINE_MACHINE):
                self._quarantine(core_id, now)
                if decision.action is Action.QUARANTINE_MACHINE:
                    if columns is None:
                        machine = self._machine_by_core[core_id]
                        for sibling in machine.cores:  # repro: noqa-PERF002 -- one machine's cores, object substrate
                            self._quarantine(sibling.core_id, now)
                    else:
                        start, stop = columns.machine_core_range(
                            int(columns.core_machine[flat])
                        )
                        for sibling_flat in range(start, stop):
                            self._quarantine(
                                columns.core_id(sibling_flat), now
                            )

    def _is_cee_core(self, core_id: str) -> bool:
        """Is this core mercurial *and* currently defective?  Substrate-
        independent (stale-age semantics match, see
        :meth:`_merc_defective_by_flat`)."""
        if self.columns is None:
            core = self._core_by_id[core_id]
            return core.is_mercurial and core.is_defective_now()
        flat = self.columns.core_index(core_id)
        if flat is None or not self.columns.mercurial[flat]:
            return False
        return self._merc_defective_by_flat(flat)

    def _run_triage(self, now: float, tick: float, new_events: list[CeeEvent]) -> None:
        """Human side: user reports spawn investigations (§6)."""
        columns = self.columns
        for event in new_events:
            if event.kind is not EventKind.USER_REPORT:
                continue
            if event.core_id is None:
                continue
            is_cee = self._is_cee_core(event.core_id)
            if not self.triage.files_suspect(incident_is_cee=is_cee):
                continue
            suspect_id = event.core_id
            if is_cee and not self.triage.attributed_core_is_right():
                # The human fingered a sibling core on the same machine.
                if columns is None:
                    machine = self._machine_by_core[event.core_id]
                    healthy = [
                        c.core_id
                        for c in machine.cores  # repro: noqa-PERF002 -- one machine's cores, object substrate
                        if not c.is_mercurial
                    ]
                else:
                    flat = columns.core_index(event.core_id)
                    assert flat is not None
                    start, stop = columns.machine_core_range(
                        int(columns.core_machine[flat])
                    )
                    healthy = [
                        columns.core_id(sibling_flat)
                        for sibling_flat in range(start, stop)
                        if not columns.mercurial[sibling_flat]
                    ]
                if healthy:
                    suspect_id = healthy[
                        int(self.triage.rng.integers(len(healthy)))
                    ]
            investigation = self.triage.investigate(
                core_id=suspect_id,
                core_is_mercurial=self._is_cee_core(suspect_id),
                started_days=now,
            )
            if investigation.outcome is TriageOutcome.CONFIRMED:
                self.analyzer.tracker.record(
                    suspect_id, now, weight=self.config.policy.quarantine_threshold,
                    source="human-triage",
                )
                self._quarantine(suspect_id, now)

    # -- main loop --------------------------------------------------------------

    def _tick_scalar(self, now: float, tick: float) -> None:
        """The original per-core tick; kept as the measured baseline."""
        for machine, core in self._mercurial:
            if not core.online:
                continue
            if core.age_days < machine.age_days(now):
                core.advance_age(machine.age_days(now) - core.age_days)
            if not core.is_defective_now():
                continue
            self._emit_incidents(machine, core, now, tick)
        self._emit_background(now, tick)
        self._run_screening(now, tick)

    def _refresh_rate(self, index: int, age_days: float) -> None:
        """Recompute one mercurial core's cached (silent, mce) split at
        ``age_days`` — the only moment the simulated core age advances
        on either substrate."""
        if self.columns is None:
            _machine, core = self._mercurial[index]
            core.age_days = age_days
            silent, mce = self._split_rates(core, self.production_mix)
        else:
            assert self._merc_synced_age is not None
            assert self._merc_defect_models is not None
            assert self._merc_envs is not None
            self._merc_synced_age[index] = age_days
            silent, mce = self._split_rate_parts(
                self._merc_defect_models[index],
                self._merc_envs[index],
                age_days,
                self.production_mix,
            )
        self._merc_silent[index] = silent
        self._merc_mce[index] = mce
        self._merc_rate_age[index] = age_days

    def _tick_vectorized(self, now: float, tick: float) -> None:
        """One tick with all stochastic draws batched across the fleet.

        Semantically the same campaign as :meth:`_tick_scalar` — same
        channels, same caps, same attribution probabilities — but the
        Poisson/binomial/attribution sampling happens as numpy array
        draws over the currently-active mercurial cores, and events are
        built positionally and appended in one ``extend``.
        """
        cfg = self.config
        rng = self.rng
        columns = self.columns
        events: list[CeeEvent] = []
        append = events.append

        active: list[int] = []
        if self._n_mercurial:
            if columns is None:
                online = np.fromiter(
                    (core.online for _, core in self._mercurial),
                    bool, self._n_mercurial,
                )
            else:
                online = columns.online[self._merc_flat]
            target = np.maximum(now - self._merc_deploy, 0.0)
            self._merc_age = np.where(
                online, np.maximum(self._merc_age, target), self._merc_age
            )
            ages = self._merc_age
            active_mask = online & (ages >= self._merc_onset)
            stale = active_mask & (
                (ages - self._merc_rate_age >= cfg.rate_refresh_days)
                | ~np.isfinite(self._merc_rate_age)
            )
            for index in np.nonzero(stale)[0].tolist():
                self._refresh_rate(index, float(ages[index]))
            active = np.nonzero(active_mask)[0].tolist()

        cap = max(1, int(cfg.max_surfaced_per_channel_per_day * tick))
        if active:
            idx = np.array(active)
            silent = self._merc_silent[idx]
            mce = self._merc_mce[idx]
            exposed = cfg.exposed_ops_per_day * tick
            n_corruptions = rng.poisson(silent * exposed)
            n_mce = np.minimum(rng.poisson(mce * exposed), cap)
            self.total_corruptions += int(n_corruptions.sum())
            surfaced_selfcheck = np.minimum(
                rng.binomial(n_corruptions, cfg.p_selfcheck_surface), cap
            )
            surfaced_crash = np.minimum(
                rng.binomial(n_corruptions, cfg.p_crash_surface), cap
            )
            surfaced_user = np.minimum(
                rng.binomial(n_corruptions, cfg.p_user_surface), cap
            )
            self.app_visible += int(surfaced_selfcheck.sum())

            def channel_attribution(counts: np.ndarray, p: float) -> np.ndarray:
                total = int(counts.sum())
                return rng.random(total) < p if total else np.empty(0, bool)

            machine_of = self._merc_machine_id
            core_of = self._merc_core_id
            mce_attr = channel_attribution(n_mce, cfg.p_attribute_mce)
            cursor = 0
            for j, count in zip(active, n_mce.tolist()):
                if not count:
                    continue
                for _ in range(count):
                    append(CeeEvent(
                        now, machine_of[j],
                        core_of[j] if mce_attr[cursor] else None,
                        EventKind.MACHINE_CHECK, Reporter.AUTOMATED,
                        None, "mce",
                    ))
                    cursor += 1

            selfcheck_attr = channel_attribution(
                surfaced_selfcheck, cfg.p_attribute_selfcheck
            )
            app_ids = rng.integers(8, size=int(selfcheck_attr.sum())).tolist()
            cursor = 0
            drawn_apps = 0
            for j, count in zip(active, surfaced_selfcheck.tolist()):
                if not count:
                    continue
                for _ in range(count):
                    if selfcheck_attr[cursor]:
                        self.complaints.report(
                            Complaint(
                                time_days=now,
                                application=f"app{app_ids[drawn_apps]}",
                                machine_id=machine_of[j],
                                core_id=core_of[j],
                                detail="self-check failure",
                            )
                        )
                        drawn_apps += 1
                    else:
                        append(CeeEvent(
                            now, machine_of[j], None,
                            EventKind.SELF_CHECK_FAILURE, Reporter.AUTOMATED,
                            None, "self-check failure",
                        ))
                    cursor += 1

            crash_attr = channel_attribution(
                surfaced_crash, cfg.p_attribute_crash
            )
            cursor = 0
            for j, count in zip(active, surfaced_crash.tolist()):
                if not count:
                    continue
                for _ in range(count):
                    append(CeeEvent(
                        now, machine_of[j],
                        core_of[j] if crash_attr[cursor] else None,
                        EventKind.CRASH, Reporter.AUTOMATED,
                        None, "process crash",
                    ))
                    cursor += 1

            user_attr = channel_attribution(
                surfaced_user, cfg.p_attribute_user
            )
            cursor = 0
            for j, count in zip(active, surfaced_user.tolist()):
                if not count:
                    continue
                for _ in range(count):
                    append(CeeEvent(
                        now, machine_of[j],
                        core_of[j] if user_attr[cursor] else None,
                        EventKind.USER_REPORT, Reporter.HUMAN,
                        None, "production incident",
                    ))
                    cursor += 1

        # Background noise (software bugs, misfiled user suspicion).
        n_machines = self.n_machines
        n_bg_crash = int(rng.poisson(cfg.bg_crash_rate * n_machines * tick))
        if n_bg_crash:
            for machine_index in rng.integers(
                n_machines, size=n_bg_crash
            ).tolist():
                append(CeeEvent(
                    now, self._machine_ids[machine_index], None,
                    EventKind.CRASH, Reporter.AUTOMATED,
                    None, "software bug",
                ))
        n_bg_user = int(rng.poisson(cfg.bg_user_rate * n_machines * tick))
        if n_bg_user:
            machine_indices = rng.integers(n_machines, size=n_bg_user).tolist()
            core_picks = rng.random(n_bg_user).tolist()
            user_attr = (rng.random(n_bg_user) < cfg.p_attribute_user).tolist()
            for k, machine_index in enumerate(machine_indices):
                if columns is None:
                    machine = self.machines[machine_index]
                    cores = machine.cores
                    bad_core_id = cores[
                        int(core_picks[k] * len(cores))
                    ].core_id
                else:
                    start, stop = columns.machine_core_range(machine_index)
                    bad_core_id = columns.core_id(
                        start + int(core_picks[k] * (stop - start))
                    )
                append(CeeEvent(
                    now, self._machine_ids[machine_index],
                    bad_core_id if user_attr[k] else None,
                    EventKind.USER_REPORT, Reporter.HUMAN,
                    None, "suspected bad machine",
                ))

        # Screening: cost in bulk, confession draws only for due cores.
        n_cores = self.n_cores
        coverage = self._coverage(now)
        self.screening_ops += (
            n_cores * tick / cfg.online_screen_period_days
            * cfg.online_corpus_ops
        )
        self.screening_ops += (
            n_cores * tick / cfg.offline_screen_period_days
            * cfg.offline_corpus_ops
        )
        if active:
            total_rate = self._merc_silent[idx] + self._merc_mce[idx]
            schedules = (
                (cfg.online_screen_period_days, cfg.online_corpus_ops,
                 1.0, "online screen"),
                (cfg.offline_screen_period_days, cfg.offline_corpus_ops,
                 cfg.offline_env_boost, "offline screen"),
            )
            for period, corpus_ops, env_boost, label in schedules:
                due = rng.random(len(active)) < tick / period
                n_due = int(due.sum())
                if not n_due:
                    continue
                p_detect = 1.0 - np.exp(
                    -total_rate[due] * env_boost * coverage * corpus_ops
                )
                confessed = (rng.random(n_due) < p_detect).tolist()
                for j, hit in zip(idx[due].tolist(), confessed):
                    if not hit:
                        continue
                    append(CeeEvent(
                        now, self._merc_machine_id[j], self._merc_core_id[j],
                        EventKind.SCREEN_FAIL, Reporter.AUTOMATED,
                        None, label,
                    ))

        self.events.extend(events)

    def run(self) -> SimulationResult:
        """Run the whole campaign and return the results bundle."""
        cfg = self.config
        tick_fn = self._tick_vectorized if cfg.vectorized else self._tick_scalar
        now = -cfg.warmup_days
        while now < cfg.horizon_days:
            tick = min(cfg.tick_days, cfg.horizon_days - now)
            now += tick
            events_before = len(self.events)
            tick_fn(now, tick)
            new_events = self.events.tail(events_before)
            if self._obs_on:
                self._m_ticks.inc()
                if new_events:
                    self._m_events.inc(len(new_events))
            self.analyzer.ingest_all(new_events)
            for suspect in self.complaints.quarantine_candidates():
                self.analyzer.tracker.record(
                    suspect.core_id, now, weight=2.0, source="complaint-service"
                )
            self._apply_policy(now)
            self._run_triage(now, tick, new_events)

        if cfg.vectorized:
            # The vectorized scan ages cores in the mirror array; sync
            # the substrate so post-run readers see the same ages the
            # scalar path would have left behind.
            if self.columns is None:
                for index, (_machine, core) in enumerate(self._mercurial):
                    if core.age_days < self._merc_age[index]:
                        core.age_days = float(self._merc_age[index])
            elif self._n_mercurial:
                np.maximum(
                    self.columns.merc_age, self._merc_age,
                    out=self.columns.merc_age,
                )

        return SimulationResult(
            config=cfg,
            events=self.events,
            truth=self.truth,
            n_machines=self.n_machines,
            n_cores=self.n_cores,
            quarantined_cores=set(self.quarantine_day),
            quarantine_day=dict(self.quarantine_day),
            detection_latency_days=dict(self.detection_latency),
            triage=self.triage,
            total_corruptions=self.total_corruptions,
            app_visible_corruptions=self.app_visible,
            screening_ops_spent=self.screening_ops,
        )
