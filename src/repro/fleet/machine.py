"""Machines: a chip, an identity, an age, an operating point."""

from __future__ import annotations

import dataclasses

from repro.fleet.product import CpuProduct
from repro.silicon.core import Chip, Core
from repro.silicon.environment import DvfsTable, NOMINAL, OperatingPoint


@dataclasses.dataclass(slots=True)
class Machine:
    """One server in the fleet.

    Attributes:
        machine_id: stable id, e.g. ``"m00017"``.
        product: the CPU SKU installed.
        chip: the simulated silicon.
        deploy_day: fleet time the machine entered service.
        dvfs: the DVFS ladder this machine runs.
    """

    machine_id: str
    product: CpuProduct
    chip: Chip
    deploy_day: float = 0.0
    dvfs: DvfsTable = dataclasses.field(default_factory=DvfsTable)

    @property
    def cores(self) -> list[Core]:
        return self.chip.cores

    @property
    def core_ids(self) -> list[str]:
        return [core.core_id for core in self.chip.cores]

    @property
    def mercurial_cores(self) -> list[Core]:
        return self.chip.mercurial_cores

    @property
    def is_mercurial(self) -> bool:
        return bool(self.chip.mercurial_cores)

    def age_days(self, now_days: float) -> float:
        return max(0.0, now_days - self.deploy_day)

    def online_cores(self) -> list[Core]:
        return [core for core in self.chip.cores if core.online]

    def set_environment(self, env: OperatingPoint = NOMINAL) -> None:
        self.chip.set_environment(env)

    def advance_to(self, now_days: float) -> None:
        """Advance every core's age to match fleet time."""
        target = self.age_days(now_days)
        for core in self.chip.cores:
            if core.age_days < target:
                core.advance_age(target - core.age_days)
