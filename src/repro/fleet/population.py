"""Fleet population synthesis.

Builds a fleet of machines with ground-truth mercurial cores drawn from
each SKU's prevalence and the defect archetype catalog.  The builder is
fully seeded: the same seed reproduces the same fleet, core for core.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.fleet.columns import FleetColumns, defect_mode_code
from repro.fleet.machine import Machine
from repro.fleet.product import CpuProduct, DEFAULT_PRODUCTS
from repro.silicon.catalog import sample_core_defects
from repro.silicon.core import Chip, Core
from repro.silicon.environment import NOMINAL


@dataclasses.dataclass
class FleetGroundTruth:
    """What the experimenter knows and the detectors must discover."""

    mercurial_core_ids: set[str]
    onset_days_by_core: dict[str, float]

    @property
    def n_mercurial(self) -> int:
        return len(self.mercurial_core_ids)


class FleetBuilder:
    """Seeded generator of machine populations.

    Args:
        products: SKU portfolio.
        weights: machine-count mix over the portfolio.
        seed: master seed; everything derives from it.
        deployment_window: (earliest, latest) deploy day; machines enter
            service uniformly over this window.  Negative values mean
            "deployed before the campaign starts", so the fleet carries
            a realistic age spread (the paper's fleet had machines of
            "various ages", §4).
    """

    def __init__(
        self,
        products: Sequence[CpuProduct] = DEFAULT_PRODUCTS,
        weights: Sequence[float] | None = None,
        seed: int = 0,
        deployment_window: tuple[float, float] = (0.0, 0.0),
        technology_refresh: bool = False,
    ):
        """
        Args:
            technology_refresh: when True, newer products (later in the
                ``products`` list) deploy later in the window, modeling
                an ongoing technology refresh.  Since newer process
                nodes carry higher defect prevalence (§5's scaling
                argument), the fleet's mercurial-core influx *grows*
                over the campaign — one of the drivers behind Fig. 1's
                gradually-increasing automated detection rate.
        """
        if weights is None:
            weights = [1.0] * len(products)
        if len(weights) != len(products):
            raise ValueError("one weight per product")
        if deployment_window[0] > deployment_window[1]:
            raise ValueError("deployment_window must be (earliest, latest)")
        self.products = list(products)
        probabilities = np.array(weights, dtype=float)
        self._probabilities = probabilities / probabilities.sum()
        self.seed = seed
        self.deployment_window = deployment_window
        self.technology_refresh = technology_refresh

    def _population_plan(
        self, n_machines: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Draw every random decision for a fleet as numpy batches.

        The single source of the builder's RNG-consumption order — both
        :meth:`build` and :meth:`build_columns` run exactly this draw
        sequence, which is what makes their outputs bit-identical for
        equal seeds (pinned by the columnar parity tests).

        Returns ``(product_indices, deploy_days, cores_per_machine,
        mercurial_flags, mercurial_seeds)``; seeds come two per
        mercurial core — defect sampling and the core's own
        defect-randomness stream.
        """
        if n_machines < 1:
            raise ValueError("need at least one machine")
        root = np.random.default_rng(self.seed)
        n_products = len(self.products)
        product_indices = root.choice(
            n_products, size=n_machines, p=self._probabilities
        )
        earliest, latest = self.deployment_window
        if latest <= earliest:
            deploy_days = np.full(n_machines, float(earliest))
        elif self.technology_refresh and n_products > 1:
            # Newer SKUs deploy in a window segment shifted later;
            # segments overlap so the transition is gradual.
            span = latest - earliest
            k = product_indices.astype(float)
            segment_start = earliest + span * k / (n_products + 1)
            segment_end = earliest + span * (k + 2) / (n_products + 1)
            deploy_days = root.uniform(segment_start, segment_end)
        else:
            deploy_days = root.uniform(earliest, latest, size=n_machines)

        cores_per_machine = np.array(
            [p.cores_per_machine for p in self.products]
        )[product_indices]
        prevalence = np.array(
            [p.core_prevalence for p in self.products]
        )[product_indices]
        total_cores = int(cores_per_machine.sum())
        mercurial_flags = (
            root.random(total_cores) < np.repeat(prevalence, cores_per_machine)
        )
        n_mercurial = int(mercurial_flags.sum())
        mercurial_seeds = root.integers(2**63, size=(n_mercurial, 2))
        return (
            product_indices,
            deploy_days,
            cores_per_machine,
            mercurial_flags,
            mercurial_seeds,
        )

    def build(self, n_machines: int) -> tuple[list[Machine], FleetGroundTruth]:
        """Create the fleet and its ground truth (vectorized).

        All random decisions — SKU choice, deploy day, per-core
        prevalence draws, defect-sampler seeds — are drawn as numpy
        batches up front, then a single Python pass materializes the
        ``Machine``/``Core`` objects.  Healthy cores get no Generator of
        their own (they never draw), which is what makes 10^5-core
        fleets build in about a second instead of tens of seconds.
        """
        (
            product_indices,
            deploy_days,
            _cores_per_machine,
            mercurial_flag_array,
            mercurial_seed_array,
        ) = self._population_plan(n_machines)
        mercurial_flags = mercurial_flag_array.tolist()
        mercurial_seeds = mercurial_seed_array.tolist()

        machines: list[Machine] = []
        mercurial: set[str] = set()
        onsets: dict[str, float] = {}
        product_index_list = product_indices.tolist()
        deploy_day_list = deploy_days.tolist()
        flat = 0
        drawn = 0
        for index in range(n_machines):
            machine_id = f"m{index:05d}"
            product = self.products[product_index_list[index]]
            cores = []
            for core_index in range(product.cores_per_machine):
                core_id = f"{machine_id}/c{core_index:02d}"
                if mercurial_flags[flat]:
                    sample_seed, core_seed = mercurial_seeds[drawn]
                    drawn += 1
                    defects = sample_core_defects(
                        np.random.default_rng(sample_seed),
                        core_id, onset=product.onset,
                    )
                    mercurial.add(core_id)
                    onsets[core_id] = min(d.aging.onset_days for d in defects)
                    core = Core(
                        core_id, defects=defects, env=NOMINAL,
                        rng=np.random.default_rng(core_seed),
                    )
                else:
                    core = Core(core_id, env=NOMINAL)
                cores.append(core)
                flat += 1
            machines.append(
                Machine(
                    machine_id=machine_id,
                    product=product,
                    chip=Chip(cores),
                    deploy_day=float(deploy_day_list[index]),
                )
            )
        return machines, FleetGroundTruth(mercurial, onsets)

    def build_columns(self, n_machines: int) -> FleetColumns:
        """Create the fleet directly as columns, skipping objects entirely.

        Runs the same :meth:`_population_plan` draw sequence as
        :meth:`build`, so ``build_columns(n).to_machines()`` is
        bit-identical to ``build(n)`` at equal seeds (same ids, defect
        parameters, RNG seeding, deploy days — pinned by tests).  The
        only remaining Python loop is over the *mercurial* population —
        a handful of cores per hundred thousand at paper prevalence —
        which is what pushes fleet synthesis to O(1M) cores/s.
        """
        (
            product_indices,
            deploy_days,
            cores_per_machine,
            mercurial_flags,
            mercurial_seeds,
        ) = self._population_plan(n_machines)

        machine_core_start = np.zeros(n_machines + 1, dtype=np.int64)
        np.cumsum(cores_per_machine, out=machine_core_start[1:])
        total_cores = int(machine_core_start[-1])
        core_machine = np.repeat(
            np.arange(n_machines, dtype=np.int32), cores_per_machine
        )

        merc_core = np.nonzero(mercurial_flags)[0].astype(np.int64)
        n_mercurial = int(merc_core.shape[0])
        if n_mercurial:
            merc_sample_seed = mercurial_seeds[:, 0].astype(np.uint64)
            merc_core_seed = mercurial_seeds[:, 1].astype(np.uint64)
        else:
            merc_sample_seed = np.zeros(0, dtype=np.uint64)
            merc_core_seed = np.zeros(0, dtype=np.uint64)
        merc_onset = np.zeros(n_mercurial, dtype=np.float64)
        merc_defect_mode = np.zeros(n_mercurial, dtype=np.int16)
        merc_defects: list = []
        for index in range(n_mercurial):
            flat = int(merc_core[index])
            machine_index = int(core_machine[flat])
            product = self.products[int(product_indices[machine_index])]
            within = flat - int(machine_core_start[machine_index])
            core_id = f"m{machine_index:05d}/c{within:02d}"
            defects = tuple(
                sample_core_defects(
                    np.random.default_rng(int(merc_sample_seed[index])),
                    core_id, onset=product.onset,
                )
            )
            merc_defects.append(defects)
            merc_onset[index] = min(d.aging.onset_days for d in defects)
            merc_defect_mode[index] = defect_mode_code(defects)

        return FleetColumns(
            products=tuple(self.products),
            machine_product=product_indices.astype(np.int16),
            machine_deploy_day=np.asarray(deploy_days, dtype=np.float64),
            machine_core_start=machine_core_start,
            core_machine=core_machine,
            mercurial=mercurial_flags,
            online=np.ones(total_cores, dtype=bool),
            merc_core=merc_core,
            merc_onset=merc_onset,
            merc_defect_mode=merc_defect_mode,
            merc_age=np.zeros(n_mercurial, dtype=np.float64),
            merc_sample_seed=merc_sample_seed,
            merc_core_seed=merc_core_seed,
            _merc_defects=merc_defects,
        )

    def build_legacy(
        self, n_machines: int
    ) -> tuple[list[Machine], FleetGroundTruth]:
        """The original per-draw builder, kept as the measured serial
        baseline for the ``repro bench`` scorecards (`BENCH_*.json`).

        Statistically equivalent to :meth:`build` but draws from the
        root generator once per decision and allocates a Generator per
        core, so it is O(20x) slower at fleet scale.  Same seed does
        *not* reproduce the same fleet across the two builders — each
        is only self-deterministic.
        """
        if n_machines < 1:
            raise ValueError("need at least one machine")
        root = np.random.default_rng(self.seed)
        machines: list[Machine] = []
        mercurial: set[str] = set()
        onsets: dict[str, float] = {}
        for index in range(n_machines):
            machine_id = f"m{index:05d}"
            product_index = int(
                root.choice(len(self.products), p=self._probabilities)
            )
            product = self.products[product_index]
            earliest, latest = self.deployment_window
            if latest <= earliest:
                deploy_day = earliest
            elif self.technology_refresh and len(self.products) > 1:
                span = latest - earliest
                k = product_index
                n = len(self.products)
                segment_start = earliest + span * k / (n + 1)
                segment_end = earliest + span * (k + 2) / (n + 1)
                deploy_day = float(root.uniform(segment_start, segment_end))
            else:
                deploy_day = float(root.uniform(earliest, latest))
            cores = []
            for core_index in range(product.cores_per_machine):
                core_id = f"{machine_id}/c{core_index:02d}"
                defects = ()
                if root.random() < product.core_prevalence:
                    defect_rng = np.random.default_rng(root.integers(2**63))
                    defects = sample_core_defects(
                        defect_rng, core_id, onset=product.onset
                    )
                    mercurial.add(core_id)
                    onsets[core_id] = min(d.aging.onset_days for d in defects)
                core_rng = np.random.default_rng(root.integers(2**63))
                cores.append(
                    Core(core_id, defects=defects, env=NOMINAL, rng=core_rng)
                )
            machines.append(
                Machine(
                    machine_id=machine_id,
                    product=product,
                    chip=Chip(cores),
                    deploy_day=deploy_day,
                )
            )
        return machines, FleetGroundTruth(mercurial, onsets)


def ground_truth_map(machines: list[Machine]) -> dict[str, bool]:
    """core id → is mercurial, for scoring detectors."""
    truth: dict[str, bool] = {}
    for machine in machines:
        for core in machine.cores:  # repro: noqa-PERF002 -- object-substrate scoring API; columnar callers use FleetColumns.ground_truth_map()
            truth[core.core_id] = core.is_mercurial
    return truth
