"""Fleet population synthesis.

Builds a fleet of machines with ground-truth mercurial cores drawn from
each SKU's prevalence and the defect archetype catalog.  The builder is
fully seeded: the same seed reproduces the same fleet, core for core.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.fleet.machine import Machine
from repro.fleet.product import CpuProduct, DEFAULT_PRODUCTS
from repro.silicon.catalog import sample_core_defects
from repro.silicon.core import Chip, Core
from repro.silicon.environment import NOMINAL


@dataclasses.dataclass
class FleetGroundTruth:
    """What the experimenter knows and the detectors must discover."""

    mercurial_core_ids: set[str]
    onset_days_by_core: dict[str, float]

    @property
    def n_mercurial(self) -> int:
        return len(self.mercurial_core_ids)


class FleetBuilder:
    """Seeded generator of machine populations.

    Args:
        products: SKU portfolio.
        weights: machine-count mix over the portfolio.
        seed: master seed; everything derives from it.
        deployment_window: (earliest, latest) deploy day; machines enter
            service uniformly over this window.  Negative values mean
            "deployed before the campaign starts", so the fleet carries
            a realistic age spread (the paper's fleet had machines of
            "various ages", §4).
    """

    def __init__(
        self,
        products: Sequence[CpuProduct] = DEFAULT_PRODUCTS,
        weights: Sequence[float] | None = None,
        seed: int = 0,
        deployment_window: tuple[float, float] = (0.0, 0.0),
        technology_refresh: bool = False,
    ):
        """
        Args:
            technology_refresh: when True, newer products (later in the
                ``products`` list) deploy later in the window, modeling
                an ongoing technology refresh.  Since newer process
                nodes carry higher defect prevalence (§5's scaling
                argument), the fleet's mercurial-core influx *grows*
                over the campaign — one of the drivers behind Fig. 1's
                gradually-increasing automated detection rate.
        """
        if weights is None:
            weights = [1.0] * len(products)
        if len(weights) != len(products):
            raise ValueError("one weight per product")
        if deployment_window[0] > deployment_window[1]:
            raise ValueError("deployment_window must be (earliest, latest)")
        self.products = list(products)
        probabilities = np.array(weights, dtype=float)
        self._probabilities = probabilities / probabilities.sum()
        self.seed = seed
        self.deployment_window = deployment_window
        self.technology_refresh = technology_refresh

    def build(self, n_machines: int) -> tuple[list[Machine], FleetGroundTruth]:
        """Create the fleet and its ground truth (vectorized).

        All random decisions — SKU choice, deploy day, per-core
        prevalence draws, defect-sampler seeds — are drawn as numpy
        batches up front, then a single Python pass materializes the
        ``Machine``/``Core`` objects.  Healthy cores get no Generator of
        their own (they never draw), which is what makes 10^5-core
        fleets build in about a second instead of tens of seconds.
        """
        if n_machines < 1:
            raise ValueError("need at least one machine")
        root = np.random.default_rng(self.seed)
        n_products = len(self.products)
        product_indices = root.choice(
            n_products, size=n_machines, p=self._probabilities
        )
        earliest, latest = self.deployment_window
        if latest <= earliest:
            deploy_days = np.full(n_machines, float(earliest))
        elif self.technology_refresh and n_products > 1:
            # Newer SKUs deploy in a window segment shifted later;
            # segments overlap so the transition is gradual.
            span = latest - earliest
            k = product_indices.astype(float)
            segment_start = earliest + span * k / (n_products + 1)
            segment_end = earliest + span * (k + 2) / (n_products + 1)
            deploy_days = root.uniform(segment_start, segment_end)
        else:
            deploy_days = root.uniform(earliest, latest, size=n_machines)

        cores_per_machine = np.array(
            [p.cores_per_machine for p in self.products]
        )[product_indices]
        prevalence = np.array(
            [p.core_prevalence for p in self.products]
        )[product_indices]
        total_cores = int(cores_per_machine.sum())
        mercurial_flags = (
            root.random(total_cores) < np.repeat(prevalence, cores_per_machine)
        ).tolist()
        # Two independent seeds per mercurial core: defect sampling and
        # the core's own defect-randomness stream.
        n_mercurial = sum(mercurial_flags)
        mercurial_seeds = root.integers(
            2**63, size=(n_mercurial, 2)
        ).tolist()

        machines: list[Machine] = []
        mercurial: set[str] = set()
        onsets: dict[str, float] = {}
        product_index_list = product_indices.tolist()
        deploy_day_list = deploy_days.tolist()
        flat = 0
        drawn = 0
        for index in range(n_machines):
            machine_id = f"m{index:05d}"
            product = self.products[product_index_list[index]]
            cores = []
            for core_index in range(product.cores_per_machine):
                core_id = f"{machine_id}/c{core_index:02d}"
                if mercurial_flags[flat]:
                    sample_seed, core_seed = mercurial_seeds[drawn]
                    drawn += 1
                    defects = sample_core_defects(
                        np.random.default_rng(sample_seed),
                        core_id, onset=product.onset,
                    )
                    mercurial.add(core_id)
                    onsets[core_id] = min(d.aging.onset_days for d in defects)
                    core = Core(
                        core_id, defects=defects, env=NOMINAL,
                        rng=np.random.default_rng(core_seed),
                    )
                else:
                    core = Core(core_id, env=NOMINAL)
                cores.append(core)
                flat += 1
            machines.append(
                Machine(
                    machine_id=machine_id,
                    product=product,
                    chip=Chip(cores),
                    deploy_day=float(deploy_day_list[index]),
                )
            )
        return machines, FleetGroundTruth(mercurial, onsets)

    def build_legacy(
        self, n_machines: int
    ) -> tuple[list[Machine], FleetGroundTruth]:
        """The original per-draw builder, kept as the measured serial
        baseline for the ``repro bench`` scorecards (`BENCH_*.json`).

        Statistically equivalent to :meth:`build` but draws from the
        root generator once per decision and allocates a Generator per
        core, so it is O(20x) slower at fleet scale.  Same seed does
        *not* reproduce the same fleet across the two builders — each
        is only self-deterministic.
        """
        if n_machines < 1:
            raise ValueError("need at least one machine")
        root = np.random.default_rng(self.seed)
        machines: list[Machine] = []
        mercurial: set[str] = set()
        onsets: dict[str, float] = {}
        for index in range(n_machines):
            machine_id = f"m{index:05d}"
            product_index = int(
                root.choice(len(self.products), p=self._probabilities)
            )
            product = self.products[product_index]
            earliest, latest = self.deployment_window
            if latest <= earliest:
                deploy_day = earliest
            elif self.technology_refresh and len(self.products) > 1:
                span = latest - earliest
                k = product_index
                n = len(self.products)
                segment_start = earliest + span * k / (n + 1)
                segment_end = earliest + span * (k + 2) / (n + 1)
                deploy_day = float(root.uniform(segment_start, segment_end))
            else:
                deploy_day = float(root.uniform(earliest, latest))
            cores = []
            for core_index in range(product.cores_per_machine):
                core_id = f"{machine_id}/c{core_index:02d}"
                defects = ()
                if root.random() < product.core_prevalence:
                    defect_rng = np.random.default_rng(root.integers(2**63))
                    defects = sample_core_defects(
                        defect_rng, core_id, onset=product.onset
                    )
                    mercurial.add(core_id)
                    onsets[core_id] = min(d.aging.onset_days for d in defects)
                core_rng = np.random.default_rng(root.integers(2**63))
                cores.append(
                    Core(core_id, defects=defects, env=NOMINAL, rng=core_rng)
                )
            machines.append(
                Machine(
                    machine_id=machine_id,
                    product=product,
                    chip=Chip(cores),
                    deploy_day=deploy_day,
                )
            )
        return machines, FleetGroundTruth(mercurial, onsets)


def ground_truth_map(machines: list[Machine]) -> dict[str, bool]:
    """core id → is mercurial, for scoring detectors."""
    truth: dict[str, bool] = {}
    for machine in machines:
        for core in machine.cores:
            truth[core.core_id] = core.is_mercurial
    return truth
