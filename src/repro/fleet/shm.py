"""Zero-copy shared-memory snapshots of :class:`FleetColumns`.

The engine's process pool used to hand each worker the whole fleet by
value — at 10^5-10^6 cores that pickle round-trip swamps the work being
fanned out.  A snapshot publishes the fleet's columns once into a
single :class:`multiprocessing.shared_memory.SharedMemory` segment;
what crosses the process boundary per trial is a
:class:`SnapshotHandle` of a few hundred bytes (segment name + field
offset table + the tiny defect sidecar).  Workers attach read-only
views over the same physical pages and materialize no per-core state.

Hand-off protocol:

1. Parent: ``snapshot = publish(columns)`` — one segment named
   ``repro_fleet_<pid>_<counter>``, fields packed at 64-byte-aligned
   offsets in :data:`repro.fleet.columns.SNAPSHOT_FIELDS` order.
2. Parent: pass ``snapshot.handle`` to workers (picklable, tiny).
3. Worker: ``columns = attach(handle)`` — numpy views straight into the
   mapped segment, ``writeable=False``.  A simulator that must mutate
   state calls ``columns.thaw()`` (copies only ``online``/``merc_age``).
4. Parent: ``snapshot.close()`` (idempotent) unmaps and unlinks.  The
   parent owns the segment's lifetime — worker crashes never leak it,
   because the parent's ``finally`` still runs after
   :class:`~repro.engine.runner.WorkerCrashError`.

Attachment never registers with the ``resource_tracker`` (Python 3.13's
``track=False``, emulated by unregistering on older interpreters):
otherwise the first pool worker to exit would unlink the segment out
from under everyone else (bpo-38119).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from multiprocessing import resource_tracker, shared_memory
from typing import Sequence

import numpy as np

from repro.fleet.columns import SNAPSHOT_FIELDS, FleetColumns
from repro.fleet.product import CpuProduct

#: shared-memory segment name prefix (leak checks scan /dev/shm for it)
SEGMENT_PREFIX = "repro_fleet_"

#: field offsets are aligned to this many bytes
_ALIGN = 64

_segment_counter = 0


@dataclasses.dataclass(frozen=True)
class SnapshotField:
    """One column's location inside the segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclasses.dataclass(frozen=True)
class SnapshotHandle:
    """Everything a worker needs to attach (picklable, ~hundreds of bytes
    plus the mercurial-defect sidecar, which is sized by *defective*
    cores — tens of entries per million cores at paper prevalence)."""

    segment_name: str
    fields: tuple[SnapshotField, ...]
    products: tuple[CpuProduct, ...]
    machine_ids_field: SnapshotField
    #: pickled ``(defect tuples, envs)`` for the mercurial population,
    #: so attached columns never resample and analytic rates match the
    #: publisher's bit for bit
    defect_sidecar: bytes

    @property
    def snapshot_bytes(self) -> int:
        """Total payload size of the published arrays."""
        last = max(
            (*self.fields, self.machine_ids_field),
            key=lambda field: field.offset,
        )
        dtype = np.dtype(last.dtype)
        count = int(np.prod(last.shape, dtype=np.int64)) if last.shape else 1
        return last.offset + dtype.itemsize * count


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _unique_name() -> str:
    global _segment_counter
    _segment_counter += 1
    return f"{SEGMENT_PREFIX}{os.getpid()}_{_segment_counter}"


class FleetSnapshot:
    """A published fleet segment; the parent-side owner of its lifetime."""

    def __init__(self, handle: SnapshotHandle, shm: shared_memory.SharedMemory):
        self.handle = handle
        self._shm: shared_memory.SharedMemory | None = shm

    @property
    def name(self) -> str:
        return self.handle.segment_name

    @property
    def nbytes(self) -> int:
        return self.handle.snapshot_bytes

    def close(self) -> None:
        """Unmap and unlink the segment.  Idempotent: double-close is a
        no-op, so error paths can close unconditionally."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        shm.close()
        # An attach() in this same process may have unregistered the
        # segment (the pre-3.13 tracker workaround); re-register so the
        # unlink's own unregister stays balanced.  The tracker cache is
        # a set, so this is idempotent when no attach happened.
        try:
            resource_tracker.register(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "FleetSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


def publish(columns: FleetColumns) -> FleetSnapshot:
    """Copy a fleet's columns into one shared-memory segment.

    The publish itself is the only copy in the whole hand-off; attaching
    is zero-copy.  Columns adapted from arbitrary object fleets must
    follow the generated core-id pattern (they do for all builder
    fleets) — explicit per-core id lists are refused rather than
    silently exploded into a giant string column.
    """
    if columns._core_ids is not None:
        raise ValueError(
            "cannot snapshot a fleet with non-standard core ids; "
            "only pattern-derived ids are supported in shared memory"
        )
    arrays: list[tuple[str, np.ndarray]] = [
        (name, np.ascontiguousarray(getattr(columns, name)))
        for name in SNAPSHOT_FIELDS
    ]
    arrays.append(("machine_ids", np.ascontiguousarray(columns.machine_ids)))

    offset = 0
    placed: list[SnapshotField] = []
    for name, array in arrays:
        offset = _align(offset)
        placed.append(
            SnapshotField(name, array.dtype.str, array.shape, offset)
        )
        offset += array.nbytes
    total = max(offset, 1)

    shm = shared_memory.SharedMemory(
        create=True, size=total, name=_unique_name()
    )
    for field, (_name, array) in zip(placed, arrays):
        if array.nbytes == 0:
            continue
        view = np.ndarray(
            array.shape, dtype=array.dtype,
            buffer=shm.buf, offset=field.offset,
        )
        view[...] = array

    sidecar = pickle.dumps(
        (
            [columns.merc_defects(i) for i in range(columns.n_mercurial)],
            [columns.merc_env(i) for i in range(columns.n_mercurial)],
        ),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    handle = SnapshotHandle(
        segment_name=shm.name,
        fields=tuple(placed[:-1]),
        products=tuple(columns.products),
        machine_ids_field=placed[-1],
        defect_sidecar=sidecar,
    )
    return FleetSnapshot(handle, shm)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach without resource-tracker registration (see module doc)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        shm = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
        return shm


class AttachedFleet:
    """A worker-side view: read-only columns + the mapping keeping them
    alive.  Close only after the columns (and any ``thaw()`` copies that
    still share immutable columns) are done."""

    def __init__(self, columns: FleetColumns, shm: shared_memory.SharedMemory):
        self.columns = columns
        self._shm: shared_memory.SharedMemory | None = shm

    def close(self) -> None:
        """Unmap this process's view (never unlinks — the parent owns
        the segment).  Idempotent."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        self.columns = None  # type: ignore[assignment]
        shm.close()

    def __enter__(self) -> FleetColumns:
        return self.columns

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def attach(handle: SnapshotHandle) -> AttachedFleet:
    """Map a published snapshot; returns read-only zero-copy columns."""
    shm = _attach_segment(handle.segment_name)

    def view(field: SnapshotField) -> np.ndarray:
        array = np.ndarray(
            field.shape, dtype=np.dtype(field.dtype),
            buffer=shm.buf, offset=field.offset,
        )
        array.flags.writeable = False
        return array

    columns_kwargs = {field.name: view(field) for field in handle.fields}
    merc_defects, merc_env = pickle.loads(handle.defect_sidecar)
    columns = FleetColumns(
        products=handle.products,
        machine_ids=view(handle.machine_ids_field),
        _merc_defects=list(merc_defects),
        _merc_env=list(merc_env),
        **columns_kwargs,
    )
    return AttachedFleet(columns, shm)


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of live ``/dev/shm`` segments with our prefix (leak check)."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return sorted(
        name for name in os.listdir(shm_dir) if name.startswith(prefix)
    )


__all__ = [
    "AttachedFleet",
    "FleetSnapshot",
    "SEGMENT_PREFIX",
    "SnapshotField",
    "SnapshotHandle",
    "attach",
    "leaked_segments",
    "publish",
]
