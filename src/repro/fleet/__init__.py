"""Fleet modeling: machines, populations, scheduling, simulation.

This package is the substitute for the production fleet the paper
observed (see DESIGN.md): seeded population synthesis over a CPU-SKU
portfolio, a core-slot scheduler that feels quarantine's capacity cost,
machine lifecycle (burn-in / RMA), and the discrete-event simulator
whose output reproduces Fig. 1.
"""

from repro.fleet.columns import (
    DEFECT_MODE_CODES,
    FleetColumns,
    SNAPSHOT_FIELDS,
    defect_mode_code,
)
from repro.fleet.lifecycle import BurnInReport, RmaTracker, burn_in
from repro.fleet.machine import Machine
from repro.fleet.population import FleetBuilder, FleetGroundTruth, ground_truth_map
from repro.fleet.product import (
    CpuProduct,
    DEFAULT_PRODUCTS,
    blended_machine_prevalence,
)
from repro.fleet.scheduler import (
    FleetScheduler,
    Placement,
    ScheduleStats,
    Task,
)
from repro.fleet.telemetry import (
    CrashDump,
    CrashDumpAnalyzer,
    HealthSummary,
    MceLogAnalyzer,
    MceRecord,
    fleet_health_dashboard,
)
from repro.fleet.simulator import (
    FleetSimulator,
    SimulationResult,
    SimulatorConfig,
)

__all__ = [
    "DEFECT_MODE_CODES",
    "FleetColumns",
    "SNAPSHOT_FIELDS",
    "defect_mode_code",
    "BurnInReport",
    "RmaTracker",
    "burn_in",
    "Machine",
    "FleetBuilder",
    "FleetGroundTruth",
    "ground_truth_map",
    "CpuProduct",
    "DEFAULT_PRODUCTS",
    "blended_machine_prevalence",
    "FleetScheduler",
    "Placement",
    "ScheduleStats",
    "Task",
    "CrashDump",
    "CrashDumpAnalyzer",
    "HealthSummary",
    "MceLogAnalyzer",
    "MceRecord",
    "fleet_health_dashboard",
    "FleetSimulator",
    "SimulationResult",
    "SimulatorConfig",
]
