"""Merkle-tree anti-entropy: find divergent ranges, repair from quorum.

Scrubbing walks keys one window at a time; anti-entropy answers the
complementary question — "are these replicas *identical*?" — in O(1)
when they are (one root comparison) and O(divergent buckets) when they
are not.  Digests here are host-side (the DMA/checksum offload engine
real anti-entropy uses, with its own ECC — not the suspect core), so
the tree describes the at-rest bytes exactly.  When roots differ the
sync descends into the mismatching buckets, majority-votes each
divergent key preferring frame-CRC-valid copies, repairs the minority
through the verified repair channel, and emits a ``SCRUB_MISMATCH``
suspicion event against the divergent replica's core — the core that
wrote (or rotted) those bytes.
"""

from __future__ import annotations

import dataclasses

from repro.core.events import EventKind
from repro.storage.replica import StorageReplica
from repro.storage.store import ReplicatedKVStore
from repro.storage.wal import host_crc64


@dataclasses.dataclass(frozen=True)
class MerkleTree:
    """A two-level Merkle summary: per-bucket digests and their root."""

    buckets: tuple[int, ...]
    root: int


def bucket_of(key: str, n_buckets: int) -> int:
    """Deterministic key → bucket placement (shared by all replicas)."""
    return host_crc64(key.encode()) % n_buckets


def build_merkle_tree(table: dict[str, bytes], n_buckets: int = 16) -> MerkleTree:
    """Digest a replica's at-rest table into a fixed-fanout Merkle tree."""
    payloads: list[bytearray] = [bytearray() for _ in range(n_buckets)]
    for key in sorted(table):
        value = table[key]
        payloads[bucket_of(key, n_buckets)].extend(
            key.encode() + b"\x00" + value + b"\x01"
        )
    buckets = tuple(host_crc64(bytes(payload)) for payload in payloads)
    root = host_crc64(
        b"".join(digest.to_bytes(8, "little") for digest in buckets)
    )
    return MerkleTree(buckets=buckets, root=root)


@dataclasses.dataclass
class SyncReport:
    """What one anti-entropy round observed."""

    root_match: bool = False
    divergent_buckets: int = 0
    keys_compared: int = 0
    keys_repaired: int = 0
    backfills: int = 0
    unresolved: int = 0


class AntiEntropy:
    """Periodic replica synchronisation for a replicated store.

    Args:
        store: the store to synchronise; its ``emit``/``on_repair``
            hooks receive divergence events and repair notifications.
        n_buckets: Merkle fanout (coarser = cheaper roots, finer =
            smaller repair ranges).
    """

    def __init__(self, store: ReplicatedKVStore, n_buckets: int = 16):
        self.store = store
        self.n_buckets = n_buckets
        self.rounds = 0

    def _sync_key(
        self, key: str, replicas: list[StorageReplica], report: SyncReport
    ) -> None:
        holders = [r for r in replicas if key in r.table]
        absent = [r for r in replicas if key not in r.table]
        candidates: list[tuple[StorageReplica, bytes, int]] = []
        for replica in holders:
            value = replica.table[key]
            crc = replica.meta_crc[key]
            candidates.append((replica, value, crc))
        report.keys_compared += 1
        # Prefer frame-CRC-valid copies as vote material; corrupted
        # copies cannot outvote intact ones however many there are.
        valid = [c for c in candidates if host_crc64(c[1]) == c[2]]
        pool = valid if valid else candidates
        counts: dict[bytes, int] = {}
        for _, value, _ in pool:
            counts[value] = counts.get(value, 0) + 1
        majority_value, _ = max(counts.items(), key=lambda kv: (kv[1], kv[0]))
        if not valid:
            report.unresolved += 1
            return
        majority_crc = next(
            crc for _, value, crc in valid if value == majority_value
        )
        for replica, value, _ in candidates:
            if value != majority_value:
                self.store.emit(
                    replica.core_id, EventKind.SCRUB_MISMATCH,
                    "anti-entropy found this replica divergent",
                )
                replica.repair(key, majority_value, majority_crc)
                self.store.on_repair(replica.replica_id, key)
                report.keys_repaired += 1
        for replica in absent:
            replica.repair(key, majority_value, majority_crc)
            self.store.on_repair(replica.replica_id, key)
            report.backfills += 1

    def sync_round(self) -> SyncReport:
        """Compare all online replicas and repair every divergence."""
        report = SyncReport()
        self.rounds += 1
        replicas = [r for r in self.store.replicas if r.available]
        if len(replicas) < 2:
            report.root_match = True
            return report
        trees = [build_merkle_tree(r.table, self.n_buckets) for r in replicas]
        if len({tree.root for tree in trees}) == 1:
            report.root_match = True  # O(1) fast path: all identical
            return report
        for bucket in range(self.n_buckets):
            digests = {tree.buckets[bucket] for tree in trees}
            if len(digests) == 1:
                continue
            report.divergent_buckets += 1
            bucket_keys = sorted({
                key
                for replica in replicas
                for key in replica.table
                if bucket_of(key, self.n_buckets) == bucket
            })
            for key in bucket_keys:
                self._sync_key(key, replicas, report)
        return report


__all__ = ["AntiEntropy", "MerkleTree", "SyncReport", "build_merkle_tree"]
