"""Storage campaigns: write/read traffic + chaos + a durability scorecard.

The serving campaign (PR 1) asked "does a hardened RPC service keep its
SLOs on mercurial cores?".  This campaign asks the durable-path version
of the same question: drive a write/read stream against a
:class:`~repro.storage.store.ReplicatedKVStore` whose replicas and
coordinators run on fleet cores, inject the shared
:class:`~repro.chaos.ChaosSchedule` faults (late-onset defect
activation, replica crashes with torn WAL tails, machine-check bursts,
write bursts), and score the configuration on the metrics a storage
owner has SLOs for:

- **durable-corruption escape rate** — OK reads that returned bytes
  differing from what the client wrote (ground truth the store never
  sees);
- **unrecoverable-loss rate** — keys for which *no* replica holds a
  copy that decrypts to the written value at campaign end (the §5.2
  "data loss ... only detected at decryption time" hazard);
- **repair latency** — ticks between a replica copy first diverging
  from ground truth and a verified repair landing;
- **write amplification** — physical bytes moved through cores per
  logical byte written (the cost side of the WAL + quorum + scrub +
  anti-entropy defence stack).

Storage integrity signals feed the same detection → quarantine loop as
serving: ``WAL_CORRUPTION``, ``SCRUB_MISMATCH``, ``QUORUM_MISMATCH``
and ``ENCRYPT_VERIFY_FAIL`` events raise per-core suspicion with the
weights from :mod:`repro.detection.weights`, and the policy pulls the
defective core out of the replica set mid-campaign.  The baseline shows
the dual failure: with no integrity signals, the only evidence is the
chaos machine-check burst on a *healthy* replica — so the unprotected
fleet tends to quarantine the noisy innocent core while the silent
corruptor keeps serving.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.chaos import ChaosKind, ChaosSchedule
from repro.obs.forensics import detection_latency_summary
from repro.core.confidence import SuspicionTracker
from repro.core.events import CeeEvent, EventKind, EventLog, Reporter
from repro.core.policy import Action, PolicyConfig, QuarantinePolicy
from repro.detection.signals import SignalAnalyzer, SignalAnalyzerConfig
from repro.detection.weights import default_weights
from repro.fleet.machine import Machine
from repro.fleet.product import CpuProduct
from repro.fleet.scheduler import FleetScheduler, Task
from repro.silicon.aging import AgingProfile
from repro.silicon.core import Chip, Core
from repro.silicon.defects import SboxPermutationDefect, StuckBitDefect
from repro.silicon.errors import CoreOfflineError, MachineCheckError
from repro.silicon.units import FunctionalUnit, Op
from repro.storage.antientropy import AntiEntropy
from repro.storage.replica import StorageReplica
from repro.storage.scrub import Scrubber
from repro.storage.store import ReplicatedKVStore, StoreConfig
from repro.workloads.crypto import BLOCK_BYTES

MS_PER_DAY = 86_400_000.0

#: the storage-originated suspicion signals (satellite of the E16 loop)
STORAGE_EVENT_KINDS = (
    EventKind.WAL_CORRUPTION,
    EventKind.SCRUB_MISMATCH,
    EventKind.QUORUM_MISMATCH,
    EventKind.ENCRYPT_VERIFY_FAIL,
)


@dataclasses.dataclass(frozen=True)
class StorageProtections:
    """Which layers of the durable-path defence stack are enabled."""

    name: str
    store: StoreConfig = dataclasses.field(default_factory=StoreConfig)
    use_wal: bool = True
    verify_wal_on_replay: bool = True
    scrub: bool = True
    antientropy: bool = True
    #: False = ablation where storage event kinds count as generic
    #: weight-1.0 evidence instead of their dedicated weights
    dedicated_weights: bool = True

    @classmethod
    def protected(cls) -> "StorageProtections":
        """The full stack: WAL + quorum + scrub + anti-entropy."""
        return cls(name="protected")

    @classmethod
    def unprotected(cls) -> "StorageProtections":
        """The baseline: replicated, encrypted, and entirely trusting —
        no WAL, read-one with decrypt on the replica's own core, no
        background repair, no integrity signals."""
        return cls(
            name="unprotected",
            store=StoreConfig.unprotected(),
            use_wal=False,
            verify_wal_on_replay=False,
            scrub=False,
            antientropy=False,
            dedicated_weights=False,
        )

    @classmethod
    def quorum_only(cls) -> "StorageProtections":
        """Write/read quorums and encrypt-verify, but no background
        repair — read-repair is the only healing."""
        return cls(name="quorum-only", scrub=False, antientropy=False)

    @classmethod
    def no_encrypt_verify(cls) -> "StorageProtections":
        """Full stack minus the decrypt-elsewhere check.  The quorum
        layers cannot save a write the coordinator mis-encrypted: every
        replica holds the *same* wrong ciphertext, the vote agrees on
        garbage, and the §5.2 unrecoverable loss comes back."""
        return cls(
            name="no-encrypt-verify",
            store=StoreConfig(encrypt_verify=False),
        )

    @classmethod
    def generic_weights(cls) -> "StorageProtections":
        """Full stack, but storage signals weighted like any other
        event — the quarantine-acceleration ablation."""
        return cls(name="generic-weights", dedicated_weights=False)


@dataclasses.dataclass
class StorageCampaignConfig:
    """Traffic, maintenance cadence and policy knobs for one campaign."""

    ticks: int = 600
    tick_ms: float = 2.0
    writes_per_tick: float = 1.0
    reads_per_tick: float = 2.0
    payload_blocks: int = 1
    scrub_interval: int = 25
    scrub_keys_per_round: int = 16
    antientropy_interval: int = 40
    compact_interval: int = 50
    policy: PolicyConfig = dataclasses.field(default_factory=PolicyConfig)

    @property
    def payload_bytes(self) -> int:
        return self.payload_blocks * BLOCK_BYTES


@dataclasses.dataclass
class StorageScorecard:
    """What one storage configuration achieved under chaos."""

    name: str
    ticks: int = 0
    writes_attempted: int = 0
    keys_written: int = 0
    write_failures: int = 0
    reads_attempted: int = 0
    reads_ok: int = 0
    read_failures: int = 0
    durable_escapes: int = 0
    corrupt_reads_caught: int = 0
    quorum_mismatches: int = 0
    encrypt_attempts: int = 0
    encrypt_verify_failures: int = 0
    scrub_mismatches: int = 0
    repairs_total: int = 0
    backfills: int = 0
    repair_latency_ms: list[float] = dataclasses.field(default_factory=list)
    wal_corrupt_records: int = 0
    wal_torn_tails: int = 0
    wal_records_truncated: int = 0
    unrecoverable_keys: int = 0
    lasting_divergence: int = 0
    machine_checks: int = 0
    logical_bytes: int = 0
    physical_bytes: int = 0
    quarantine_tick: dict[str, int] = dataclasses.field(default_factory=dict)
    #: ground truth: first tick each core demonstrably corrupted
    first_corrupt_tick: dict[str, int] = dataclasses.field(default_factory=dict)
    #: per-incident stage latencies (see repro.obs.forensics)
    detection_latency_ms: dict = dataclasses.field(default_factory=dict)

    @property
    def escape_rate(self) -> float:
        """Silently-wrong OK reads per OK read (the headline SLO)."""
        if self.reads_ok == 0:
            return 0.0
        return self.durable_escapes / self.reads_ok

    @property
    def unrecoverable_loss_rate(self) -> float:
        """Fraction of acked keys no replica can restore to truth."""
        if self.keys_written == 0:
            return 0.0
        return self.unrecoverable_keys / self.keys_written

    @property
    def read_availability(self) -> float:
        if self.reads_attempted == 0:
            return 1.0
        return self.reads_ok / self.reads_attempted

    @property
    def write_amplification(self) -> float:
        """Physical bytes through cores per logical byte acked."""
        if self.logical_bytes == 0:
            return 0.0
        return self.physical_bytes / self.logical_bytes

    @property
    def mean_repair_latency_ms(self) -> float:
        if not self.repair_latency_ms:
            return 0.0
        return float(np.mean(np.array(self.repair_latency_ms)))

    @property
    def p99_repair_latency_ms(self) -> float:
        if not self.repair_latency_ms:
            return 0.0
        return float(np.percentile(np.array(self.repair_latency_ms), 99.0))

    def summary_row(self) -> list[str]:
        return [
            self.name,
            f"{self.escape_rate:.2%}",
            f"{self.unrecoverable_loss_rate:.2%}",
            f"{self.read_availability:.2%}",
            f"{self.write_amplification:.2f}x",
            f"{self.mean_repair_latency_ms:.0f}",
            str(self.corrupt_reads_caught + self.scrub_mismatches),
            str(self.repairs_total),
            str(len(self.quarantine_tick)),
        ]

    def to_json(self) -> dict:
        """Machine-readable durability scorecard (CI asserts on these)."""
        return {
            "name": self.name,
            "ticks": self.ticks,
            "writes_attempted": self.writes_attempted,
            "keys_written": self.keys_written,
            "write_failures": self.write_failures,
            "reads_attempted": self.reads_attempted,
            "reads_ok": self.reads_ok,
            "read_failures": self.read_failures,
            "escape_rate": self.escape_rate,
            "durable_escapes": self.durable_escapes,
            "unrecoverable_loss_rate": self.unrecoverable_loss_rate,
            "unrecoverable_keys": self.unrecoverable_keys,
            "read_availability": self.read_availability,
            "write_amplification": self.write_amplification,
            "corrupt_reads_caught": self.corrupt_reads_caught,
            "quorum_mismatches": self.quorum_mismatches,
            "encrypt_attempts": self.encrypt_attempts,
            "encrypt_verify_failures": self.encrypt_verify_failures,
            "scrub_mismatches": self.scrub_mismatches,
            "repairs_total": self.repairs_total,
            "backfills": self.backfills,
            "mean_repair_latency_ms": self.mean_repair_latency_ms,
            "p99_repair_latency_ms": self.p99_repair_latency_ms,
            "wal_corrupt_records": self.wal_corrupt_records,
            "wal_torn_tails": self.wal_torn_tails,
            "wal_records_truncated": self.wal_records_truncated,
            "lasting_divergence": self.lasting_divergence,
            "machine_checks": self.machine_checks,
            "logical_bytes": self.logical_bytes,
            "physical_bytes": self.physical_bytes,
            "quarantine_tick": dict(sorted(self.quarantine_tick.items())),
            "first_corrupt_tick": dict(sorted(self.first_corrupt_tick.items())),
            "detection_latency_ms": self.detection_latency_ms,
        }


class StorageCampaign:
    """One protection stack, one fleet, one chaos script, one scorecard."""

    def __init__(
        self,
        machines: list[Machine],
        protections: StorageProtections | None = None,
        config: StorageCampaignConfig | None = None,
        chaos: ChaosSchedule | None = None,
        seed: int = 0,
    ):
        self.machines = machines
        self.protections = protections or StorageProtections.protected()
        self.config = config or StorageCampaignConfig()
        self.chaos = chaos or ChaosSchedule()
        self.chaos.reset()
        self.rng = np.random.default_rng(seed)

        self.events = EventLog()
        self._core_by_id: dict[str, Core] = {}
        self._machine_by_core: dict[str, str] = {}
        for machine in machines:
            for core in machine.cores:
                self._core_by_id[core.core_id] = core
                self._machine_by_core[core.core_id] = machine.machine_id

        weights = default_weights()
        if not self.protections.dedicated_weights:
            for kind in STORAGE_EVENT_KINDS:
                weights[kind] = 1.0
        self.analyzer = SignalAnalyzer(
            tracker=SuspicionTracker(),
            config=SignalAnalyzerConfig(weights=weights),
        )
        self.policy = QuarantinePolicy(
            self.config.policy, fleet_cores=len(self._core_by_id)
        )

        # The client's own core is the honest endpoint of the
        # end-to-end argument: protected reads decrypt here, and the
        # final recoverability audit decrypts here.
        self.client_core = Core(
            "client/c00", rng=np.random.default_rng(seed + 1)
        )

        self.scheduler = FleetScheduler(machines)
        self._replica_counter = 0
        replicas = self._place_initial_replicas()
        # Key-wrap duty is colocated with storage: the replica cores
        # themselves take turns encrypting, so the defective core
        # regularly handles encryption — the §5.2 setup, where the
        # machine doing the key-wrap was the mercurial one.
        coordinators = [replica.core for replica in replicas]
        self.store = ReplicatedKVStore(
            replicas,
            coordinators,
            self.client_core,
            config=self.protections.store,
            emit=self._emit,
            on_repair=self._on_repair,
        )
        self.scrubber = (
            Scrubber(self.store, self.config.scrub_keys_per_round)
            if self.protections.scrub else None
        )
        self.antientropy = (
            AntiEntropy(self.store) if self.protections.antientropy else None
        )

        self.scorecard = StorageScorecard(name=self.protections.name)
        self.truth: dict[str, bytes] = {}
        self._truth_payload: dict[str, bytes] = {}
        self._keys: list[str] = []
        self._key_seq = 0
        self._tick = 0
        self._divergent_since: dict[tuple[str, str], int] = {}
        self._restore_at: dict[str, int] = {}
        self._burst_multiplier = 1.0
        self._burst_until = -1
        self._events_seen = 0
        self._retired_physical_bytes = 0

        # Ground-truth corruption watcher — unconditional, so the
        # scorecard is byte-identical with obs on or off.
        self._corruption_base = {
            core_id: core.corruptions_induced
            for core_id, core in self._core_by_id.items()
        }
        self._first_corrupt_tick: dict[str, int] = {}

        self._obs_on = obs.enabled()
        if self._obs_on:
            obs.tracer.set_clock(lambda: self._tick * self.config.tick_ms)
            self._m_writes = obs.metrics.counter(
                "storage_writes_total",
                help="client writes, by quorum outcome", unit="writes",
            )
            self._m_reads = obs.metrics.counter(
                "storage_reads_total",
                help="client reads, by quorum outcome", unit="reads",
            )
            self._m_escapes = obs.metrics.counter(
                "storage_durable_escapes_total",
                help="OK reads returning bytes differing from what the "
                     "client wrote (ground truth)",
                unit="reads",
            )
            self._m_repairs = obs.metrics.counter(
                "storage_repairs_total",
                help="verified read-repair / backfill writes", unit="repairs",
            )
            self._h_repair_latency = obs.metrics.histogram(
                "storage_repair_latency_ms",
                help="replica divergence to verified repair (simulated)",
                unit="ms",
                buckets=(10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0),
            )
            self._m_quarantines = obs.metrics.counter(
                "storage_quarantines_total",
                help="cores pulled from the replica set by the campaign "
                     "policy loop",
                unit="cores",
            )

    # -- placement -----------------------------------------------------

    def _make_replica(self, core: Core) -> StorageReplica:
        replica = StorageReplica(
            f"store/{self._replica_counter}",
            core,
            use_wal=self.protections.use_wal,
            verify_wal_on_replay=self.protections.verify_wal_on_replay,
        )
        self._replica_counter += 1
        return replica

    def _place_initial_replicas(self) -> list[StorageReplica]:
        n = self.protections.store.n_replicas
        tasks = [Task(f"store/{i}", op_mix={Op.COPY: 1.0}) for i in range(n)]
        placements, _ = self.scheduler.schedule(tasks)
        if len(placements) < n:
            raise ValueError("fleet too small for the replica count")
        return [
            self._make_replica(self._core_by_id[p.core_id])
            for p in placements
        ]

    def _replace_replica(self, index: int) -> None:
        """Re-place one replica off its (now quarantined) core.

        The replacement starts empty on a spare core; anti-entropy
        backfills it from the healthy quorum on its next sync round —
        quarantine costs capacity, not data.
        """
        old = self.store.replicas[index]
        occupied = {r.core_id for r in self.store.replicas}
        quarantined = set(self.scorecard.quarantine_tick)
        placements, _ = self.scheduler.schedule(
            [Task(old.replica_id, op_mix={Op.COPY: 1.0})],
            exclude_core_ids=occupied | quarantined,
        )
        if not placements:
            return  # degraded: run with fewer replicas
        self._retired_physical_bytes += old.stats.physical_bytes
        for (replica_id, key) in list(self._divergent_since):
            if replica_id == old.replica_id:
                del self._divergent_since[(replica_id, key)]
        new_core = self._core_by_id[placements[0].core_id]
        self.store.replicas[index] = self._make_replica(new_core)

    # -- event plumbing ------------------------------------------------

    def _emit(self, core_id: str, kind: EventKind, detail: str) -> None:
        self.events.append(
            CeeEvent(
                time_days=(self._tick * self.config.tick_ms) / MS_PER_DAY,
                machine_id=self._machine_by_core.get(
                    core_id, core_id.rsplit("/", 1)[0]
                ),
                core_id=core_id,
                kind=kind,
                reporter=Reporter.AUTOMATED,
                application="storage",
                detail=detail,
            )
        )

    def _on_repair(self, replica_id: str, key: str) -> None:
        self.scorecard.repairs_total += 1
        if self._obs_on:
            self._m_repairs.inc()
        since = self._divergent_since.pop((replica_id, key), None)
        if since is not None:
            latency_ms = (self._tick - since) * self.config.tick_ms
            self.scorecard.repair_latency_ms.append(latency_ms)
            if self._obs_on:
                self._h_repair_latency.observe(latency_ms)

    # -- chaos ---------------------------------------------------------

    def _replica_on(self, core_id: str) -> StorageReplica | None:
        for replica in self.store.replicas:
            if replica.core_id == core_id:
                return replica
        return None

    def _apply_chaos(self, tick: int) -> None:
        for action in self.chaos.due(tick):
            if action.kind is ChaosKind.ACTIVATE_DEFECT:
                core = self._core_by_id.get(action.core_id)
                if core is not None:
                    core.advance_age(action.magnitude)
            elif action.kind is ChaosKind.CRASH_CORE:
                core = self._core_by_id.get(action.core_id)
                if core is None:
                    continue
                replica = self._replica_on(action.core_id)
                if replica is not None and replica.wal is not None:
                    # A crash interrupts the in-flight append.
                    if replica.wal.tear_tail():
                        self.scorecard.wal_torn_tails += 1
                core.set_online(False)
                self._restore_at[action.core_id] = (
                    tick + max(1, action.duration_ticks)
                )
            elif action.kind is ChaosKind.MACHINE_CHECK_BURST:
                replica = self._replica_on(action.core_id)
                if replica is not None:
                    replica.forced_mce_remaining += int(action.magnitude)
            elif action.kind is ChaosKind.TRAFFIC_BURST:
                self._burst_multiplier = action.magnitude
                self._burst_until = tick + max(1, action.duration_ticks)

        for core_id, restore_tick in list(self._restore_at.items()):
            if tick >= restore_tick:
                del self._restore_at[core_id]
                if core_id in self.scorecard.quarantine_tick:
                    continue
                self._core_by_id[core_id].set_online(True)
                replica = self._replica_on(core_id)
                if replica is not None:
                    self._recover_replica(replica)
        if tick >= self._burst_until:
            self._burst_multiplier = 1.0

    def _recover_replica(self, replica: StorageReplica) -> None:
        """Crash recovery: replay the WAL, surface what it caught."""
        wal_len = len(replica.wal) if replica.wal is not None else 0
        report = replica.crash_recover()
        if report is None:
            return
        card = self.scorecard
        card.wal_corrupt_records += len(report.corrupt_records)
        if report.truncated_from is not None:
            card.wal_records_truncated += wal_len - report.truncated_from
        for index in report.corrupt_records:
            # A bad CRC on the *final* record is the expected torn-tail
            # crash artifact, not evidence against the core; anything
            # earlier was corrupted in flight on the write path.
            if index == wal_len - 1:
                continue
            self._emit(
                replica.core_id, EventKind.WAL_CORRUPTION,
                "WAL record failed frame CRC at recovery replay",
            )

    # -- traffic -------------------------------------------------------

    def _do_writes(self) -> None:
        card = self.scorecard
        arrivals = int(self.rng.poisson(
            self.config.writes_per_tick * self._burst_multiplier
        ))
        for _ in range(arrivals):
            key = f"k{self._key_seq:06d}"
            self._key_seq += 1
            value = self.rng.bytes(self.config.payload_bytes)
            card.writes_attempted += 1
            result = self.store.put(key, value)
            card.encrypt_attempts += result.encrypt_attempts
            card.encrypt_verify_failures += result.encrypt_verify_failures
            card.machine_checks += result.machine_checks
            if self._obs_on:
                self._m_writes.inc(status="ok" if result.ok else "fail")
            if result.ok:
                card.keys_written += 1
                card.logical_bytes += len(value)
                self.truth[key] = value
                self._truth_payload[key] = result.ciphertext
                self._keys.append(key)
            else:
                card.write_failures += 1

    def _do_reads(self) -> None:
        card = self.scorecard
        if not self._keys:
            return
        arrivals = int(self.rng.poisson(
            self.config.reads_per_tick * self._burst_multiplier
        ))
        for _ in range(arrivals):
            key = self._keys[int(self.rng.integers(len(self._keys)))]
            card.reads_attempted += 1
            result = self.store.get(key)
            card.corrupt_reads_caught += (
                result.corrupt_rejected + result.quorum_mismatches
            )
            card.quorum_mismatches += result.quorum_mismatches
            card.machine_checks += result.machine_checks
            if self._obs_on:
                self._m_reads.inc(status="ok" if result.ok else "fail")
            if result.ok:
                card.reads_ok += 1
                # Ground truth the store never sees: did the client get
                # back the bytes it wrote?
                if result.value != self.truth[key]:
                    card.durable_escapes += 1
                    if self._obs_on:
                        self._m_escapes.inc()
            else:
                card.read_failures += 1

    # -- maintenance ---------------------------------------------------

    def _maintenance(self, tick: int) -> None:
        card = self.scorecard
        cfg = self.config
        if (
            self.scrubber is not None
            and tick % cfg.scrub_interval == cfg.scrub_interval - 1
        ):
            report = self.scrubber.scrub_round()
            card.scrub_mismatches += report.mismatches
            card.backfills += report.backfills
            card.machine_checks += report.machine_checks
        if (
            self.antientropy is not None
            and tick % cfg.antientropy_interval == cfg.antientropy_interval - 1
        ):
            report = self.antientropy.sync_round()
            card.backfills += report.backfills
        if tick % cfg.compact_interval == cfg.compact_interval - 1:
            replicas = self.store.replicas
            replica = replicas[(tick // cfg.compact_interval) % len(replicas)]
            if replica.available:
                try:
                    replica.compact()
                except (CoreOfflineError, MachineCheckError):
                    pass

    def _monitor(self, tick: int) -> None:
        """Ground-truth divergence watcher (repair-latency clock).

        Pure experimenter instrumentation: compares each replica's
        at-rest bytes against the acked ciphertext without touching any
        core, so it perturbs nothing the store could observe.  A copy
        is divergent when its bytes differ from the acked ciphertext
        *or* when an online replica is missing the key entirely (lost
        WAL tail, post-crash amnesia, a freshly-placed replacement).
        """
        for replica in self.store.replicas:
            if not replica.available:
                continue
            for key, expected in self._truth_payload.items():
                payload = replica.table.get(key)
                if payload == expected:
                    self._divergent_since.pop(
                        (replica.replica_id, key), None
                    )
                    continue
                self._divergent_since.setdefault(
                    (replica.replica_id, key), tick
                )

    # -- detection loop ------------------------------------------------

    def _run_policy(self, tick: int) -> None:
        new_events = self.events.tail(self._events_seen)
        self._events_seen = len(self.events)
        self.analyzer.ingest_all(new_events)

        now_days = (tick * self.config.tick_ms) / MS_PER_DAY
        for core_id, score in self.analyzer.suspects(
            now_days, threshold=self.config.policy.retest_threshold
        ):
            if (
                core_id not in self._core_by_id
                or core_id in self.scorecard.quarantine_tick
            ):
                continue
            decision = self.policy.decide(core_id, score, confessed=False)
            if decision.action in (
                Action.QUARANTINE_CORE, Action.QUARANTINE_MACHINE
            ):
                self._quarantine(core_id, tick)
                if decision.action is Action.QUARANTINE_MACHINE:
                    machine_id = self._machine_by_core[core_id]
                    for sibling_id, owner in self._machine_by_core.items():
                        if owner == machine_id:
                            self._quarantine(sibling_id, tick)

        for index, replica in enumerate(self.store.replicas):
            if replica.core_id in self.scorecard.quarantine_tick:
                self._replace_replica(index)

    def _quarantine(self, core_id: str, tick: int) -> None:
        if core_id in self.scorecard.quarantine_tick:
            return
        self._core_by_id[core_id].set_online(False)
        self.scorecard.quarantine_tick[core_id] = tick
        self._restore_at.pop(core_id, None)
        if self._obs_on:
            self._m_quarantines.inc()
            with obs.tracer.span(
                "storage.quarantine", core_id=core_id, tick=tick
            ):
                pass

    # -- the main loop -------------------------------------------------

    def run(self) -> StorageScorecard:
        for tick in range(self.config.ticks):
            self._tick = tick
            self._apply_chaos(tick)
            self._do_writes()
            self._do_reads()
            self._maintenance(tick)
            self._monitor(tick)
            self._note_corruptions(tick)
            self._run_policy(tick)
        self._finalize()
        return self.scorecard

    def _note_corruptions(self, tick: int) -> None:
        """Record the first tick each core's corruption counter moved.

        Unconditional ground-truth bookkeeping (see the serving
        campaign's twin): feeds the forensics timeline and the
        scorecard's detection-latency fields.
        """
        base = self._corruption_base
        for core_id, core in self._core_by_id.items():
            induced = core.corruptions_induced
            if induced != base[core_id]:
                base[core_id] = induced
                if core_id not in self._first_corrupt_tick:
                    self._first_corrupt_tick[core_id] = tick

    def _finalize(self) -> None:
        card = self.scorecard
        card.ticks = self.config.ticks
        card.lasting_divergence = len(self._divergent_since)
        card.physical_bytes = self._retired_physical_bytes + sum(
            replica.stats.physical_bytes for replica in self.store.replicas
        )
        card.first_corrupt_tick = dict(sorted(self._first_corrupt_tick.items()))
        card.detection_latency_ms = detection_latency_summary(
            self._first_corrupt_tick, card.quarantine_tick,
            list(self.events), self.config.tick_ms,
        )
        self._audit_recoverability()

    def _audit_recoverability(self) -> None:
        """The end-of-campaign oracle: can each acked key be restored?

        A key is *unrecoverable* when no replica holds bytes that
        decrypt (on the pristine client core) to the value the client
        wrote — the §5.2 incident, where corruption during encryption
        is only discovered at decryption time, after every good copy is
        gone.
        """
        card = self.scorecard
        encrypt = self.protections.store.encrypt
        for key in self._keys:
            truth = self.truth[key]
            recovered = False
            decrypted_cache: dict[bytes, bytes | None] = {}
            for replica in self.store.replicas:
                payload = replica.table.get(key)
                if payload is None:
                    continue
                if not encrypt:
                    value = payload
                elif payload in decrypted_cache:
                    value = decrypted_cache[payload]
                else:
                    value = self.store._decrypt(self.client_core, payload)
                    decrypted_cache[payload] = value
                if value == truth:
                    recovered = True
                    break
            if not recovered:
                card.unrecoverable_keys += 1


# ---------------------------------------------------------------------
# fleet construction for storage experiments
# ---------------------------------------------------------------------

def build_storage_fleet(
    n_machines: int = 4,
    cores_per_machine: int = 4,
    bad_machine: int = 0,
    bad_core: int = 1,
    base_rate: float = 0.05,
    onset_days: float = 0.0,
    seed: int = 7,
) -> tuple[list[Machine], str]:
    """A small fleet with exactly one (possibly late-onset) bad core.

    The bad core carries *two* paper archetypes at once: a stuck bit on
    the load/store unit (corrupts every byte it moves — WAL appends,
    memtable installs, compaction rewrites, served reads) and the
    self-inverting S-box permutation (mis-encrypts when its turn in the
    coordinator rotation comes up, yet decrypts its own ciphertext
    perfectly — the §5.2 trap that defeats same-core verification).
    Returns (machines, bad core id).
    """
    product = CpuProduct(
        vendor="sim", sku=f"storage-{cores_per_machine}c",
        cores_per_machine=cores_per_machine, core_prevalence=0.0,
    )
    root = np.random.default_rng(seed)
    machines: list[Machine] = []
    bad_core_id = ""
    for m in range(n_machines):
        machine_id = f"m{m:05d}"
        cores = []
        for c in range(cores_per_machine):
            core_id = f"{machine_id}/c{c:02d}"
            defects = ()
            if m == bad_machine and c == bad_core:
                bad_core_id = core_id
                aging = AgingProfile(onset_days=onset_days)
                defects = (
                    StuckBitDefect(
                        f"defect/{core_id}/stuck",
                        bit=21,
                        base_rate=base_rate,
                        unit=FunctionalUnit.LOAD_STORE,
                        aging=aging,
                    ),
                    SboxPermutationDefect(
                        f"defect/{core_id}/sbox",
                        aging=aging,
                    ),
                )
            cores.append(
                Core(
                    core_id,
                    defects=defects,
                    rng=np.random.default_rng(root.integers(2**63)),
                )
            )
        machines.append(
            Machine(machine_id=machine_id, product=product, chip=Chip(cores))
        )
    return machines, bad_core_id


__all__ = [
    "STORAGE_EVENT_KINDS",
    "StorageCampaign",
    "StorageCampaignConfig",
    "StorageProtections",
    "StorageScorecard",
    "build_storage_fleet",
]
