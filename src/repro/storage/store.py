"""The replicated KV store: quorum writes, voted reads, encrypt-verify.

The write path mirrors the paper's §5.2/§7 hazards end to end:

1. the coordinator encrypts the value on a *fleet* core (rotating, so
   sometimes the mercurial one) — the §5.2 incident is "encryption on
   a mercurial core made data permanently unrecoverable";
2. with ``encrypt_verify`` on, the ciphertext must decrypt correctly
   on a *second* core before it is acked, and a disagreement is
   arbitrated on a *third* core so the blame lands on the actual
   miscomputing core (encryptor vs verifier) — this single check is
   what turns the unrecoverable incident into a retried write;
3. the framed record (host-side CRC sealed before any storage core
   touches the bytes) is written to ``n_replicas`` replicas and acked
   at ``write_quorum``.

The read path votes: every online replica serves its copy through its
own core, responses failing their frame CRC are discarded, the
majority value wins at ``read_quorum``, and divergent or missing
replicas are read-repaired from the majority.  Each divergence becomes
a ``QUORUM_MISMATCH`` suspicion event against the minority replica's
core — replication doubles as free CEE detection (§7's dual-execution
observation).

The unprotected baseline (every flag off) reads one replica and
decrypts on that replica's own core: corrupted-but-well-formed records
come back as silent wrong answers.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

from repro import obs
from repro.core.events import EventKind
from repro.silicon.core import Core
from repro.silicon.errors import CoreOfflineError, MachineCheckError
from repro.storage.replica import StorageReplica
from repro.storage.wal import host_crc64
from repro.workloads.crypto import BLOCK_BYTES, decrypt_block, encrypt_block, expand_key

#: emit(core_id, kind, detail) — the campaign stamps time and machine
EmitFn = Callable[[str, EventKind, str], None]
#: on_repair(replica_id, key) — ground-truth repair-latency accounting
RepairFn = Callable[[str, str], None]


@dataclasses.dataclass(frozen=True)
class StoreConfig:
    """Which durable-path defences the store runs (the E16 knob).

    Values must be a whole number of AES blocks (16 bytes); the store
    deliberately uses un-padded block encryption so a corrupted record
    stays *well-formed* — the paper's silent hazard — instead of
    tripping a padding error by accident.
    """

    n_replicas: int = 3
    write_quorum: int = 2
    read_quorum: int = 2
    encrypt: bool = True
    encrypt_verify: bool = True
    encrypt_retries: int = 3
    vote_reads: bool = True
    verify_read_crc: bool = True
    key: bytes = bytes(range(16))

    def __post_init__(self) -> None:
        if not 1 <= self.write_quorum <= self.n_replicas:
            raise ValueError("write_quorum must be in [1, n_replicas]")
        if not 1 <= self.read_quorum <= self.n_replicas:
            raise ValueError("read_quorum must be in [1, n_replicas]")

    @classmethod
    def unprotected(cls) -> "StoreConfig":
        """The baseline: replicate, but trust every core."""
        return cls(
            write_quorum=1, read_quorum=1, encrypt_verify=False,
            vote_reads=False, verify_read_crc=False,
        )


@dataclasses.dataclass
class WriteResult:
    """Outcome of one quorum write attempt."""

    ok: bool
    acks: int = 0
    encrypt_attempts: int = 0
    encrypt_verify_failures: int = 0
    machine_checks: int = 0
    ciphertext: bytes | None = None


@dataclasses.dataclass
class ReadResult:
    """Outcome of one read: value, vote tallies, repairs triggered."""

    ok: bool
    value: bytes | None = None
    responses: int = 0
    corrupt_rejected: int = 0
    quorum_mismatches: int = 0
    repaired_replicas: list[str] = dataclasses.field(default_factory=list)
    machine_checks: int = 0


class ReplicatedKVStore:
    """Quorum-replicated KV store whose every byte crosses fleet silicon.

    Args:
        replicas: the storage replicas (placed on fleet cores).
        coordinator_cores: rotation pool for coordinator-side work
            (encryption and its verify/arbitrate decryptions).
        trusted_core: the client's own core — the honest endpoint the
            end-to-end argument requires; protected reads decrypt here.
        emit: event sink ``(core_id, kind, detail)``; the campaign
            stamps time/machine and feeds the detection loop.
        on_repair: callback ``(replica_id, key)`` fired whenever a
            replica is repaired (read-repair, scrub, anti-entropy).
    """

    def __init__(
        self,
        replicas: Sequence[StorageReplica],
        coordinator_cores: Sequence[Core],
        trusted_core: Core,
        config: StoreConfig | None = None,
        emit: EmitFn | None = None,
        on_repair: RepairFn | None = None,
    ):
        self.config = config or StoreConfig()
        if len(replicas) != self.config.n_replicas:
            raise ValueError(
                f"expected {self.config.n_replicas} replicas, "
                f"got {len(replicas)}"
            )
        if not coordinator_cores:
            raise ValueError("need at least one coordinator core")
        self.replicas = list(replicas)
        self.coordinator_cores = list(coordinator_cores)
        self.trusted_core = trusted_core
        self.emit = emit or (lambda core_id, kind, detail: None)
        self.on_repair = on_repair or (lambda replica_id, key: None)
        self.seqno = 0
        self._coord_cursor = 0
        self._read_cursor = 0
        # cached so the per-op quorum paths pay one attribute test when off
        self._obs_on = obs.enabled()

    # -- coordinator-side crypto ---------------------------------------

    def _ecb(self, core: Core, data: bytes, encrypt: bool) -> bytes:
        """Un-padded ECB over whole blocks, all on ``core``."""
        if len(data) % BLOCK_BYTES:
            raise ValueError("values must be whole AES blocks")
        round_keys = expand_key(core, self.config.key)
        out = bytearray()
        for start in range(0, len(data), BLOCK_BYTES):
            block = data[start:start + BLOCK_BYTES]
            if encrypt:
                out.extend(encrypt_block(core, block, round_keys))
            else:
                out.extend(decrypt_block(core, block, round_keys))
        return bytes(out)

    def _next_coordinator(
        self, exclude: set[str] | None = None
    ) -> Core | None:
        """Next online coordinator core, skipping ``exclude``."""
        exclude = exclude or set()
        n = len(self.coordinator_cores)
        for offset in range(n):
            core = self.coordinator_cores[(self._coord_cursor + offset) % n]
            if core.online and core.core_id not in exclude:
                self._coord_cursor = (self._coord_cursor + offset + 1) % n
                return core
        return None

    def _encrypt_verified(self, value: bytes, result: WriteResult) -> bytes | None:
        """Encrypt on a fleet core; require decrypt-elsewhere before ack.

        The §5.2 defence: a ciphertext nobody else can decrypt must
        never be replicated.  On disagreement a third core arbitrates
        so the ``ENCRYPT_VERIFY_FAIL`` event blames the core that
        actually miscomputed (the self-inverting AES defect makes the
        encryptor's own decrypt useless as a check).
        """
        for _ in range(self.config.encrypt_retries + 1):
            enc_core = self._next_coordinator()
            if enc_core is None:
                return None
            result.encrypt_attempts += 1
            try:
                ciphertext = self._ecb(enc_core, value, encrypt=True)
            except MachineCheckError:
                result.machine_checks += 1
                self.emit(enc_core.core_id, EventKind.MACHINE_CHECK,
                          "mce during encrypt")
                continue
            if not self.config.encrypt_verify:
                return ciphertext
            ver_core = self._next_coordinator(exclude={enc_core.core_id})
            if ver_core is None:
                return ciphertext  # degraded: nobody left to check
            try:
                verified = self._ecb(ver_core, ciphertext, encrypt=False)
            except MachineCheckError:
                result.machine_checks += 1
                self.emit(ver_core.core_id, EventKind.MACHINE_CHECK,
                          "mce during encrypt-verify")
                continue
            if verified == value:
                return ciphertext
            result.encrypt_verify_failures += 1
            arb_core = self._next_coordinator(
                exclude={enc_core.core_id, ver_core.core_id}
            )
            if arb_core is not None:
                try:
                    arbitrated = self._ecb(arb_core, ciphertext, encrypt=False)
                except MachineCheckError:
                    arbitrated = None
                if arbitrated == value:
                    # Ciphertext is fine; the *verifier* miscomputed.
                    self.emit(
                        ver_core.core_id, EventKind.ENCRYPT_VERIFY_FAIL,
                        "verify decrypt diverged; arbiter sided with "
                        "the encryptor",
                    )
                    return ciphertext
            self.emit(
                enc_core.core_id, EventKind.ENCRYPT_VERIFY_FAIL,
                "ciphertext failed decrypt-on-a-second-core check",
            )
            # Retry on the advanced rotation: a different encryptor.
        return None

    # -- writes --------------------------------------------------------

    def put(self, key: str, value: bytes) -> WriteResult:
        """Quorum write of one (optionally encrypted) framed record."""
        if not self._obs_on:
            return self._put_inner(key, value)
        with obs.tracer.span("storage.put", key=key) as sp:
            result = self._put_inner(key, value)
            sp.attrs["ok"] = result.ok
            sp.attrs["acks"] = result.acks
            return result

    def _put_inner(self, key: str, value: bytes) -> WriteResult:
        result = WriteResult(ok=False)
        if self.config.encrypt:
            payload = self._encrypt_verified(value, result)
            if payload is None:
                return result
        else:
            payload = value
        result.ciphertext = payload
        crc = host_crc64(payload)
        self.seqno += 1
        for replica in self.replicas:
            try:
                replica.put(self.seqno, key, payload, crc)
                result.acks += 1
            except CoreOfflineError:
                continue
            except MachineCheckError:
                result.machine_checks += 1
                self.emit(replica.core_id, EventKind.MACHINE_CHECK,
                          "mce during replica store")
        result.ok = result.acks >= self.config.write_quorum
        return result

    # -- reads ---------------------------------------------------------

    def _decrypt(self, core: Core, payload: bytes) -> bytes | None:
        try:
            return self._ecb(core, payload, encrypt=False)
        except MachineCheckError:
            return None

    def get(self, key: str) -> ReadResult:
        """Voted quorum read (protected) or read-one (baseline)."""
        if not self._obs_on:
            return self._get_inner(key)
        with obs.tracer.span("storage.get", key=key) as sp:
            result = self._get_inner(key)
            sp.attrs["ok"] = result.ok
            sp.attrs["mismatches"] = result.quorum_mismatches
            return result

    def _get_inner(self, key: str) -> ReadResult:
        if self.config.vote_reads:
            return self._get_voted(key)
        return self._get_unchecked(key)

    def _get_unchecked(self, key: str) -> ReadResult:
        """Baseline: one replica, no checksum, decrypt on *its* core."""
        result = ReadResult(ok=False)
        n = len(self.replicas)
        for offset in range(n):
            replica = self.replicas[(self._read_cursor + offset) % n]
            if not replica.available:
                continue
            self._read_cursor = (self._read_cursor + offset + 1) % n
            try:
                response = replica.get(key)
            except (CoreOfflineError, MachineCheckError):
                return result
            if response is None:
                return result
            payload, _ = response
            result.responses = 1
            value = (
                self._decrypt(replica.core, payload)
                if self.config.encrypt else payload
            )
            if value is None:
                return result
            result.value = value
            result.ok = True
            return result
        return result

    def _get_voted(self, key: str) -> ReadResult:
        result = ReadResult(ok=False)
        responses: list[tuple[StorageReplica, bytes, int]] = []
        missing: list[StorageReplica] = []
        for replica in self.replicas:
            if not replica.available:
                continue
            try:
                response = replica.get(key)
            except CoreOfflineError:
                continue
            except MachineCheckError:
                result.machine_checks += 1
                self.emit(replica.core_id, EventKind.MACHINE_CHECK,
                          "mce during replica read")
                continue
            if response is None:
                missing.append(replica)
                continue
            payload, crc = response
            if self.config.verify_read_crc and host_crc64(payload) != crc:
                result.corrupt_rejected += 1
                self.emit(
                    replica.core_id, EventKind.QUORUM_MISMATCH,
                    "read response failed its frame CRC",
                )
                continue
            responses.append((replica, payload, crc))
        result.responses = len(responses)
        if not responses:
            return result
        counts: dict[bytes, int] = {}
        for _, payload, _ in responses:
            counts[payload] = counts.get(payload, 0) + 1
        majority_payload, majority_count = max(
            counts.items(), key=lambda kv: (kv[1], kv[0])
        )
        if majority_count < self.config.read_quorum:
            return result
        majority_crc = next(
            crc for _, payload, crc in responses
            if payload == majority_payload
        )
        for replica, payload, _ in responses:
            if payload != majority_payload:
                result.quorum_mismatches += 1
                self.emit(
                    replica.core_id, EventKind.QUORUM_MISMATCH,
                    "replica response diverged from the voted majority",
                )
                replica.repair(key, majority_payload, majority_crc)
                result.repaired_replicas.append(replica.replica_id)
                self.on_repair(replica.replica_id, key)
        for replica in missing:
            replica.repair(key, majority_payload, majority_crc)
            result.repaired_replicas.append(replica.replica_id)
            self.on_repair(replica.replica_id, key)
        value = (
            self._decrypt(self.trusted_core, majority_payload)
            if self.config.encrypt else majority_payload
        )
        if value is None:
            return result
        result.value = value
        result.ok = True
        return result


__all__ = ["ReadResult", "ReplicatedKVStore", "StoreConfig", "WriteResult"]
