"""CRC-framed write-ahead log with replay-time verification.

The paper's durable-path incidents (§5.2 "corruption of the database
index") motivate the framing rule every production log implements: the
record's checksum is computed over the bytes the *framing layer*
intends to write, before they cross the (possibly mercurial) replica
core on their way to media.  At replay, each frame is re-checked
host-side (the replay CRC engine models a DMA descriptor checksum — a
fixed-function block with its own ECC, not the defective core); a
mismatching or torn record truncates the log from that point, exactly
like a real WAL recovery, and surfaces as a ``WAL_CORRUPTION``
suspicion event against the core that wrote the frame.

The unverified mode (``verify_on_replay=False``) is the E16 baseline:
replay applies whatever bytes are in the log, and a corrupt frame
silently poisons the rebuilt memtable.
"""

from __future__ import annotations

import dataclasses

from repro.workloads.base import CoreLike
from repro.workloads.copying import copy_bytes
from repro.workloads.hashing import CRC64_TABLE


def host_crc64(data: bytes) -> int:
    """CRC-64 computed host-side (trusted framing/DMA engine)."""
    crc = 0
    for byte in data:
        index = ((crc >> 56) ^ byte) & 0xFF
        crc = ((crc << 8) & 0xFFFFFFFFFFFFFFFF) ^ CRC64_TABLE[index]
    return crc


@dataclasses.dataclass(frozen=True, slots=True)
class WalRecord:
    """One framed log record.

    ``value`` holds the bytes as they landed on media (after crossing
    the replica core); ``crc`` seals the bytes the framing layer
    *intended* to write — the same frame checksum the store attached
    to the record, so a replayed table is indistinguishable from a
    freshly-written one — and replay can tell the difference.
    """

    seqno: int
    key: str
    value: bytes
    crc: int

    @property
    def intact(self) -> bool:
        return host_crc64(self.value) == self.crc


@dataclasses.dataclass(slots=True)
class ReplayReport:
    """What one recovery replay observed."""

    applied: int = 0
    corrupt_records: list[int] = dataclasses.field(default_factory=list)
    truncated_from: int | None = None

    @property
    def clean(self) -> bool:
        return self.truncated_from is None and not self.corrupt_records


class WriteAheadLog:
    """An append-only record log written through one replica core.

    Args:
        core: the replica's fleet core; every appended value crosses
            its copy datapath before landing in the log.
        verify_on_replay: check frame CRCs at replay and truncate at
            the first bad record (the protected configuration).
    """

    def __init__(self, core: CoreLike, verify_on_replay: bool = True):
        self.core = core
        self.verify_on_replay = verify_on_replay
        self.records: list[WalRecord] = []
        self.bytes_written = 0
        self.records_truncated = 0

    def __len__(self) -> int:
        return len(self.records)

    def append(self, seqno: int, key: str, value: bytes, crc: int) -> WalRecord:
        """Append one record; the value crosses the core on its way in.

        ``crc`` is the frame checksum the coordinator sealed over the
        intended value bytes *before* they touched any storage core.

        Raises:
            CoreOfflineError: the replica core is down.
            MachineCheckError: a fail-noisy defect fired mid-append.
        """
        landed = copy_bytes(self.core, value)
        record = WalRecord(seqno, key, landed, crc)
        self.records.append(record)
        self.bytes_written += len(value)
        return record

    def tear_tail(self) -> bool:
        """Simulate a crash mid-append: the last record loses its tail.

        Returns True if a record was torn.  A torn record's CRC no
        longer matches, so verified replay truncates it — the classic
        torn-write recovery path.
        """
        if not self.records:
            return False
        last = self.records[-1]
        if len(last.value) <= 1:
            return False
        self.records[-1] = WalRecord(
            last.seqno, last.key, last.value[: len(last.value) // 2], last.crc
        )
        return True

    def replay(self) -> tuple[dict[str, tuple[bytes, int]], ReplayReport]:
        """Rebuild the memtable from the log.

        Returns ``(table, report)`` where ``table`` maps key →
        ``(value bytes, frame crc)``.  With verification on, the first
        corrupt record truncates the log from that point (better a
        bounded, *known* data loss than silently applying corruption);
        with verification off, corrupt records are applied blindly and
        only ``report.corrupt_records`` (ground truth the baseline
        never consults) remembers them.
        """
        table: dict[str, tuple[bytes, int]] = {}
        report = ReplayReport()
        for index, record in enumerate(self.records):
            if not record.intact:
                report.corrupt_records.append(index)
                if self.verify_on_replay:
                    report.truncated_from = index
                    self.records_truncated += len(self.records) - index
                    del self.records[index:]
                    break
            table[record.key] = (record.value, record.crc)
            report.applied += 1
        return table, report


__all__ = [
    "ReplayReport",
    "WalRecord",
    "WriteAheadLog",
    "host_crc64",
]
