"""Background scrubber: compare replica checksums, repair the minority.

Scrubbing is the at-rest counterpart of voted reads.  Each round walks
a window of the key space; every replica computes the checksum of its
at-rest copy *on its own core* (``StorageReplica.checksum``), and the
checksums are majority-voted.  The double-edged design is deliberate:
a defective core implicates itself whether it corrupted the stored
bytes (checksum of wrong bytes diverges) or miscomputes the checksum
of good bytes (same divergence, repair is then a harmless rewrite).
Either way the minority replica's core earns a ``SCRUB_MISMATCH``
suspicion event and the record is repaired from a frame-CRC-verified
majority copy — the paper's §6 point that background screening must
run continuously because defects age in.
"""

from __future__ import annotations

import dataclasses

from repro.core.events import EventKind
from repro.silicon.errors import CoreOfflineError, MachineCheckError
from repro.storage.replica import StorageReplica
from repro.storage.store import ReplicatedKVStore
from repro.storage.wal import host_crc64


@dataclasses.dataclass
class ScrubReport:
    """What one scrub round observed."""

    keys_scrubbed: int = 0
    mismatches: int = 0
    repairs: int = 0
    backfills: int = 0
    unresolved: int = 0
    machine_checks: int = 0


class Scrubber:
    """Rotating-window checksum scrubber over a replicated store.

    Args:
        store: the store whose replicas are scrubbed; its ``emit`` and
            ``on_repair`` hooks receive mismatch events and repairs.
        keys_per_round: scrub window size (bounds per-round core work,
            like production scrub-rate throttles).
    """

    def __init__(self, store: ReplicatedKVStore, keys_per_round: int = 16):
        self.store = store
        self.keys_per_round = keys_per_round
        self._cursor = 0
        self.rounds = 0

    def _key_window(self) -> list[str]:
        universe = sorted(
            {key for replica in self.store.replicas for key in replica.table}
        )
        if not universe:
            return []
        window = [
            universe[(self._cursor + offset) % len(universe)]
            for offset in range(min(self.keys_per_round, len(universe)))
        ]
        self._cursor = (self._cursor + len(window)) % len(universe)
        return window

    def _repair_source(
        self, key: str, holders: list[StorageReplica]
    ) -> tuple[bytes, int] | None:
        """A frame-CRC-verified copy from a majority replica.

        The repair read crosses the source replica's core, so the
        fetched bytes are themselves re-verified against the frame CRC
        before being trusted as repair material.
        """
        for replica in holders:
            try:
                response = replica.get(key)
            except (CoreOfflineError, MachineCheckError):
                continue
            if response is None:
                continue
            payload, crc = response
            if host_crc64(payload) == crc:
                return payload, crc
        return None

    def scrub_round(self) -> ScrubReport:
        """Scrub one window of keys across all online replicas."""
        report = ScrubReport()
        self.rounds += 1
        for key in self._key_window():
            checksums: list[tuple[StorageReplica, int]] = []
            missing: list[StorageReplica] = []
            for replica in self.store.replicas:
                if not replica.available:
                    continue
                try:
                    checksum = replica.checksum(key)
                except CoreOfflineError:
                    continue
                except MachineCheckError:
                    report.machine_checks += 1
                    self.store.emit(
                        replica.core_id, EventKind.MACHINE_CHECK,
                        "mce during scrub checksum",
                    )
                    continue
                if checksum is None:
                    missing.append(replica)
                else:
                    checksums.append((replica, checksum))
            if len(checksums) < 2:
                continue
            report.keys_scrubbed += 1
            counts: dict[int, int] = {}
            for _, checksum in checksums:
                counts[checksum] = counts.get(checksum, 0) + 1
            majority_sum, majority_count = max(
                counts.items(), key=lambda kv: (kv[1], kv[0])
            )
            if majority_count <= len(checksums) - majority_count:
                report.unresolved += 1
                continue
            minority = [r for r, c in checksums if c != majority_sum]
            holders = [r for r, c in checksums if c == majority_sum]
            if not minority and not missing:
                continue
            source = self._repair_source(key, holders)
            for replica in minority:
                report.mismatches += 1
                self.store.emit(
                    replica.core_id, EventKind.SCRUB_MISMATCH,
                    "scrub checksum diverged from the replica majority",
                )
                if source is not None:
                    replica.repair(key, source[0], source[1])
                    self.store.on_repair(replica.replica_id, key)
                    report.repairs += 1
                else:
                    report.unresolved += 1
            for replica in missing:
                if source is not None:
                    replica.repair(key, source[0], source[1])
                    self.store.on_repair(replica.replica_id, key)
                    report.backfills += 1
        return report


__all__ = ["ScrubReport", "Scrubber"]
