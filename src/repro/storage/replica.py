"""One storage replica: memtable + WAL + compaction on a fleet core.

Every byte a replica durably holds crossed its core's copy datapath at
least once (WAL append, memtable install, compaction rewrite), so a
mercurial core corrupts well-formed records exactly where a real one
would: in flight on the write path, or at rest when compaction rewrites
a previously-good record.  Frame checksums ride in protected metadata
(small, ECC/DMA-guarded in real systems) and are *not* subject to core
defects — the interesting failures are in the data bytes, as in the
paper's database-index incident.
"""

from __future__ import annotations

import dataclasses

from repro.silicon.core import Core
from repro.silicon.errors import MachineCheckError
from repro.storage.wal import WriteAheadLog, ReplayReport
from repro.workloads.copying import copy_bytes
from repro.workloads.hashing import crc64


@dataclasses.dataclass
class ReplicaStats:
    """Per-replica accounting (physical bytes drive write amplification)."""

    puts: int = 0
    gets: int = 0
    physical_bytes: int = 0
    compactions: int = 0
    repairs_applied: int = 0
    recoveries: int = 0


class StorageReplica:
    """A storage server process pinned to one fleet core.

    Args:
        replica_id: stable id, e.g. ``"store/0"``.
        core: the fleet core all data movement runs through.
        use_wal: keep a write-ahead log (the unprotected baseline
            skips it — and pays for that at crash recovery).
        verify_wal_on_replay: CRC-check frames during recovery replay.
    """

    def __init__(
        self,
        replica_id: str,
        core: Core,
        use_wal: bool = True,
        verify_wal_on_replay: bool = True,
    ):
        self.replica_id = replica_id
        self.core = core
        self.use_wal = use_wal
        self.wal = (
            WriteAheadLog(core, verify_on_replay=verify_wal_on_replay)
            if use_wal else None
        )
        self.table: dict[str, bytes] = {}
        self.meta_crc: dict[str, int] = {}
        #: chaos hook: force the next N operations to raise machine checks
        self.forced_mce_remaining = 0
        self.stats = ReplicaStats()

    @property
    def core_id(self) -> str:
        return self.core.core_id

    @property
    def available(self) -> bool:
        return self.core.online

    def _maybe_forced_mce(self, op: str) -> None:
        if self.forced_mce_remaining > 0:
            self.forced_mce_remaining -= 1
            raise MachineCheckError(
                self.core_id, op, "chaos-injected machine check"
            )

    def put(self, seqno: int, key: str, value: bytes, crc: int) -> None:
        """Durably store one record (WAL append, then memtable install).

        ``crc`` is the frame checksum sealed by the coordinator before
        the bytes crossed any storage core.

        Raises:
            CoreOfflineError: the core is crashed/quarantined.
            MachineCheckError: a fail-noisy defect (or chaos) fired.
        """
        self._maybe_forced_mce("store")
        if self.wal is not None:
            self.wal.append(seqno, key, value, crc)
            self.stats.physical_bytes += len(value)
        stored = copy_bytes(self.core, value)
        self.table[key] = stored
        self.meta_crc[key] = crc
        self.stats.puts += 1
        self.stats.physical_bytes += len(value)

    def get(self, key: str) -> tuple[bytes, int] | None:
        """Read one record through the core's load path.

        Returns ``(bytes as served, frame crc)`` — the served bytes may
        be corrupted in flight even when the at-rest copy is good.

        Raises:
            CoreOfflineError: the core is crashed/quarantined.
            MachineCheckError: a fail-noisy defect (or chaos) fired.
        """
        self._maybe_forced_mce("load")
        stored = self.table.get(key)
        if stored is None:
            return None
        fetched = copy_bytes(self.core, stored)
        self.stats.gets += 1
        return fetched, self.meta_crc[key]

    def checksum(self, key: str) -> int | None:
        """Scrub checksum of the at-rest bytes, computed on *this* core.

        The scrub computation itself crosses the suspect silicon — a
        defective ALU mis-computes the checksum just as it corrupts
        data, and either way the divergence points at this core.
        """
        stored = self.table.get(key)
        if stored is None:
            return None
        return crc64(self.core, stored)

    def compact(self) -> int:
        """Rewrite the memtable through the core (at-rest rot source).

        Returns the number of rewritten records.  Compaction is where
        a previously-good record can go bad: the rewrite crosses the
        defective copy path again.
        """
        rewritten = 0
        for key in sorted(self.table):
            value = self.table[key]
            self.table[key] = copy_bytes(self.core, value)
            self.stats.physical_bytes += len(value)
            rewritten += 1
        self.stats.compactions += 1
        return rewritten

    def repair(self, key: str, value: bytes, crc: int) -> None:
        """Install a verified value fetched from the healthy quorum.

        The repair channel is end-to-end checked (the anti-entropy RPC
        carries its own frame checksum and the receiver verifies before
        install), so the installed bytes are exactly the quorum's.
        """
        self.table[key] = value
        self.meta_crc[key] = crc
        self.stats.repairs_applied += 1
        self.stats.physical_bytes += len(value)

    def drop(self, key: str) -> None:
        """Remove a record the quorum says should not exist."""
        self.table.pop(key, None)
        self.meta_crc.pop(key, None)

    def crash_recover(self) -> ReplayReport | None:
        """Rebuild state after a crash: memtable is gone, WAL replays.

        Returns the replay report (None when running without a WAL —
        the baseline simply loses everything it held).
        """
        self.table = {}
        self.meta_crc = {}
        self.stats.recoveries += 1
        if self.wal is None:
            return None
        table, report = self.wal.replay()
        for key, (value, crc) in table.items():
            self.table[key] = value
            self.meta_crc[key] = crc
        return report


__all__ = ["ReplicaStats", "StorageReplica"]
