"""Corruption-tolerant replicated storage on mercurial cores.

PR 1 hardened the *serving* path; the paper's worst incidents are on
the *durable* path — "corruption of the database index" visible only
via one core, and encryption on a mercurial core that made data
permanently unrecoverable (§5.2).  This package builds the durable-path
defense in depth the paper and the SDC-at-scale follow-ups call for:

- :mod:`repro.storage.wal` — a CRC-framed write-ahead log whose frames
  are sealed *before* the bytes cross the replica core, with
  replay-time verification and torn/corrupt-record truncation;
- :mod:`repro.storage.replica` — one storage replica: memtable + WAL +
  compaction, every byte moved through its fleet core;
- :mod:`repro.storage.store` — the replicated KV store: quorum writes,
  voted quorum reads with read-repair, and the key-wrap
  verify-after-encrypt check (decrypt on a second core, arbitrate on a
  third) that prevents the §5.2 unrecoverable-encryption incident;
- :mod:`repro.storage.scrub` — a background scrubber comparing replica
  checksums over a rotating key window;
- :mod:`repro.storage.antientropy` — Merkle-tree anti-entropy sync
  that finds divergent ranges in O(log n) comparisons and repairs them
  from the healthy quorum;
- :mod:`repro.storage.campaign` — the chaos campaign driver and its
  durable-corruption SLO scorecard (escape rate, unrecoverable-loss
  rate, repair latency, write amplification), wired into the
  detection → quarantine loop.

Every integrity signal becomes a first-class
:class:`~repro.core.events.CeeEvent` (``WAL_CORRUPTION``,
``SCRUB_MISMATCH``, ``QUORUM_MISMATCH``, ``ENCRYPT_VERIFY_FAIL``)
with a documented suspicion weight in
:mod:`repro.detection.weights`.
"""

from repro.storage.antientropy import AntiEntropy, SyncReport, build_merkle_tree
from repro.storage.campaign import (
    StorageCampaign,
    StorageCampaignConfig,
    StorageProtections,
    StorageScorecard,
    build_storage_fleet,
)
from repro.storage.replica import StorageReplica
from repro.storage.scrub import Scrubber, ScrubReport
from repro.storage.store import (
    ReadResult,
    ReplicatedKVStore,
    StoreConfig,
    WriteResult,
)
from repro.storage.wal import ReplayReport, WalRecord, WriteAheadLog, host_crc64

__all__ = [
    "AntiEntropy",
    "ReadResult",
    "ReplayReport",
    "ReplicatedKVStore",
    "Scrubber",
    "ScrubReport",
    "StorageCampaign",
    "StorageCampaignConfig",
    "StorageProtections",
    "StorageReplica",
    "StorageScorecard",
    "StoreConfig",
    "SyncReport",
    "WalRecord",
    "WriteAheadLog",
    "WriteResult",
    "build_merkle_tree",
    "build_storage_fleet",
    "host_crc64",
]
