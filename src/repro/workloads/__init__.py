"""Production-like workloads that compute through simulated cores.

Every workload here is implemented from scratch (no stdlib shortcuts on
the computational path) and routes its primitive operations through
:meth:`repro.silicon.core.Core.execute`, so defects corrupt them the
way real mercurial cores corrupted Google's production software (§2).
"""

from repro.workloads.base import (
    CoreLike,
    OpCountingCore,
    OracleComparison,
    WorkloadResult,
    digest_bytes,
    digest_ints,
    measure_op_mix,
    run_with_oracle,
)
from repro.workloads.compression import (
    CorruptStreamError,
    compress,
    compression_workload,
    decompress,
)
from repro.workloads.copying import (
    copy_bytes,
    copy_words,
    copying_workload,
    unchecked_copy_workload,
)
from repro.workloads.crypto import (
    crypto_workload,
    decrypt_block,
    decrypt_ecb,
    encrypt_block,
    encrypt_ecb,
    expand_key,
)
from repro.workloads.database import (
    BTreeIndex,
    QueryStats,
    Record,
    Replica,
    ReplicatedDb,
    database_workload,
    probe_replica,
)
from repro.workloads.filesystem import FsError, MiniFs, filesystem_workload
from repro.workloads.generator import (
    STANDARD_MIX,
    WorkloadMixer,
    WorkloadSpec,
    blended_op_mix,
    measured_mix,
    spec_by_name,
)
from repro.workloads.hashing import crc64, fnv1a, hashing_workload, mix64
from repro.workloads.locking import (
    SharedState,
    locking_workload,
    run_locked_counter,
)
from repro.workloads.sorting import (
    is_sorted_on,
    merge_sort,
    quicksort,
    sorting_workload,
)
from repro.workloads.vectorops import axpy, dot, vector_workload, vsum, xor_fold

__all__ = [
    "CoreLike",
    "OpCountingCore",
    "OracleComparison",
    "WorkloadResult",
    "digest_bytes",
    "digest_ints",
    "measure_op_mix",
    "run_with_oracle",
    "CorruptStreamError",
    "compress",
    "compression_workload",
    "decompress",
    "copy_bytes",
    "copy_words",
    "copying_workload",
    "unchecked_copy_workload",
    "crypto_workload",
    "decrypt_block",
    "decrypt_ecb",
    "encrypt_block",
    "encrypt_ecb",
    "expand_key",
    "BTreeIndex",
    "QueryStats",
    "Record",
    "Replica",
    "ReplicatedDb",
    "database_workload",
    "probe_replica",
    "FsError",
    "MiniFs",
    "filesystem_workload",
    "STANDARD_MIX",
    "WorkloadMixer",
    "WorkloadSpec",
    "blended_op_mix",
    "measured_mix",
    "spec_by_name",
    "crc64",
    "fnv1a",
    "hashing_workload",
    "mix64",
    "SharedState",
    "locking_workload",
    "run_locked_counter",
    "is_sorted_on",
    "merge_sort",
    "quicksort",
    "sorting_workload",
    "axpy",
    "dot",
    "vector_workload",
    "vsum",
    "xor_fold",
]
