"""An LZ77-style codec computed through the core.

Compression libraries are first-class members of the paper's test
corpus (§2).  The interesting CEE behaviours they surface:

- a defective *comparator* makes the match finder emit wrong matches →
  the compressed stream decodes to silently different data;
- a defective *adder/AGU* corrupts offsets/lengths → decompression
  reads out of range and crashes (the fail-noisy symptom);
- the *copy* datapath moves match bytes, so a shared-logic defect (§5)
  corrupts decompression output even when the stream is perfect.

Format: a token stream.  ``0x00 <byte>`` is a literal; ``0x01 <offset>
<length>`` copies ``length+MIN_MATCH`` bytes from ``offset+1`` back.
Offsets fit one byte (window 255), lengths one byte.
"""

from __future__ import annotations

from repro.silicon.units import Op
from repro.workloads.base import CoreLike, WorkloadResult, digest_bytes

MIN_MATCH = 3
MAX_MATCH = MIN_MATCH + 255
WINDOW = 255
LITERAL = 0x00
MATCH = 0x01


class CorruptStreamError(ValueError):
    """Raised when a compressed stream is structurally invalid."""


def _bytes_equal(core: CoreLike, a: int, b: int) -> bool:
    return core.execute(Op.BEQ, a, b) == 1


def _find_match(
    core: CoreLike, data: bytes, position: int, window: int
) -> tuple[int, int]:
    """Greedy best (offset, length) for ``data[position:]``; (0,0) if none.

    The candidate scan steps back through the window; every byte
    comparison and every length increment runs on the core.
    """
    best_offset = 0
    best_length = 0
    start = max(0, position - window)
    limit = len(data)
    for candidate in range(position - 1, start - 1, -1):
        if not _bytes_equal(core, data[candidate], data[position]):
            continue
        length = 0
        scan_guard = 0
        while (
            position + length < limit
            and length < MAX_MATCH
            and _bytes_equal(core, data[candidate + length], data[position + length])
        ):
            length = core.execute(Op.ADD, length, 1)
            # A corrupted increment can make `length` oscillate and spin
            # this scan forever; bound the scan by its healthy maximum.
            scan_guard += 1
            if scan_guard > MAX_MATCH:
                break
        if length > best_length:
            best_length = length
            best_offset = core.execute(Op.SUB, position, candidate)
            if length >= MAX_MATCH:
                break
    if best_length < MIN_MATCH:
        return (0, 0)
    return (best_offset, best_length)


def compress(core: CoreLike, data: bytes, window: int = WINDOW) -> bytes:
    """Compress ``data``; output always round-trips on a healthy core."""
    if not 1 <= window <= WINDOW:
        raise ValueError(f"window must be in [1, {WINDOW}]")
    out = bytearray()
    position = 0
    while position < len(data):
        offset, length = _find_match(core, data, position, window)
        if length >= MIN_MATCH:
            out.append(MATCH)
            out.append(offset - 1)
            out.append(length - MIN_MATCH)
            advanced = core.execute(Op.ADD, position, length)
        else:
            out.append(LITERAL)
            out.append(data[position])
            advanced = core.execute(Op.ADD, position, 1)
        if advanced <= position:
            # A corrupted cursor update would loop the compressor
            # forever; real encoders carry exactly this kind of
            # forward-progress assertion, which turns the hang into a
            # crash (the detectable §2 symptom).
            raise CorruptStreamError(
                f"compressor made no forward progress at {position}"
            )
        position = advanced
    return bytes(out)


def decompress(core: CoreLike, blob: bytes) -> bytes:
    """Decompress; raises :class:`CorruptStreamError` on bad structure.

    Match bytes are moved through the core's COPY datapath in
    word-packed chunks, exposing decompression to copy-unit defects.
    """
    out = bytearray()
    index = 0
    while index < len(blob):
        tag = blob[index]
        if tag == LITERAL:
            if index + 1 >= len(blob):
                raise CorruptStreamError("truncated literal")
            value = core.execute(Op.LOAD, blob[index + 1])
            out.append(value & 0xFF)
            index += 2
        elif tag == MATCH:
            if index + 2 >= len(blob):
                raise CorruptStreamError("truncated match")
            offset = core.execute(Op.ADD, blob[index + 1], 1)
            length = core.execute(Op.ADD, blob[index + 2], MIN_MATCH)
            start = core.execute(Op.SUB, len(out), offset)
            if offset > len(out):
                raise CorruptStreamError(
                    f"match offset {offset} exceeds output size {len(out)}"
                )
            if length > MAX_MATCH:
                # Only a corrupted length computation can exceed the
                # format's maximum; fail fast instead of copying forever.
                raise CorruptStreamError(f"match length {length} impossible")
            # Overlapping matches must copy byte-at-a-time semantics;
            # copy in sub-chunks no larger than the non-overlapping span.
            copied = 0
            while copied < length:
                span = min(length - copied, len(out) - (start + copied))
                chunk = tuple(out[start + copied:start + copied + span])
                moved = core.execute(Op.COPY, chunk)
                out.extend(byte & 0xFF for byte in moved)
                copied += span
            index += 3
        else:
            raise CorruptStreamError(f"bad tag {tag:#x} at {index}")
    return bytes(out)


def compression_workload(core: CoreLike, data: bytes) -> WorkloadResult:
    """Compress+decompress with a round-trip self-check.

    The round-trip check is the natural application-level SDC check
    (§6); crashes during decompression are reported as crashes, which
    become CRASH signals for the detection layer.
    """
    try:
        blob = compress(core, data)
        restored = decompress(core, blob)
    except (CorruptStreamError, IndexError) as exc:
        return WorkloadResult(
            name="compression",
            output_digest=0,
            crashed=True,
            detail=f"{type(exc).__name__}: {exc}",
        )
    return WorkloadResult(
        name="compression",
        output_digest=digest_bytes(blob),
        app_detected=restored != data,
        units=len(data),
    )
