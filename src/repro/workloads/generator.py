"""Workload mixes: sampling realistic work and measuring op profiles.

The fleet simulator needs two things from the workload layer:

1. concrete units of work to execute on suspect cores (the sampled
   tier), and
2. *operation mixes* — the fraction of dynamic operations each workload
   sends to each functional unit — so the analytic tier can compute a
   defective core's expected corruption rate under production load
   without executing anything (§4's "more a property of programs than
   of CEEs" is literal here: the same defect has wildly different
   observable rates under different mixes).
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Callable

import numpy as np

from repro.workloads.base import CoreLike, WorkloadResult, measure_op_mix
from repro.workloads.compression import compression_workload
from repro.workloads.copying import copying_workload
from repro.workloads.crypto import crypto_workload
from repro.workloads.database import database_workload
from repro.workloads.filesystem import filesystem_workload
from repro.workloads.hashing import hashing_workload
from repro.workloads.locking import locking_workload
from repro.workloads.sorting import sorting_workload
from repro.workloads.vectorops import vector_workload


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """A named workload with a deterministic-work builder.

    ``build(seed)`` returns a closure ``work(core) -> WorkloadResult``
    whose behaviour depends only on the seed and the core, so the same
    unit of work can be replayed on different cores (oracle comparison,
    redundant execution).
    """

    name: str
    weight: float
    build: Callable[[int], Callable[[CoreLike], WorkloadResult]]


def _bytes_for(seed: int, size: int) -> bytes:
    rng = np.random.default_rng(seed)
    # Compressible-ish data: runs + random bytes, like logs or protos.
    out = bytearray()
    while len(out) < size:
        if rng.random() < 0.4:
            out.extend(bytes([int(rng.integers(65, 91))]) * int(rng.integers(3, 12)))
        else:
            out.extend(rng.integers(0, 256, size=8, dtype=np.uint8).tobytes())
    return bytes(out[:size])


def _ints_for(seed: int, count: int, bits: int = 32) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(x) for x in rng.integers(0, 2**bits, size=count, dtype=np.uint64)]


def _build_hashing(seed: int):
    data = _bytes_for(seed, 512)
    return lambda core: hashing_workload(core, data)


def _build_compression(seed: int):
    data = _bytes_for(seed, 600)
    return lambda core: compression_workload(core, data)


def _build_crypto(seed: int):
    data = _bytes_for(seed, 128)
    key = _bytes_for(seed ^ 0x5EED, 16)
    return lambda core: crypto_workload(core, data, key)


def _build_copying(seed: int):
    words = _ints_for(seed, 512, bits=60)
    return lambda core: copying_workload(core, words)


def _build_locking(seed: int):
    rng = np.random.default_rng(seed)
    threads = int(rng.integers(2, 6))
    return lambda core: locking_workload(core, n_threads=threads, iterations=24)


def _build_vector(seed: int):
    values = _ints_for(seed, 256, bits=30)
    return lambda core: vector_workload(core, values)


def _build_sorting(seed: int):
    values = _ints_for(seed, 300, bits=48)
    return lambda core: sorting_workload(core, values)


def _build_database(seed: int):
    keys = _ints_for(seed, 150, bits=40)
    probes = keys[::3]
    return lambda core: database_workload(core, keys, probes)


def _build_filesystem(seed: int):
    rng = np.random.default_rng(seed)
    files = {
        f"file{index}": _bytes_for(seed + index, int(rng.integers(100, 400)))
        for index in range(5)
    }
    return lambda core: filesystem_workload(core, files)


#: the production-like mix: weights loosely follow a storage-heavy fleet
STANDARD_MIX: tuple[WorkloadSpec, ...] = (
    WorkloadSpec("hashing", 0.18, _build_hashing),
    WorkloadSpec("compression", 0.15, _build_compression),
    WorkloadSpec("crypto", 0.10, _build_crypto),
    WorkloadSpec("copying", 0.17, _build_copying),
    WorkloadSpec("locking", 0.08, _build_locking),
    WorkloadSpec("vectorops", 0.12, _build_vector),
    WorkloadSpec("sorting", 0.08, _build_sorting),
    WorkloadSpec("database", 0.07, _build_database),
    WorkloadSpec("filesystem", 0.05, _build_filesystem),
)


def spec_by_name(name: str) -> WorkloadSpec:
    """Look up a standard-mix workload spec; KeyError if unknown."""
    for spec in STANDARD_MIX:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown workload {name!r}")


@functools.lru_cache(maxsize=None)
def measured_mix(name: str, seed: int = 1234) -> tuple[tuple[str, float], ...]:
    """Measure a workload's operation mix on a healthy core (cached)."""
    spec = spec_by_name(name)
    work = spec.build(seed)
    mix = measure_op_mix(work)
    return tuple(sorted(mix.items()))


def blended_op_mix(
    specs: tuple[WorkloadSpec, ...] = STANDARD_MIX, seed: int = 1234
) -> dict[str, float]:
    """Weight-blend the measured op mixes of a workload set.

    This is the "production operation mix" the analytic fleet tier uses
    to turn a defect model into an expected incident rate.
    """
    total_weight = sum(spec.weight for spec in specs)
    blended: dict[str, float] = {}
    for spec in specs:
        for op, fraction in measured_mix(spec.name, seed):
            blended[op] = blended.get(op, 0.0) + spec.weight * fraction / total_weight
    return blended


class WorkloadMixer:
    """Samples deterministic units of work from a weighted mix."""

    def __init__(
        self,
        specs: tuple[WorkloadSpec, ...] = STANDARD_MIX,
        rng: np.random.Generator | None = None,
    ):
        if not specs:
            raise ValueError("need at least one workload spec")
        self.specs = specs
        self.rng = rng if rng is not None else np.random.default_rng(0)  # repro: noqa-DET004 -- documented fallback; campaigns pass a trial-derived rng
        weights = np.array([spec.weight for spec in specs], dtype=float)
        self._probabilities = weights / weights.sum()

    def sample(self) -> tuple[WorkloadSpec, Callable[[CoreLike], WorkloadResult]]:
        """Draw (spec, ready-to-run work closure)."""
        index = int(self.rng.choice(len(self.specs), p=self._probabilities))
        spec = self.specs[index]
        seed = int(self.rng.integers(2**31))
        return spec, spec.build(seed)

    def run_random(self, core: CoreLike) -> WorkloadResult:
        """Sample one unit of work and run it on ``core``."""
        _, work = self.sample()
        return work(core)
