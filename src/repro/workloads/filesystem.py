"""A block filesystem with a garbage collector, on a mercurial core.

Reproduces two §2 anecdotes:

- "Corruption affecting garbage collection, in a storage system,
  causing live data to be lost": the mark phase of :meth:`MiniFs.gc`
  reads every inode's block pointers *through the core*; a corrupted
  pointer read leaves a live block unmarked and the sweep frees it —
  permanent data loss, discovered only on a later read (the
  wrong-answer-detected-too-late symptom class);
- "bad metadata can cause the loss of an entire file system": inode
  pointer words themselves live in a metadata region whose updates run
  through the core.

Files carry end-to-end content checksums (computed host-side at write
time, the way a client library would before handing bytes to the
filesystem), so reads can always *detect* loss — they just cannot
recover it, which is the paper's point about blast radius.
"""

from __future__ import annotations

import dataclasses

from repro.silicon.units import Op
from repro.workloads.base import CoreLike, WorkloadResult, digest_bytes

BLOCK_BYTES = 64


class FsError(Exception):
    """Filesystem-level failure (bad pointer, missing block)."""


@dataclasses.dataclass
class Inode:
    """One file's metadata: name, size, block pointers, checksum."""

    name: str
    size: int
    block_pointers: list[int]
    content_checksum: int


class MiniFs:
    """Flat-namespace filesystem: blocks + inodes + mark/sweep GC."""

    def __init__(self, core: CoreLike, n_blocks: int = 512):
        if n_blocks <= 0:
            raise ValueError("need at least one block")
        self.core = core
        self.blocks: list[bytes | None] = [None] * n_blocks
        self.free: list[int] = list(range(n_blocks - 1, -1, -1))
        self.inodes: dict[str, Inode] = {}
        self.lost_blocks = 0  # ground truth: live blocks freed by GC

    # -- write/read -----------------------------------------------------

    def write_file(self, name: str, data: bytes) -> None:
        """Create or replace a file."""
        if name in self.inodes:
            self.delete(name)
        n_needed = max(1, (len(data) + BLOCK_BYTES - 1) // BLOCK_BYTES)
        if len(self.free) < n_needed:
            raise FsError("out of space")
        pointers: list[int] = []
        for index in range(n_needed):
            block_no = self.free.pop()
            chunk = data[index * BLOCK_BYTES:(index + 1) * BLOCK_BYTES]
            self.blocks[block_no] = chunk
            # The pointer word is written through the core: a store-path
            # defect corrupts the durable metadata itself.
            pointers.append(self.core.execute(Op.STORE, block_no))
        self.inodes[name] = Inode(
            name=name,
            size=len(data),
            block_pointers=pointers,
            content_checksum=digest_bytes(data),
        )

    def read_file(self, name: str) -> bytes:
        """Read and end-to-end-verify a file.

        Raises:
            FsError: unknown name, dangling/corrupt pointer, freed
                block, or checksum mismatch (detected data loss).
        """
        inode = self.inodes.get(name)
        if inode is None:
            raise FsError(f"no such file {name!r}")
        data = bytearray()
        for pointer in inode.block_pointers:
            block_no = self.core.execute(Op.LOAD, pointer)
            if not 0 <= block_no < len(self.blocks):
                raise FsError(f"pointer {block_no} out of range in {name!r}")
            block = self.blocks[block_no]
            if block is None:
                raise FsError(f"block {block_no} of {name!r} is not allocated")
            data.extend(block)
        content = bytes(data[:inode.size])
        if digest_bytes(content) != inode.content_checksum:
            raise FsError(f"checksum mismatch reading {name!r}")
        return content

    def delete(self, name: str) -> None:
        """Remove a file and free its blocks (no-op if absent)."""
        inode = self.inodes.pop(name, None)
        if inode is None:
            return
        for pointer in inode.block_pointers:
            if 0 <= pointer < len(self.blocks) and self.blocks[pointer] is not None:
                self.blocks[pointer] = None
                self.free.append(pointer)

    # -- garbage collection ----------------------------------------------

    def gc(self) -> int:
        """Mark-and-sweep unreferenced blocks; returns blocks freed.

        The mark phase reads every pointer through the core.  A
        corrupted pointer read marks the *wrong* block: the genuinely
        live block stays unmarked and is swept — silent loss of live
        data, recorded in ``lost_blocks`` as ground truth.
        """
        marked = [False] * len(self.blocks)
        for inode in self.inodes.values():
            for pointer in inode.block_pointers:
                observed = self.core.execute(Op.LOAD, pointer)
                if 0 <= observed < len(self.blocks):
                    marked[observed] = True
        freed = 0
        live_pointers = {
            pointer
            for inode in self.inodes.values()
            for pointer in inode.block_pointers
        }
        for block_no, is_marked in enumerate(marked):
            if is_marked or self.blocks[block_no] is None:
                continue
            if block_no in live_pointers:
                self.lost_blocks += 1  # ground truth: this was live data
            self.blocks[block_no] = None
            self.free.append(block_no)
            freed += 1
        return freed

    # -- fsck --------------------------------------------------------------

    def fsck(self) -> list[str]:
        """Offline consistency check; returns human-readable problems."""
        problems: list[str] = []
        seen: dict[int, str] = {}
        for inode in self.inodes.values():
            for pointer in inode.block_pointers:
                if not 0 <= pointer < len(self.blocks):
                    problems.append(f"{inode.name}: pointer {pointer} out of range")
                    continue
                if self.blocks[pointer] is None:
                    problems.append(f"{inode.name}: dangling pointer {pointer}")
                if pointer in seen:
                    problems.append(
                        f"{inode.name}: block {pointer} double-referenced "
                        f"(also {seen[pointer]})"
                    )
                seen[pointer] = inode.name
        return problems


def filesystem_workload(
    core: CoreLike, files: dict[str, bytes], churn: int = 3
) -> WorkloadResult:
    """Write files, churn + GC, then read everything back and verify.

    ``churn`` delete/rewrite rounds create real garbage so the GC has
    work to do; data loss shows up as read-time checksum failures.
    """
    fs = MiniFs(core)
    try:
        for name, data in files.items():
            fs.write_file(name, data)
        names = list(files)
        for round_index in range(churn):
            victim = names[round_index % len(names)]
            fs.write_file(victim, files[victim] + b"!" * (round_index + 1))
            fs.gc()
        failures = 0
        contents: list[bytes] = []
        for position, name in enumerate(names):
            rewritten = position < churn
            try:
                content = fs.read_file(name)
                contents.append(content)
                if not rewritten and content != files[name]:
                    failures += 1
            except FsError:
                failures += 1
        return WorkloadResult(
            name="filesystem",
            output_digest=digest_bytes(b"|".join(contents)),
            app_detected=failures > 0,
            detail=f"{failures} read failures, {fs.lost_blocks} blocks lost",
            units=len(files),
        )
    except FsError as exc:
        return WorkloadResult(
            name="filesystem",
            output_digest=0,
            crashed=True,
            detail=str(exc),
            units=len(files),
        )
