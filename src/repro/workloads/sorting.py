"""Sorting through a possibly-defective comparator.

Sorting is the canonical SDC-study algorithm (the paper cites empirical
soft-error studies of sorting [11]).  Both sorts below funnel *every*
element comparison through the core's comparator, so a comparator
defect yields misordered output — and, instructively, the natural
"is it sorted?" self-check uses the same broken comparator and can be
fooled, which is why the resilient version in
:mod:`repro.mitigation.resilient.sorting` exists.
"""

from __future__ import annotations

from repro.silicon.units import Op
from repro.workloads.base import CoreLike, WorkloadResult, digest_ints


def less_than(core: CoreLike, a: int, b: int) -> bool:
    """Strict unsigned less-than on the core comparator."""
    return core.execute(Op.BLT, a, b) == 1


def merge_sort(core: CoreLike, values: list[int]) -> list[int]:
    """Stable bottom-up merge sort; comparisons on the core."""
    items = list(values)
    width = 1
    n = len(items)
    while width < n:
        merged: list[int] = []
        for start in range(0, n, 2 * width):
            left = items[start:start + width]
            right = items[start + width:start + 2 * width]
            i = j = 0
            while i < len(left) and j < len(right):
                if less_than(core, right[j], left[i]):
                    merged.append(right[j])
                    j += 1
                else:
                    merged.append(left[i])
                    i += 1
            merged.extend(left[i:])
            merged.extend(right[j:])
        items = merged
        width *= 2
    return items


def quicksort(core: CoreLike, values: list[int]) -> list[int]:
    """Iterative Hoare-style quicksort; comparisons on the core."""
    items = list(values)
    stack = [(0, len(items) - 1)]
    while stack:
        low, high = stack.pop()
        if low >= high:
            continue
        pivot = items[(low + high) // 2]
        i, j = low, high
        while i <= j:
            while less_than(core, items[i], pivot):
                i += 1
            while less_than(core, pivot, items[j]):
                j -= 1
            if i <= j:
                items[i], items[j] = items[j], items[i]
                i += 1
                j -= 1
        stack.append((low, j))
        stack.append((i, high))
    return items


def is_sorted_on(core: CoreLike, values: list[int]) -> bool:
    """Sortedness check using the same (possibly broken) comparator."""
    for a, b in zip(values, values[1:]):
        if less_than(core, b, a):
            return False
    return True


def sorting_workload(core: CoreLike, values: list[int]) -> WorkloadResult:
    """Sort with the naive on-core sortedness self-check.

    A *consistently* wrong comparator passes its own check — the
    workload is deliberately checkable-but-fooled, demonstrating why
    end-to-end checks beat in-band ones (§7's end-to-end argument).
    """
    output = merge_sort(core, values)
    return WorkloadResult(
        name="sorting",
        output_digest=digest_ints(output),
        app_detected=not is_sorted_on(core, output),
        units=len(values),
    )
