"""Hash functions computed through a core.

The paper's test corpus includes "interesting libraries (e.g.,
compression, hash, math, cryptography, copying, locking, ...)" (§2).
These hashes are implemented from scratch with every arithmetic step
routed through the core, so a defective ALU or multiplier corrupts the
digest — the classic way checksum mismatches surfaced CEEs in
production storage systems.
"""

from __future__ import annotations

from repro.workloads.base import CoreLike, WorkloadResult, digest_ints
from repro.silicon.units import Op

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
_CRC64_POLY = 0x42F0E1EBA9EA3693


def fnv1a(core: CoreLike, data: bytes) -> int:
    """FNV-1a 64-bit: xor then multiply, both on the core."""
    h = FNV_OFFSET
    for byte in data:
        h = core.execute(Op.XOR, h, byte)
        h = core.execute(Op.MUL, h, FNV_PRIME)
    return h


def _crc64_table() -> tuple[int, ...]:
    """Host-side CRC-64 table (the ROM; not subject to core defects)."""
    table = []
    for i in range(256):
        crc = i << 56
        for _ in range(8):
            if crc & (1 << 63):
                crc = ((crc << 1) ^ _CRC64_POLY) & 0xFFFFFFFFFFFFFFFF
            else:
                crc = (crc << 1) & 0xFFFFFFFFFFFFFFFF
        table.append(crc)
    return tuple(table)


CRC64_TABLE = _crc64_table()


def crc64(core: CoreLike, data: bytes) -> int:
    """Table-driven CRC-64; the per-byte combine runs on the core."""
    crc = 0
    for byte in data:
        index = core.execute(Op.XOR, core.execute(Op.SHR, crc, 56), byte)
        crc = core.execute(
            Op.XOR, core.execute(Op.SHL, crc, 8), CRC64_TABLE[index & 0xFF]
        )
    return crc


def mix64(core: CoreLike, x: int) -> int:
    """A splitmix-style finalizer: shifts, xors and multiplies."""
    x = core.execute(Op.XOR, x, core.execute(Op.SHR, x, 30))
    x = core.execute(Op.MUL, x, 0xBF58476D1CE4E5B9)
    x = core.execute(Op.XOR, x, core.execute(Op.SHR, x, 27))
    x = core.execute(Op.MUL, x, 0x94D049BB133111EB)
    x = core.execute(Op.XOR, x, core.execute(Op.SHR, x, 31))
    return x


def hash_stream(core: CoreLike, seeds: list[int]) -> list[int]:
    """Mix a list of seeds; the vectorizable form of :func:`mix64`."""
    return [mix64(core, seed) for seed in seeds]


def hashing_workload(core: CoreLike, data: bytes) -> WorkloadResult:
    """One unit of hash work with an internal cross-check.

    Computes FNV-1a twice and compares — a cheap application-level
    self-check of the kind §6 describes ("many of our applications
    already checked for SDCs").  A *deterministic* defect passes this
    check (both runs corrupt identically); an intermittent one is
    caught with useful probability.
    """
    first = fnv1a(core, data)
    second = fnv1a(core, data)
    crc = crc64(core, data)
    return WorkloadResult(
        name="hashing",
        output_digest=digest_ints([first, crc]),
        app_detected=first != second,
        units=len(data),
    )
