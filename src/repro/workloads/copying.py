"""Block-copy workloads.

"Data corruptions exhibited by various load, store, vector, and
coherence operations" (§2) — copies are the canonical victim, and §5's
shared-logic observation ties copy corruption to vector-unit defects.
The copier moves data in chunks through :data:`Op.COPY` and verifies
with an end-to-end checksum (computed host-side so the check itself is
trustworthy, mirroring a DMA engine's descriptor CRC).
"""

from __future__ import annotations

from repro.silicon.units import Op
from repro.workloads.base import CoreLike, WorkloadResult, digest_ints


def copy_words(
    core: CoreLike, words: list[int], chunk: int = 64
) -> list[int]:
    """Copy a word buffer through the core's copy datapath."""
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    out: list[int] = []
    for start in range(0, len(words), chunk):
        piece = tuple(words[start:start + chunk])
        out.extend(core.execute(Op.COPY, piece))
    return out


def copy_bytes(core: CoreLike, data: bytes, chunk: int = 64) -> bytes:
    """Copy a byte buffer (packed 8 bytes per word) through the core."""
    words = []
    for start in range(0, len(data), 8):
        word = int.from_bytes(data[start:start + 8], "little")
        words.append(word)
    copied = copy_words(core, words, chunk)
    out = bytearray()
    for word in copied:
        out.extend(word.to_bytes(8, "little"))
    return bytes(out[: len(data)])


def copying_workload(
    core: CoreLike, words: list[int], chunk: int = 64
) -> WorkloadResult:
    """Copy a buffer and self-check with a host-side checksum."""
    copied = copy_words(core, words, chunk)
    corrupted = copied != [w & 0xFFFFFFFFFFFFFFFF for w in words]
    return WorkloadResult(
        name="copying",
        output_digest=digest_ints(copied),
        app_detected=corrupted,
        units=len(words),
    )


def unchecked_copy_workload(
    core: CoreLike, words: list[int], chunk: int = 64
) -> WorkloadResult:
    """Copy with *no* self-check: the §2 worst case.

    Corruption here is silent; only cross-core comparison (the oracle)
    or a downstream consumer ever notices.
    """
    copied = copy_words(core, words, chunk)
    return WorkloadResult(
        name="copying_unchecked",
        output_digest=digest_ints(copied),
        app_detected=False,
        units=len(words),
    )
