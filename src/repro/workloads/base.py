"""Workload plumbing: every workload computes *through* a core.

A workload is a piece of realistic software whose primitive operations
(arithmetic, compares, copies, table lookups, atomics) execute via
:meth:`Core.execute`, so a mercurial core corrupts it exactly where a
real one would.  The module provides:

- :class:`WorkloadResult` — what one unit of work reports upward
  (including whether the *application's own* checks caught anything,
  which is what feeds the §6 application-level signals);
- :class:`OpCountingCore` — a transparent wrapper measuring a
  workload's operation mix, used to parameterize the analytic fleet
  tier;
- :func:`run_with_oracle` — run the same work on a suspect core and a
  known-good reference and diff the outputs (ground-truth scoring and
  the basis of dual-execution detection).
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Callable, Protocol

import numpy as np

from repro.silicon.core import Core


class CoreLike(Protocol):
    """Anything that can execute primitive operations."""

    core_id: str

    def execute(self, op: str, *operands):
        """Execute one primitive operation; may corrupt the result."""
        ...


@dataclasses.dataclass(slots=True)
class WorkloadResult:
    """Outcome of one unit of work.

    Attributes:
        name: workload name.
        output_digest: digest of the produced output (comparable across
            runs/cores; computed host-side, not through the core, so the
            digest itself cannot be corrupted).
        app_detected: the workload's own integrity checks tripped.
        crashed: the work died with an exception (§2: defective cores
            exhibit "both wrong results and exceptions").
        detail: context for logs.
        units: how many items/blocks/records were processed.
    """

    name: str
    output_digest: int
    app_detected: bool = False
    crashed: bool = False
    detail: str = ""
    units: int = 0


def digest_bytes(data: bytes) -> int:
    """Host-side FNV-1a digest used to compare outputs across cores.

    Deliberately *not* routed through a core: this is the experimenter's
    oracle hash, immune to the defect under study.
    """
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def digest_ints(values) -> int:
    """Host-side digest of an int sequence."""
    h = 0xCBF29CE484222325
    for value in values:
        for shift in range(0, 64, 8):
            h ^= (value >> shift) & 0xFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class OpCountingCore:
    """Wraps a core, tallying executed operations by mnemonic.

    Used to measure workload *operation mixes* — which fraction of a
    workload's dynamic operations hit each functional unit — feeding the
    analytic tier of the fleet simulator and the test-coverage analysis
    ("depends on test coverage", §4).
    """

    def __init__(self, inner: Core):
        self.inner = inner
        self.core_id = inner.core_id
        self.counts: collections.Counter = collections.Counter()

    def execute(self, op: str, *operands):
        """Tally and forward to the wrapped core."""
        self.counts[op] += 1
        return self.inner.execute(op, *operands)

    def golden(self, op: str, *operands):
        """Defect-free semantics via the wrapped core."""
        return self.inner.golden(op, *operands)

    @property
    def total_ops(self) -> int:
        """Total operations executed through this wrapper."""
        return sum(self.counts.values())

    def op_mix(self) -> dict[str, float]:
        """Normalized operation mix (fractions summing to 1)."""
        total = self.total_ops
        if total == 0:
            return {}
        return {op: count / total for op, count in self.counts.items()}


def measure_op_mix(
    work: Callable[[CoreLike], object], seed: int = 0
) -> dict[str, float]:
    """Run ``work`` once on a healthy instrumented core; return its mix."""
    counting = OpCountingCore(
        Core("oracle/mix", rng=np.random.default_rng(seed))
    )
    work(counting)
    return counting.op_mix()


@dataclasses.dataclass(frozen=True, slots=True)
class OracleComparison:
    """Result of running identical work on suspect and reference cores."""

    suspect: WorkloadResult
    reference: WorkloadResult

    @property
    def outputs_differ(self) -> bool:
        """Ground truth: did the suspect produce a different output?"""
        return self.suspect.output_digest != self.reference.output_digest

    @property
    def silent_corruption(self) -> bool:
        """Wrong output that the application's own checks did not catch."""
        return (
            self.outputs_differ
            and not self.suspect.app_detected
            and not self.suspect.crashed
        )


def run_with_oracle(
    work: Callable[[CoreLike], WorkloadResult],
    suspect: CoreLike,
    reference: CoreLike,
) -> OracleComparison:
    """Run the same deterministic work on two cores and compare.

    ``work`` must be deterministic given the core (seed any randomness
    outside).  The reference core is assumed healthy; in experiments it
    is constructed with no defects, mirroring how the paper's engineers
    checked results "against the expected results".
    """
    return OracleComparison(suspect=work(suspect), reference=work(reference))
