"""Lock semantics on a mercurial core.

First on the paper's §2 symptom list: "violations of lock semantics
leading to application data corruption and crashes."  This module runs
N logical threads through a CAS-based spinlock protecting a shared
counter, with a deterministic round-robin interleaving.  Every atomic
primitive executes on the core, so an :class:`AtomicsDefect` produces
the real failure modes:

- a spuriously-succeeding CAS admits two threads into the critical
  section → lost updates → the final counter is wrong (corruption);
- a dropped XCHG store means a release never lands → every thread
  spins forever → the run exhausts its budget (the crash/hang symptom).

The workload's own invariant check (final counter == threads ×
iterations) is the application-level detection signal.
"""

from __future__ import annotations

import dataclasses

from repro.silicon.units import Op
from repro.workloads.base import CoreLike, WorkloadResult, digest_ints

UNLOCKED = 0


@dataclasses.dataclass
class _Thread:
    """One logical thread's state machine."""

    tid: int
    remaining: int
    phase: str = "acquire"   # acquire → read → bump → write → release
    scratch: int = 0


class SharedState:
    """Lock word + counter, mutated only through core atomics."""

    def __init__(self) -> None:
        self.lock = UNLOCKED
        self.counter = 0
        self.mutual_exclusion_violations = 0
        self._inside: set[int] = set()

    def enter_critical(self, tid: int) -> None:
        """Record entry; a second occupant is a mutual-exclusion violation."""
        if self._inside:
            self.mutual_exclusion_violations += 1
        self._inside.add(tid)

    def leave_critical(self, tid: int) -> None:
        """Record exit from the critical section."""
        self._inside.discard(tid)


def _step(core: CoreLike, thread: _Thread, shared: SharedState) -> None:
    """Advance one thread by one phase."""
    if thread.phase == "acquire":
        observed = core.execute(Op.CAS, shared.lock, UNLOCKED, thread.tid)
        shared.lock = observed
        if observed == thread.tid:
            shared.enter_critical(thread.tid)
            thread.phase = "read"
        # else: keep spinning in "acquire"
    elif thread.phase == "read":
        thread.scratch = core.execute(Op.LOAD, shared.counter)
        thread.phase = "bump"
    elif thread.phase == "bump":
        thread.scratch = core.execute(Op.ADD, thread.scratch, 1)
        thread.phase = "write"
    elif thread.phase == "write":
        shared.counter = core.execute(Op.STORE, thread.scratch)
        thread.phase = "release"
    elif thread.phase == "release":
        shared.lock = core.execute(Op.XCHG, shared.lock, UNLOCKED)
        shared.leave_critical(thread.tid)
        thread.remaining -= 1
        thread.phase = "acquire"


def run_locked_counter(
    core: CoreLike,
    n_threads: int = 4,
    iterations: int = 32,
    step_budget: int | None = None,
) -> tuple[SharedState, bool]:
    """Run the workload to completion or budget exhaustion.

    Returns ``(shared_state, hung)``; ``hung`` is True when the budget
    ran out with threads still spinning (the deadlock symptom).
    """
    if n_threads < 1 or iterations < 1:
        raise ValueError("need at least one thread and one iteration")
    if step_budget is None:
        step_budget = 60 * n_threads * iterations
    shared = SharedState()
    threads = [_Thread(tid=tid + 1, remaining=iterations) for tid in range(n_threads)]
    steps = 0
    while any(t.remaining > 0 for t in threads):
        if steps >= step_budget:
            return shared, True
        for thread in threads:
            if thread.remaining > 0:
                _step(core, thread, shared)
                steps += 1
    return shared, False


def locking_workload(
    core: CoreLike, n_threads: int = 4, iterations: int = 32
) -> WorkloadResult:
    """Locked-counter work with the invariant self-check."""
    expected = n_threads * iterations
    shared, hung = run_locked_counter(core, n_threads, iterations)
    if hung:
        return WorkloadResult(
            name="locking",
            output_digest=digest_ints([shared.counter]),
            crashed=True,
            detail="hang: lock release never landed",
            units=expected,
        )
    corrupted = shared.counter != expected
    detail = ""
    if shared.mutual_exclusion_violations:
        detail = (
            f"{shared.mutual_exclusion_violations} mutual-exclusion violations"
        )
    return WorkloadResult(
        name="locking",
        output_digest=digest_ints([shared.counter]),
        app_detected=corrupted,
        detail=detail,
        units=expected,
    )
