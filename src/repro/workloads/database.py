"""A B-tree–indexed mini-database with per-replica query serving.

Reproduces the §2 anecdote: "Database index corruption leading to some
queries, depending on which replica (core) serves them, being
non-deterministically corrupted."  Each replica builds and probes its
index *on its own core*; a mercurial replica core corrupts only the
queries it serves, so the same logical query succeeds or fails
depending on replica choice.

The B-tree is a real order-``ORDER`` B-tree (split-on-full inserts);
every key comparison during descent and every separator comparison
during splits runs on the core's comparator.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.silicon.units import Op
from repro.workloads.base import CoreLike, WorkloadResult, digest_ints

ORDER = 8  # max keys per node


@dataclasses.dataclass
class _Node:
    keys: list[int] = dataclasses.field(default_factory=list)
    values: list[int] = dataclasses.field(default_factory=list)  # leaf payload slots
    children: list["_Node"] = dataclasses.field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTreeIndex:
    """Key → record-slot index; all comparisons through the core."""

    def __init__(self, core: CoreLike):
        self.core = core
        self.root = _Node()
        self.size = 0

    def _less(self, a: int, b: int) -> bool:
        return self.core.execute(Op.BLT, a, b) == 1

    def _equal(self, a: int, b: int) -> bool:
        return self.core.execute(Op.BEQ, a, b) == 1

    def _position(self, node: _Node, key: int) -> int:
        index = 0
        while index < len(node.keys) and self._less(node.keys[index], key):
            index += 1
        return index

    def insert(self, key: int, slot: int) -> None:
        """Insert or overwrite ``key`` pointing at record ``slot``."""
        root = self.root
        if len(root.keys) >= ORDER:
            new_root = _Node(children=[root])
            self._split_child(new_root, 0)
            self.root = new_root
        self._insert_nonfull(self.root, key, slot)

    def _split_child(self, parent: _Node, index: int) -> None:
        # Classic B-tree split with data in all nodes: keys and values
        # stay parallel on both leaf and internal nodes, and the median
        # (key, value) pair migrates up into the parent.
        child = parent.children[index]
        middle = len(child.keys) // 2
        separator = child.keys[middle]
        sep_value = child.values[middle]
        right = _Node(
            keys=child.keys[middle + 1:],
            values=child.values[middle + 1:],
            children=child.children[middle + 1:] if child.children else [],
        )
        child.keys = child.keys[:middle]
        child.values = child.values[:middle]
        if child.children:
            child.children = child.children[:middle + 1]
        parent.keys.insert(index, separator)
        parent.values.insert(index, sep_value)
        parent.children.insert(index + 1, right)

    def _insert_nonfull(self, node: _Node, key: int, slot: int) -> None:
        index = self._position(node, key)
        if index < len(node.keys) and self._equal(node.keys[index], key):
            node.values[index] = slot
            return
        if node.is_leaf:
            node.keys.insert(index, key)
            node.values.insert(index, slot)
            self.size += 1
            return
        child = node.children[index]
        if len(child.keys) >= ORDER:
            self._split_child(node, index)
            if self._less(node.keys[index], key):
                index += 1
            elif self._equal(node.keys[index], key):
                node.values[index] = slot
                return
        self._insert_nonfull(node.children[index], key, slot)

    def get(self, key: int) -> int | None:
        """Record slot for ``key``, or None if (apparently) absent."""
        node = self.root
        while True:
            index = self._position(node, key)
            if index < len(node.keys) and self._equal(node.keys[index], key):
                return node.values[index]
            if node.is_leaf:
                return None
            node = node.children[index]

    def items(self) -> Iterator[tuple[int, int]]:
        """In-order (key, slot) traversal — host-side, for invariants."""
        def walk(node: _Node) -> Iterator[tuple[int, int]]:
            if node.is_leaf:
                yield from zip(node.keys, node.values)
                return
            for index, (key, value) in enumerate(zip(node.keys, node.values)):
                yield from walk(node.children[index])
                yield (key, value)
            yield from walk(node.children[len(node.keys)])

        yield from walk(self.root)

    def check_order_invariant(self) -> bool:
        """Host-side structural check: in-order keys strictly ascend.

        This is the §7-style invariant one would compute "over a
        database record to check for its corruption before committing".
        """
        previous = None
        for key, _ in self.items():
            if previous is not None and key <= previous:
                return False
            previous = key
        return True


@dataclasses.dataclass
class Record:
    """One stored row; the embedded key doubles as a self-check."""

    key: int
    payload: tuple[int, ...]


class Replica:
    """One replica: the same logical table served by one core."""

    def __init__(self, core: CoreLike):
        self.core = core
        self.heap: list[Record] = []
        self.index = BTreeIndex(core)

    def insert(self, key: int, payload: tuple[int, ...]) -> None:
        """Append a record and index it on this replica's core."""
        slot = len(self.heap)
        # The stored record embeds its key: the natural self-check.
        self.heap.append(Record(key=key, payload=payload))
        self.index.insert(key, slot)

    def get(self, key: int) -> Record | None:
        """Serve one point query through this replica's index."""
        slot = self.index.get(key)
        if slot is None or not 0 <= slot < len(self.heap):
            return None
        return self.heap[slot]


class ReplicatedDb:
    """N replicas of the same table, each indexed on its own core."""

    def __init__(self, cores: list[CoreLike]):
        if not cores:
            raise ValueError("need at least one replica core")
        self.replicas = [Replica(core) for core in cores]

    def insert(self, key: int, payload: tuple[int, ...]) -> None:
        """Insert into every replica (each on its own core)."""
        for replica in self.replicas:
            replica.insert(key, payload)

    def query(self, key: int, replica_index: int) -> Record | None:
        """Serve a query from the chosen replica — §2's nondeterminism."""
        return self.replicas[replica_index % len(self.replicas)].get(key)


@dataclasses.dataclass(frozen=True)
class QueryStats:
    """Probe outcome counts for one replica."""

    total: int
    wrong: int          # record found but key mismatch (detected)
    missing: int        # key known present but not found (detected)

    @property
    def error_fraction(self) -> float:
        return (self.wrong + self.missing) / self.total if self.total else 0.0


def probe_replica(
    replica: Replica, keys: list[int]
) -> QueryStats:
    """Query known-present keys and classify outcomes."""
    wrong = missing = 0
    for key in keys:
        record = replica.get(key)
        if record is None:
            missing += 1
        elif record.key != key:
            wrong += 1
    return QueryStats(total=len(keys), wrong=wrong, missing=missing)


def database_workload(
    core: CoreLike, keys: list[int], probes: list[int]
) -> WorkloadResult:
    """Build a single-replica table and serve probes on one core."""
    replica = Replica(core)
    for key in keys:
        replica.insert(key, payload=(key, key ^ 0xDEAD))
    stats = probe_replica(replica, probes)
    ordered = replica.index.check_order_invariant()
    return WorkloadResult(
        name="database",
        output_digest=digest_ints(
            [record.key for record in replica.heap]
            + [stats.wrong, stats.missing]
        ),
        app_detected=stats.error_fraction > 0 or not ordered,
        detail=f"wrong={stats.wrong} missing={stats.missing} ordered={ordered}",
        units=len(probes),
    )
