"""AES-128 implemented from scratch, one S-box lookup at a time.

The paper's most striking anecdote (§2) is "a deterministic AES
mis-computation, which was 'self-inverting': encrypting and decrypting
on the same core yielded the identity function, but decryption
elsewhere yielded gibberish."  Reproducing that requires a *real* AES
whose table lookups and field multiplications run through the core's
crypto unit — this module is that implementation (FIPS-197, verified
against the standard test vectors in the test suite).

Layout: the 16-byte state is column-major (state[r + 4c]), matching
FIPS-197.  ShiftRows is wiring (a fixed byte permutation) and stays
host-side; SubBytes, MixColumns and AddRoundKey execute on the core.
"""

from __future__ import annotations

from repro.silicon.units import Op
from repro.workloads.base import CoreLike, WorkloadResult, digest_bytes

N_ROUNDS = 10
BLOCK_BYTES = 16

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)

_SHIFT_ROWS = tuple(
    (r + 4 * ((c + r) % 4)) for c in range(4) for r in range(4)
)
_INV_SHIFT_ROWS = tuple(_SHIFT_ROWS.index(i) for i in range(16))


# -- healthy-core fast path --------------------------------------------
#
# A healthy Core returns the golden result of every op and never draws
# from its rng, so an AES block on a healthy core is a pure function of
# (block, round_keys) — the per-op trip through Core.execute only
# maintains the ops_executed counter.  The campaign-scale experiments
# (E15/E16) encrypt/decrypt millions of blocks on healthy cores; the
# fast path below computes whole blocks from the same golden tables and
# credits the counter in one step.  Mercurial cores — even before
# defect onset — always take the per-op path, so defect behaviour and
# rng streams are untouched.  Exact op counts and results are pinned to
# the per-op path by tests/test_workload_crypto.py.

#: ops per expand_key: 40 words x 4 XOR + 10 RotWord steps x (4 SBOX + 1 XOR)
_EXPAND_OPS = 210
#: ops per block: AddRoundKey 16, SubBytes 16, MixColumns 128 per round
#: -> 16 + 9 * (16 + 128 + 16) + (16 + 16)
_BLOCK_OPS = 1488

_GF_TABLES: dict[int, list[int]] = {}
_MIX_ROWS: dict[tuple, tuple] = {}


def _gf_table(coefficient: int) -> list[int]:
    table = _GF_TABLES.get(coefficient)
    if table is None:
        from repro.silicon.golden import GOLDEN

        gfmul = GOLDEN[Op.GFMUL]
        table = _GF_TABLES[coefficient] = [
            gfmul(coefficient, b) for b in range(256)
        ]
    return table


def _mix_rows(matrix: tuple) -> tuple:
    rows = _MIX_ROWS.get(matrix)
    if rows is None:
        rows = _MIX_ROWS[matrix] = tuple(
            tuple(_gf_table(c) for c in row) for row in matrix
        )
    return rows


def _fast_core(core: CoreLike) -> bool:
    from repro.silicon.core import Core
    from repro.silicon.golden import golden_cache_enabled

    return (
        type(core) is Core
        and not core.is_mercurial
        and core.online
        and golden_cache_enabled()
    )


def _fast_mix(state: list[int], rows: tuple) -> list[int]:
    out = [0] * 16
    for c in range(4):
        base = 4 * c
        b0, b1, b2, b3 = state[base:base + 4]
        for r, (t0, t1, t2, t3) in enumerate(rows):
            out[base + r] = t0[b0] ^ t1[b1] ^ t2[b2] ^ t3[b3]
    return out


def _fast_expand_key(key: bytes) -> list[bytes]:
    from repro.silicon.golden import AES_SBOX

    words = [list(key[4 * i:4 * i + 4]) for i in range(4)]
    for i in range(4, 4 * (N_ROUNDS + 1)):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [AES_SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [
        bytes(sum((words[4 * r + c] for c in range(4)), []))
        for r in range(N_ROUNDS + 1)
    ]


def _fast_encrypt_block(block: bytes, round_keys: list[bytes]) -> bytes:
    from repro.silicon.golden import AES_SBOX

    rows = _mix_rows(_MIX)
    state = [b ^ k for b, k in zip(block, round_keys[0])]
    for round_index in range(1, N_ROUNDS):
        state = [AES_SBOX[b] for b in state]
        state = [state[j] for j in _SHIFT_ROWS]
        state = _fast_mix(state, rows)
        state = [a ^ k for a, k in zip(state, round_keys[round_index])]
    state = [AES_SBOX[b] for b in state]
    state = [state[j] for j in _SHIFT_ROWS]
    return bytes(a ^ k for a, k in zip(state, round_keys[N_ROUNDS]))


def _fast_decrypt_block(block: bytes, round_keys: list[bytes]) -> bytes:
    from repro.silicon.golden import AES_INV_SBOX

    rows = _mix_rows(_INV_MIX)
    state = [b ^ k for b, k in zip(block, round_keys[N_ROUNDS])]
    for round_index in range(N_ROUNDS - 1, 0, -1):
        state = [state[j] for j in _INV_SHIFT_ROWS]
        state = [AES_INV_SBOX[b] for b in state]
        state = [a ^ k for a, k in zip(state, round_keys[round_index])]
        state = _fast_mix(state, rows)
    state = [state[j] for j in _INV_SHIFT_ROWS]
    state = [AES_INV_SBOX[b] for b in state]
    return bytes(a ^ k for a, k in zip(state, round_keys[0]))


def expand_key(core: CoreLike, key: bytes) -> list[bytes]:
    """FIPS-197 key schedule: 11 round keys from a 16-byte key."""
    if len(key) != 16:
        raise ValueError("AES-128 needs a 16-byte key")
    if _fast_core(core):
        core.ops_executed += _EXPAND_OPS
        return _fast_expand_key(key)
    words = [list(key[4 * i:4 * i + 4]) for i in range(4)]
    for i in range(4, 4 * (N_ROUNDS + 1)):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]  # RotWord (wiring)
            temp = [core.execute(Op.SBOX, b) & 0xFF for b in temp]  # SubWord
            temp[0] = core.execute(Op.XOR, temp[0], _RCON[i // 4 - 1]) & 0xFF
        words.append(
            [core.execute(Op.XOR, a, b) & 0xFF
             for a, b in zip(words[i - 4], temp)]
        )
    return [
        bytes(sum((words[4 * r + c] for c in range(4)), []))
        for r in range(N_ROUNDS + 1)
    ]


def _add_round_key(core: CoreLike, state: list[int], round_key: bytes) -> list[int]:
    # The AES datapath is byte-wide: results are truncated to 8 bits
    # even when a defect flips a higher bit of the 64-bit ALU result.
    return [core.execute(Op.XOR, s, k) & 0xFF for s, k in zip(state, round_key)]


def _sub_bytes(core: CoreLike, state: list[int]) -> list[int]:
    return [core.execute(Op.SBOX, b) & 0xFF for b in state]


def _inv_sub_bytes(core: CoreLike, state: list[int]) -> list[int]:
    return [core.execute(Op.INV_SBOX, b) & 0xFF for b in state]


def _shift_rows(state: list[int]) -> list[int]:
    return [state[_SHIFT_ROWS[i]] for i in range(16)]


def _inv_shift_rows(state: list[int]) -> list[int]:
    return [state[_INV_SHIFT_ROWS[i]] for i in range(16)]


def _mix_single_column(core: CoreLike, col: list[int], matrix: tuple) -> list[int]:
    out = []
    for row in matrix:
        acc = 0
        for coefficient, byte in zip(row, col):
            term = core.execute(Op.GFMUL, coefficient, byte)
            acc = core.execute(Op.XOR, acc, term) & 0xFF
        out.append(acc)
    return out


_MIX = ((2, 3, 1, 1), (1, 2, 3, 1), (1, 1, 2, 3), (3, 1, 1, 2))
_INV_MIX = ((14, 11, 13, 9), (9, 14, 11, 13), (13, 9, 14, 11), (11, 13, 9, 14))


def _mix_columns(core: CoreLike, state: list[int], matrix: tuple) -> list[int]:
    out = [0] * 16
    for c in range(4):
        column = state[4 * c:4 * c + 4]
        out[4 * c:4 * c + 4] = _mix_single_column(core, column, matrix)
    return out


def encrypt_block(core: CoreLike, block: bytes, round_keys: list[bytes]) -> bytes:
    """Encrypt one 16-byte block."""
    if len(block) != BLOCK_BYTES:
        raise ValueError("block must be 16 bytes")
    if _fast_core(core):
        core.ops_executed += _BLOCK_OPS
        return _fast_encrypt_block(block, round_keys)
    state = _add_round_key(core, list(block), round_keys[0])
    for round_index in range(1, N_ROUNDS):
        state = _sub_bytes(core, state)
        state = _shift_rows(state)
        state = _mix_columns(core, state, _MIX)
        state = _add_round_key(core, state, round_keys[round_index])
    state = _sub_bytes(core, state)
    state = _shift_rows(state)
    state = _add_round_key(core, state, round_keys[N_ROUNDS])
    return bytes(state)


def decrypt_block(core: CoreLike, block: bytes, round_keys: list[bytes]) -> bytes:
    """Decrypt one 16-byte block (inverse cipher, FIPS-197 §5.3)."""
    if len(block) != BLOCK_BYTES:
        raise ValueError("block must be 16 bytes")
    if _fast_core(core):
        core.ops_executed += _BLOCK_OPS
        return _fast_decrypt_block(block, round_keys)
    state = _add_round_key(core, list(block), round_keys[N_ROUNDS])
    for round_index in range(N_ROUNDS - 1, 0, -1):
        state = _inv_shift_rows(state)
        state = _inv_sub_bytes(core, state)
        state = _add_round_key(core, state, round_keys[round_index])
        state = _mix_columns(core, state, _INV_MIX)
    state = _inv_shift_rows(state)
    state = _inv_sub_bytes(core, state)
    state = _add_round_key(core, state, round_keys[0])
    return bytes(state)


def _pad(data: bytes) -> bytes:
    """PKCS#7."""
    pad = BLOCK_BYTES - (len(data) % BLOCK_BYTES)
    return data + bytes([pad] * pad)


def _unpad(data: bytes) -> bytes:
    if not data or len(data) % BLOCK_BYTES:
        raise ValueError("bad padded length")
    pad = data[-1]
    if not 1 <= pad <= BLOCK_BYTES or data[-pad:] != bytes([pad] * pad):
        raise ValueError("bad padding")
    return data[:-pad]


def encrypt_ecb(core: CoreLike, data: bytes, key: bytes) -> bytes:
    """ECB over PKCS#7-padded data (mode kept simple on purpose —
    the experiments study the block function, not mode security)."""
    round_keys = expand_key(core, key)
    padded = _pad(data)
    out = bytearray()
    for start in range(0, len(padded), BLOCK_BYTES):
        out.extend(encrypt_block(core, padded[start:start + BLOCK_BYTES], round_keys))
    return bytes(out)


def decrypt_ecb(core: CoreLike, data: bytes, key: bytes) -> bytes:
    """Inverse of :func:`encrypt_ecb`; raises ValueError on bad padding."""
    round_keys = expand_key(core, key)
    out = bytearray()
    for start in range(0, len(data), BLOCK_BYTES):
        out.extend(decrypt_block(core, data[start:start + BLOCK_BYTES], round_keys))
    return _unpad(bytes(out))


def crypto_workload(core: CoreLike, data: bytes, key: bytes) -> WorkloadResult:
    """Encrypt-decrypt round trip with an identity self-check.

    This is precisely the check that *fails to detect* the self-
    inverting defect: the round trip on the defective core is the
    identity, so ``app_detected`` stays False even though the
    ciphertext is wrong for the rest of the world.  Experiment E3
    exploits exactly this blindness.
    """
    ciphertext = encrypt_ecb(core, data, key)
    round_trip = decrypt_ecb(core, ciphertext, key)
    return WorkloadResult(
        name="crypto",
        output_digest=digest_bytes(ciphertext),
        app_detected=round_trip != data,
        units=len(ciphertext) // BLOCK_BYTES,
    )
