"""Vector kernels: the SIMD-shaped half of the §5 shared-logic story.

These kernels drive the vector unit lane-wise through ``VLEN``-wide
tuples.  A defect on the ``SHUFFLE_NETWORK`` logic block corrupts both
these kernels *and* block copies — the correlated failure the paper
root-caused to shared hardware logic.
"""

from __future__ import annotations

from repro.silicon.isa import VLEN
from repro.silicon.units import Op
from repro.workloads.base import CoreLike, WorkloadResult, digest_ints

MASK64 = (1 << 64) - 1


def _chunks(values: list[int], width: int = VLEN):
    for start in range(0, len(values), width):
        chunk = values[start:start + width]
        if len(chunk) < width:
            chunk = chunk + [0] * (width - len(chunk))
        yield tuple(chunk)


def vsum(core: CoreLike, values: list[int]) -> int:
    """Horizontal sum via the vector unit."""
    total = 0
    for chunk in _chunks(values):
        total = core.execute(Op.ADD, total, core.execute(Op.VSUM, chunk))
    return total


def dot(core: CoreLike, xs: list[int], ys: list[int]) -> int:
    """Dot product via lane-wise multiply + horizontal add."""
    if len(xs) != len(ys):
        raise ValueError("length mismatch")
    total = 0
    for cx, cy in zip(_chunks(xs), _chunks(ys)):
        total = core.execute(Op.ADD, total, core.execute(Op.VDOT, cx, cy))
    return total


def axpy(core: CoreLike, alpha: int, xs: list[int], ys: list[int]) -> list[int]:
    """y <- alpha*x + y over vector lanes."""
    if len(xs) != len(ys):
        raise ValueError("length mismatch")
    avec = (alpha,) * VLEN
    out: list[int] = []
    for cx, cy in zip(_chunks(xs), _chunks(ys)):
        scaled = core.execute(Op.VMUL, cx, avec)
        out.extend(core.execute(Op.VADD, scaled, cy))
    return out[: len(xs)]


def xor_fold(core: CoreLike, values: list[int]) -> int:
    """Reduce a buffer with lane-wise XOR then fold lanes together."""
    accumulator = (0,) * VLEN
    for chunk in _chunks(values):
        accumulator = core.execute(Op.VXOR, accumulator, chunk)
    folded = 0
    for lane in accumulator:
        folded = core.execute(Op.XOR, folded, lane)
    return folded


def vector_workload(core: CoreLike, values: list[int]) -> WorkloadResult:
    """Dot-product work with a scalar-recompute self-check.

    The self-check recomputes the dot product with *scalar* ops.  A
    vector-unit defect makes the two disagree (caught); a defect in
    shared arithmetic logic corrupts both paths identically (silent) —
    exactly the §5 subtlety about which unit a computation really uses.
    """
    ys = values[::-1]
    vector_result = dot(core, values, ys)
    scalar_result = 0
    for x, y in zip(values, ys):
        product = core.execute(Op.MUL, x, y)
        scalar_result = core.execute(Op.ADD, scalar_result, product)
    return WorkloadResult(
        name="vectorops",
        output_digest=digest_ints([vector_result & MASK64]),
        app_detected=vector_result != scalar_result,
        units=len(values),
    )
