"""Detection economics: the §4/§6 three-way tradeoff, as a model.

"Mercurial-core detection is challenging because it inherently involves
a tradeoff between false negatives or delayed positives (leading to
failures and data corruption), false positives (leading to wasted cores
that are inappropriately isolated), and the non-trivial costs of the
detection processes themselves." (§6)

:class:`ScreeningEconomics` turns a screening policy (cadence, effort,
environment boost) plus a defect-rate distribution into: expected
time-to-detect, expected corrupt results emitted before detection, and
the compute bill — the quantities a fleet operator actually budgets.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np


@dataclasses.dataclass(frozen=True)
class ScreeningPolicy:
    """One point in screening-policy space."""

    period_days: float          # how often each core is screened
    corpus_ops: float           # effort per screen
    env_boost: float = 1.0      # offline stress multiplier (1.0 = online)
    drain_coreseconds: float = 0.0  # per screen (offline only)

    def detection_probability(self, rate_per_op: float) -> float:
        """P(one screen catches a defect of the given observable rate)."""
        return 1.0 - math.exp(-rate_per_op * self.env_boost * self.corpus_ops)

    def expected_screens_to_detect(self, rate_per_op: float) -> float:
        p = self.detection_probability(rate_per_op)
        if p <= 0.0:
            return math.inf
        return 1.0 / p

    def expected_days_to_detect(self, rate_per_op: float) -> float:
        """Geometric waiting time in wall-clock days."""
        screens = self.expected_screens_to_detect(rate_per_op)
        if math.isinf(screens):
            return math.inf
        # On average the defect onsets mid-period, then waits.
        return (screens - 0.5) * self.period_days

    def compute_cost_per_coreday(self, ops_per_coreday: float = 5e9) -> float:
        """Fraction of a core's capacity spent being screened."""
        screen_ops_per_day = self.corpus_ops / self.period_days
        drain_ops = (
            self.drain_coreseconds / 86400.0 * ops_per_coreday / self.period_days
        )
        return (screen_ops_per_day + drain_ops) / ops_per_coreday


@dataclasses.dataclass(frozen=True)
class ExposureEstimate:
    """Damage before detection for one defect rate under one policy."""

    rate_per_op: float
    days_to_detect: float
    corruptions_before_detection: float


def exposure_before_detection(
    policy: ScreeningPolicy,
    rate_per_op: float,
    exposed_ops_per_day: float = 2e7,
) -> ExposureEstimate:
    """Corrupt results the fleet absorbs before the screen catches on."""
    days = policy.expected_days_to_detect(rate_per_op)
    corruptions = (
        math.inf if math.isinf(days)
        else rate_per_op * exposed_ops_per_day * days
    )
    return ExposureEstimate(rate_per_op, days, corruptions)


def policy_frontier(
    policies: list[ScreeningPolicy],
    rates_per_op: list[float],
    exposed_ops_per_day: float = 2e7,
) -> list[dict]:
    """Evaluate policies over a defect-rate distribution.

    Returns one row per policy with mean/median exposure and cost —
    the raw material of the §6 tradeoff table (experiment E9).
    """
    rows = []
    for policy in policies:
        exposures = [
            exposure_before_detection(policy, rate, exposed_ops_per_day)
            for rate in rates_per_op
        ]
        finite_days = [e.days_to_detect for e in exposures
                       if not math.isinf(e.days_to_detect)]
        detected_fraction = len(finite_days) / len(exposures) if exposures else 0.0
        rows.append(
            {
                "policy": policy,
                "mean_days_to_detect": (
                    float(np.mean(finite_days)) if finite_days else math.inf
                ),
                "median_days_to_detect": (
                    float(np.median(finite_days)) if finite_days else math.inf
                ),
                "detectable_fraction": detected_fraction,
                "compute_cost_fraction": policy.compute_cost_per_coreday(),
            }
        )
    return rows


def false_positive_cost(
    false_positive_rate_per_screen: float,
    policy: ScreeningPolicy,
    n_cores: int,
    horizon_days: float,
) -> float:
    """Healthy core-days stranded by false positives over a horizon.

    Our screening tests are exact-comparison, so their intrinsic FP rate
    is ~0; this models flaky-test or marginal-environment FPs, which §6
    worries about ("wasted cores that are inappropriately isolated").
    """
    screens = n_cores * horizon_days / policy.period_days
    expected_fps = screens * false_positive_rate_per_screen
    # A falsely-quarantined core is stranded until exonerated; assume a
    # retest cycle later (one period) it returns.
    return expected_fps * policy.period_days
