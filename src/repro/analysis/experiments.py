"""Experiment runners: one function per DESIGN.md experiment ID.

Each runner reproduces one figure or claim from the paper and returns a
dict of measured quantities plus a ``rendered`` text block (the "same
rows/series the paper reports").  Benchmarks wrap these functions;
integration tests assert on their returned shapes (who wins, by what
factor, which direction a series moves).

Scale: runners take explicit size parameters with defaults small enough
for CI; benchmarks pass larger values.
"""

from __future__ import annotations

import dataclasses
import functools
import math
from typing import Callable

import numpy as np

from repro.analysis.economics import ScreeningPolicy, policy_frontier
from repro.analysis.figures import render_fig1, render_table
from repro.analysis.stats import (
    orders_of_magnitude_spread,
    poisson_rate_ci,
    trend_slope,
)
from repro.core.events import EventKind, Reporter
from repro.core.metrics import (
    confusion,
    incidence_per_kmachine,
    onset_stats,
    publish_confusion,
)
from repro.core.report import Complaint, CoreComplaintService
from repro.core.taxonomy import Symptom
from repro.core.triage import HumanTriageModel, TriageOutcome
from repro.detection.corpus import TestCorpus
from repro.detection.fleetscreen import (
    DistilledBattery,
    RideAlongCampaign,
    RideAlongConfig,
    RideAlongScreener,
    distill,
    full_battery,
)
from repro.detection.offline import OfflineScreener, OfflineScreenerConfig
from repro.detection.online import OnlineScreener
from repro.detection.quarantine import CoreQuarantine, MachineQuarantine
from repro.engine import Trial, run_tasks, run_trials
from repro.fleet.population import FleetBuilder, ground_truth_map
from repro.fleet.product import DEFAULT_PRODUCTS
from repro.fleet.scheduler import FleetScheduler, Task
from repro.fleet.simulator import FleetSimulator, SimulatorConfig
from repro.obs.forensics import latency_percentiles
from repro.mitigation.checkpoint import CheckpointRuntime
from repro.mitigation.instrcheck import (
    ARMS as INSTRCHECK_ARMS,
    InstrCheckCampaign,
    InstrCheckConfig,
    InstrCheckScorecard,
    build_instrcheck_fleet,
)
from repro.serving import (
    CampaignConfig,
    ChaosSchedule,
    HardeningConfig,
    ScaleConfig,
    ScaleHardening,
    ServeScaleCampaign,
    ServingCampaign,
    build_scale_fleet,
    build_serving_fleet,
)
from repro.storage import (
    StorageCampaign,
    StorageCampaignConfig,
    StorageProtections,
    build_storage_fleet,
)
from repro.mitigation.redundancy import (
    DmrExecutor,
    RedundancyExhaustedError,
    TmrExecutor,
)
from repro.mitigation.resilient.matfact import abft_matmul, checksummed_lu, matmul
from repro.mitigation.resilient.sorting import resilient_sort
from repro.mitigation.selfcheck import CheckedCipher, SelfCheckError
from repro.silicon.aging import AgingProfile, WeibullOnset
from repro.silicon.catalog import named_case, sample_core_defects, sample_defect
from repro.silicon.core import Core
from repro.silicon.defects import SharedLogicDefect, StuckBitDefect
from repro.silicon.environment import DvfsTable, NOMINAL
from repro.silicon.errors import MachineCheckError
from repro.silicon.sensitivity import (
    FrequencySensitivity,
    VoltageMarginSensitivity,
)
from repro.silicon.units import FunctionalUnit, Op
from repro.workloads.base import OpCountingCore, run_with_oracle
from repro.workloads.copying import copy_words
from repro.workloads.crypto import decrypt_ecb, encrypt_ecb
from repro.workloads.database import Replica, probe_replica
from repro.workloads.filesystem import FsError, MiniFs
from repro.workloads.generator import STANDARD_MIX, blended_op_mix
from repro.workloads.vectorops import xor_fold


def _healthy(core_id: str, seed: int = 0) -> Core:
    return Core(core_id, rng=np.random.default_rng(seed))


def _force_active(defect) -> None:
    """Zero a sampled defect's onset so it is failing *today*.

    Case-study experiments sample defect shapes from the catalog but
    study cores that are already symptomatic, so latency is collapsed
    while escalation is preserved.
    """
    defect.aging = AgingProfile(
        onset_days=0.0,
        escalation_per_year=defect.aging.escalation_per_year,
        saturation=defect.aging.saturation,
    )


def _pool(n: int, seed: int = 100) -> list[Core]:
    return [_healthy(f"pool/c{i:02d}", seed + i) for i in range(n)]


# ---------------------------------------------------------------------
# F1 — Figure 1: reported CEE rates (normalized)
# ---------------------------------------------------------------------

def run_fig1(
    n_machines: int = 8000,
    horizon_days: float = 540.0,
    warmup_days: float = 240.0,
    prevalence_scale: float = 8.0,
    bucket_days: float = 60.0,
    seed: int = 42,
) -> dict:
    """Fig. 1: user- vs automatically-reported CEE rates over time.

    ``prevalence_scale`` densifies the mercurial population so a
    simulable fleet (10^4 machines, not the paper's 10^5+) yields a
    smooth series; the figure is normalized, so this only reduces
    variance.  Expected shape: automated series gradually increasing,
    user series roughly flat.
    """
    products = tuple(
        dataclasses.replace(p, core_prevalence=p.core_prevalence * prevalence_scale)
        for p in DEFAULT_PRODUCTS
    )
    builder = FleetBuilder(
        products=products,
        seed=seed,
        deployment_window=(-800.0, horizon_days),
        technology_refresh=True,
    )
    machines, truth = builder.build(n_machines)
    simulator = FleetSimulator(
        machines,
        truth,
        SimulatorConfig(horizon_days=horizon_days, warmup_days=warmup_days),
        seed=seed + 1,
    )
    result = simulator.run()
    auto = result.cee_report_series(Reporter.AUTOMATED, bucket_days)
    human = result.cee_report_series(Reporter.HUMAN, bucket_days)
    return {
        "auto_series": auto,
        "human_series": human,
        "auto_slope": trend_slope(auto),
        "human_slope": trend_slope(human),
        "n_mercurial": truth.n_mercurial,
        "quarantined": len(result.quarantined_cores),
        "rendered": render_fig1(auto, human),
    }


# ---------------------------------------------------------------------
# E1 — incidence: a few mercurial cores per several thousand machines
# ---------------------------------------------------------------------

def _incidence_trial(
    trial: Trial, *, n_machines: int, horizon_days: float,
    legacy: bool = False,
) -> dict:
    """One seeded E1 campaign; module-level so the pool can pickle it.

    ``legacy=True`` runs the identical trial on the preserved serial
    paths (loop builder, scalar tick) — the bench harness's baseline.
    The optimized path runs entirely on the columnar substrate (no
    ``Core`` objects at all); it is bit-identical to the object
    vectorized path it replaced, so E1 results are unchanged.
    """
    builder = FleetBuilder(seed=trial.seed, deployment_window=(-900.0, 0.0))
    if legacy:
        machines, truth = builder.build_legacy(n_machines)
        simulator = FleetSimulator(
            machines, truth,
            SimulatorConfig(
                horizon_days=horizon_days, warmup_days=0.0,
                vectorized=False,
            ),
            seed=trial.seed + 1,
        )
        truth_map = ground_truth_map(machines)
    else:
        columns = builder.build_columns(n_machines)
        simulator = FleetSimulator(
            columns,
            config=SimulatorConfig(
                horizon_days=horizon_days, warmup_days=0.0,
            ),
            seed=trial.seed + 1,
        )
        truth = simulator.truth
        truth_map = columns.ground_truth_map()
    result = simulator.run()
    detection = confusion(truth_map, result.flagged())
    publish_confusion(detection, detector="fleet")
    return {
        "trial": trial.index,
        "seed": trial.seed,
        "n_mercurial": truth.n_mercurial,
        "true_positives": detection.true_positives,
        "false_positives": detection.false_positives,
        "false_negatives": detection.false_negatives,
        "truth_per_kmachine": incidence_per_kmachine(
            truth.n_mercurial, n_machines
        ),
        "detected_per_kmachine": incidence_per_kmachine(
            detection.true_positives, n_machines
        ),
        "precision": detection.precision,
        "recall": detection.recall,
    }


def run_incidence(
    n_machines: int = 12000,
    seed: int = 7,
    horizon_days: float = 270.0,
    n_trials: int = 1,
    workers: int | None = None,
) -> dict:
    """E1: ground-truth and detected incidence per 1000 machines.

    With ``n_trials == 1`` (the default) this is the single campaign it
    always was, seeded directly from ``seed``.  With more trials, the
    engine fans seeded campaigns out over ``workers`` processes and the
    headline numbers become trial means (precision/recall pooled over
    the summed confusion counts).  Results are identical for any
    ``workers`` value.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    trial_fn = functools.partial(
        _incidence_trial, n_machines=n_machines, horizon_days=horizon_days
    )
    if n_trials == 1:
        per_trial = [trial_fn(Trial(0, seed))]
    else:
        per_trial = run_trials(
            trial_fn, n_trials, seed=seed, workers=workers
        )
    truth_rate = float(
        np.mean([t["truth_per_kmachine"] for t in per_trial])
    )
    detected_rate = float(
        np.mean([t["detected_per_kmachine"] for t in per_trial])
    )
    tp = sum(t["true_positives"] for t in per_trial)
    fp = sum(t["false_positives"] for t in per_trial)
    fn = sum(t["false_negatives"] for t in per_trial)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    total_mercurial = sum(t["n_mercurial"] for t in per_trial)
    estimate = poisson_rate_ci(
        total_mercurial, n_trials * n_machines / 1000.0
    )
    rendered = render_table(
        ["quantity", "value"],
        [
            ["machines", n_machines],
            ["trials", n_trials],
            ["mercurial cores (truth)", total_mercurial],
            ["per 1000 machines (truth)", f"{truth_rate:.2f}"],
            ["95% CI", f"[{estimate.lower:.2f}, {estimate.upper:.2f}]"],
            ["per 1000 machines (detected)", f"{detected_rate:.2f}"],
            ["detector precision", f"{precision:.2f}"],
            ["detector recall", f"{recall:.2f}"],
        ],
        title="E1: mercurial-core incidence",
    )
    return {
        "truth_per_kmachine": truth_rate,
        "detected_per_kmachine": detected_rate,
        "precision": precision,
        "recall": recall,
        "n_trials": n_trials,
        "per_trial": per_trial,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E2 — symptom classes in increasing order of risk
# ---------------------------------------------------------------------

def run_symptoms(n_cores: int = 30, seed: int = 3) -> dict:
    """E2: classify what sampled defective cores do to real workloads.

    Each sampled mercurial core runs the standard workload mix; every
    unit of work is also run on a reference core so silent corruptions
    are visible to the experimenter (not to the application).
    """
    rng = np.random.default_rng(seed)
    counts = {symptom: 0 for symptom in Symptom}
    per_core_rates = []
    for index in range(n_cores):
        defects = sample_core_defects(rng, f"e2/c{index}")
        for defect in defects:
            _force_active(defect)
        core = Core(
            f"e2/c{index:03d}", defects=defects,
            rng=np.random.default_rng(seed + index),
        )
        reference = _healthy(f"e2ref/c{index:03d}")
        corruptions = 0
        for spec in STANDARD_MIX:
            work = spec.build(seed * 1000 + index)
            try:
                comparison = run_with_oracle(work, core, reference)
            except MachineCheckError:
                counts[Symptom.MACHINE_CHECK] += 1
                continue
            suspect = comparison.suspect
            if suspect.crashed:
                counts[Symptom.WRONG_ANSWER_IMMEDIATE] += 1
            elif suspect.app_detected:
                counts[Symptom.WRONG_ANSWER_IMMEDIATE] += 1
            elif comparison.outputs_differ:
                counts[Symptom.WRONG_ANSWER_UNDETECTED] += 1
            if comparison.outputs_differ:
                corruptions += 1
        per_core_rates.append(core.mean_rate(blended_op_mix()))
    rendered = render_table(
        ["symptom (risk rank)", "observations"],
        [
            [f"{s.value} ({s.risk_rank})", counts[s]]
            for s in Symptom
        ],
        title="E2: symptom classes over sampled mercurial cores",
    )
    return {"counts": counts, "per_core_rates": per_core_rates, "rendered": rendered}


# ---------------------------------------------------------------------
# E3 — the self-inverting AES defect
# ---------------------------------------------------------------------

def run_aes_case(seed: int = 5) -> dict:
    """E3: same-core round trip = identity; elsewhere = gibberish."""
    defective = Core(
        "e3/bad", defects=named_case("self_inverting_aes"),
        rng=np.random.default_rng(seed),
    )
    healthy = _healthy("e3/good")
    key = bytes(range(16))
    message = b"mercurial cores corrupt silently" * 4
    ct_bad = encrypt_ecb(defective, message, key)
    ct_good = encrypt_ecb(healthy, message, key)
    same_core_roundtrip = decrypt_ecb(defective, ct_bad, key) == message
    try:
        elsewhere = decrypt_ecb(healthy, ct_bad, key)
        cross_core_garbage = elsewhere != message
    except ValueError:
        cross_core_garbage = True  # even the padding was destroyed
    # The naive self-check is blind; the cross-check corpus test is not.
    corpus = TestCorpus.standard(seeds=(seed,))
    screen = corpus.screen(defective)
    # Self-checking cipher with cross-core verification catches it too.
    checked = CheckedCipher(defective, verify_core=healthy)
    try:
        checked.encrypt(message, key)
        cross_core_selfcheck_caught = False
    except SelfCheckError:
        cross_core_selfcheck_caught = True
    rendered = render_table(
        ["observation", "result"],
        [
            ["ciphertext differs from healthy", ct_bad != ct_good],
            ["same-core encrypt+decrypt == identity", same_core_roundtrip],
            ["decrypt elsewhere yields gibberish", cross_core_garbage],
            ["corpus cross-check catches core", screen.confessed],
            ["cross-core CheckedCipher catches", cross_core_selfcheck_caught],
        ],
        title="E3: deterministic self-inverting AES miscomputation",
    )
    return {
        "ciphertext_differs": ct_bad != ct_good,
        "same_core_roundtrip_identity": same_core_roundtrip,
        "cross_core_garbage": cross_core_garbage,
        "corpus_catches": screen.confessed,
        "checked_cipher_catches": cross_core_selfcheck_caught,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E4 — propagation case studies
# ---------------------------------------------------------------------

def run_propagation(seed: int = 11, n_strings: int = 300) -> dict:
    """E4: fixed-position bit flips, per-replica DB corruption, GC loss."""
    # (a) repeated bit-flips at a particular bit position
    flipper = Core(
        "e4/flip", defects=named_case("string_bit_flipper"),
        rng=np.random.default_rng(seed),
    )
    rng = np.random.default_rng(seed)
    flip_positions: list[int] = []
    for _ in range(n_strings):
        words = [int(x) for x in rng.integers(0, 2**60, size=32)]
        copied = copy_words(flipper, words)
        for original, observed in zip(words, copied):
            delta = original ^ observed
            if delta:
                flip_positions.append(delta.bit_length() - 1)
    distinct_positions = set(flip_positions)

    # (b) database replica nondeterminism
    keys = [int(x) for x in rng.integers(0, 2**40, size=400)]
    bad_core = Core(
        "e4/db", defects=named_case("comparator_flip"),
        rng=np.random.default_rng(seed + 1),
    )
    replicas = [Replica(_healthy("e4/r0")), Replica(bad_core),
                Replica(_healthy("e4/r2"))]
    for key in keys:
        for replica in replicas:
            replica.insert(key, payload=(key,))
    probes = keys[::2]
    stats = [probe_replica(replica, probes) for replica in replicas]
    replica_errors = [s.error_fraction for s in stats]

    # (c) GC losing live data
    gc_core = Core(
        "e4/gc",
        defects=[StuckBitDefect("gcflip", bit=3, mode="flip", base_rate=6e-3,
                                unit=FunctionalUnit.LOAD_STORE)],
        rng=np.random.default_rng(seed + 2),
    )
    fs = MiniFs(gc_core, n_blocks=1024)
    file_data = {
        f"f{i}": bytes(rng.integers(0, 256, size=300, dtype=np.uint8))
        for i in range(12)
    }
    for name, data in file_data.items():
        fs.write_file(name, data)
    for _ in range(6):
        fs.gc()
    late_detected_losses = 0
    for name, data in file_data.items():
        try:
            if fs.read_file(name) != data:
                late_detected_losses += 1
        except FsError:
            late_detected_losses += 1
    rendered = render_table(
        ["case", "observation"],
        [
            ["bit-flip positions seen", sorted(distinct_positions)],
            ["flips observed", len(flip_positions)],
            ["replica error fractions", [f"{e:.3f}" for e in replica_errors]],
            ["GC live blocks lost", fs.lost_blocks],
            ["files lost (found at read time)", late_detected_losses],
        ],
        title="E4: corruption propagation case studies",
    )
    return {
        "flip_positions": distinct_positions,
        "n_flips": len(flip_positions),
        "replica_errors": replica_errors,
        "gc_lost_blocks": fs.lost_blocks,
        "late_detected_losses": late_detected_losses,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E5 — the factor-of-two / factor-of-three redundancy bill
# ---------------------------------------------------------------------

def run_redundancy_cost(seed: int = 13, n_units: int = 6) -> dict:
    """E5: measured op-cost of DMR and TMR vs unchecked execution."""
    spec = STANDARD_MIX[0]  # hashing: deterministic, cheap

    def measure(execute: Callable[[list[OpCountingCore]], None], n_cores: int) -> int:
        counters = [
            OpCountingCore(_healthy(f"e5/c{i}", seed + i)) for i in range(n_cores)
        ]
        execute(counters)
        return sum(c.total_ops for c in counters)

    def run_unchecked(cores: list[OpCountingCore]) -> None:
        for unit in range(n_units):
            spec.build(seed + unit)(cores[0])

    def run_dmr(cores: list[OpCountingCore]) -> None:
        executor = DmrExecutor(cores)
        for unit in range(n_units):
            executor.run(spec.build(seed + unit))

    def run_tmr(cores: list[OpCountingCore]) -> None:
        executor = TmrExecutor(cores)
        for unit in range(n_units):
            executor.run(spec.build(seed + unit))

    base = measure(run_unchecked, 1)
    dmr = measure(run_dmr, 2)
    tmr = measure(run_tmr, 3)
    rendered = render_table(
        ["mode", "ops", "factor"],
        [
            ["unchecked", base, "1.00x"],
            ["DMR (detect)", dmr, f"{dmr / base:.2f}x"],
            ["TMR (correct)", tmr, f"{tmr / base:.2f}x"],
        ],
        title="E5: redundant-execution cost (§3's 2x / 3x)",
    )
    return {
        "base_ops": base,
        "dmr_factor": dmr / base,
        "tmr_factor": tmr / base,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E6 — rates vary by many orders of magnitude
# ---------------------------------------------------------------------

def run_rate_spread(n_defects: int = 200, seed: int = 17) -> dict:
    """E6: observable per-op corruption rates across sampled defects."""
    rng = np.random.default_rng(seed)
    mix = blended_op_mix()
    rates = []
    for index in range(n_defects):
        defect = sample_defect(rng, f"e6/d{index}")
        rate = defect.mean_rate(mix, NOMINAL, age_days=1500.0)
        if rate > 0:
            rates.append(rate)
    spread = orders_of_magnitude_spread(rates)
    quantiles = np.quantile(rates, [0.05, 0.5, 0.95])
    rendered = render_table(
        ["quantity", "value"],
        [
            ["defects sampled", n_defects],
            ["active under mix", len(rates)],
            ["p5 rate/op", f"{quantiles[0]:.2e}"],
            ["median rate/op", f"{quantiles[1]:.2e}"],
            ["p95 rate/op", f"{quantiles[2]:.2e}"],
            ["spread (orders of magnitude)", f"{spread:.1f}"],
        ],
        title="E6: per-core corruption-rate heterogeneity",
    )
    return {"rates": rates, "spread_orders": spread, "rendered": rendered}


# ---------------------------------------------------------------------
# E7 — f/V/T sensitivity and the shared copy/vector logic
# ---------------------------------------------------------------------

def run_fvt(seed: int = 19) -> dict:
    """E7: rate vs DVFS state; the low-frequency anomaly; shared logic."""
    table = DvfsTable()
    mix = blended_op_mix()
    freq_defect = StuckBitDefect(
        "e7/freq", bit=11, base_rate=1e-6,
        unit=FunctionalUnit.ALU,
        sensitivity=FrequencySensitivity(factor_per_ghz=5.0),
    )
    volt_defect = StuckBitDefect(
        "e7/volt", bit=12, base_rate=1e-6,
        unit=FunctionalUnit.ALU,
        sensitivity=VoltageMarginSensitivity(factor_per_50mv=3.5),
    )
    rows = []
    freq_rates = []
    volt_rates = []
    for index in range(len(table.states)):
        env = table.operating_point(index)
        fr = freq_defect.mean_rate(mix, env, age_days=10.0)
        vr = volt_defect.mean_rate(mix, env, age_days=10.0)
        freq_rates.append(fr)
        volt_rates.append(vr)
        rows.append(
            [f"{env.frequency_ghz:.1f}GHz/{env.voltage_v:.2f}V",
             f"{fr:.2e}", f"{vr:.2e}"]
        )
    # Shared copy/vector logic: one defect, both workload families.
    shared = Core(
        "e7/shared",
        defects=[SharedLogicDefect("e7/shuffle", base_rate=2e-3)],
        rng=np.random.default_rng(seed),
    )
    reference = _healthy("e7/ref")
    rng = np.random.default_rng(seed)
    copy_corruptions = 0
    vector_corruptions = 0
    for _ in range(20):
        words = [int(x) for x in rng.integers(0, 2**60, size=256)]
        if copy_words(shared, words) != copy_words(reference, words):
            copy_corruptions += 1
        if xor_fold(shared, words) != xor_fold(reference, words):
            vector_corruptions += 1
    rendered = render_table(
        ["DVFS state", "freq-sensitive rate", "volt-sensitive rate"],
        rows,
        title=(
            "E7: CEE rate vs operating point "
            "(volt-sensitive column INCREASES at lower frequency: "
            "the §5 anomaly via DVFS coupling)"
        ),
    ) + (
        f"\nshared-logic defect: copy corruptions {copy_corruptions}/20, "
        f"vector corruptions {vector_corruptions}/20 (same physical defect)"
    )
    return {
        "freq_rates": freq_rates,
        "volt_rates": volt_rates,
        "copy_corruptions": copy_corruptions,
        "vector_corruptions": vector_corruptions,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E8 — half of human-identified suspects are proven mercurial
# ---------------------------------------------------------------------

def run_triage(
    n_incidents: int = 250, cee_fraction: float = 0.45, seed: int = 23
) -> dict:
    """E8: the human-triage funnel with real confession tests.

    A stream of production incidents (a calibrated mix of genuine
    core-caused incidents and ordinary software failures) drives
    suspect filing; each filed suspect is investigated by running the
    actual screening corpus against the actual core.
    """
    rng = np.random.default_rng(seed)
    triage = HumanTriageModel(rng)
    corpus = TestCorpus.standard(seeds=(1,))
    healthy_pool = _pool(8, seed)
    investigated = 0
    for index in range(n_incidents):
        is_cee = rng.random() < cee_fraction
        if not triage.files_suspect(incident_is_cee=is_cee):
            continue
        if is_cee and triage.attributed_core_is_right():
            # Cores that *caused a production incident* are biased
            # loud: quiet defects rarely surface as incidents at all.
            defects = sample_core_defects(
                rng, f"e8/{index}", rate_decades=(-4.0, -2.5)
            )
            for defect in defects:
                # incidents come from cores that are failing *now*
                _force_active(defect)
            suspect = Core(
                f"e8/bad{index}", defects=defects,
                rng=np.random.default_rng(seed + index),
            )
            is_mercurial = True
        else:
            suspect = healthy_pool[index % len(healthy_pool)]
            is_mercurial = False
        investigated += 1
        triage.investigate(
            core_id=suspect.core_id,
            core_is_mercurial=is_mercurial,
            started_days=float(index),
            confession_test=lambda s=suspect: not corpus.screen(s).passed,
            attempts=2,
        )
    fractions = triage.outcome_fractions()
    rendered = render_table(
        ["outcome", "fraction"],
        [[outcome.value, f"{fractions[outcome]:.2f}"] for outcome in TriageOutcome]
        + [["investigations", investigated]],
        title="E8: human-identified suspects (paper: ~half confirmed)",
    )
    return {
        "confirmed_fraction": fractions[TriageOutcome.CONFIRMED],
        "fractions": {k.value: v for k, v in fractions.items()},
        "investigations": investigated,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E9 — offline vs online screening
# ---------------------------------------------------------------------

def run_screening_tradeoff(seed: int = 29, n_rates: int = 120) -> dict:
    """E9: the coverage/time-to-detect/cost frontier of the two modes,
    plus a live demonstration that offline stress catches an
    environment-gated defect online screening cannot."""
    rng = np.random.default_rng(seed)
    rates = [float(10.0 ** rng.uniform(-8.0, -3.0)) for _ in range(n_rates)]
    policies = [
        ScreeningPolicy(period_days=7.0, corpus_ops=2e5, env_boost=1.0),
        ScreeningPolicy(period_days=1.0, corpus_ops=2e5, env_boost=1.0),
        ScreeningPolicy(period_days=90.0, corpus_ops=2e6, env_boost=6.0,
                        drain_coreseconds=120.0),
        ScreeningPolicy(period_days=30.0, corpus_ops=2e6, env_boost=6.0,
                        drain_coreseconds=120.0),
    ]
    labels = ["online weekly", "online daily", "offline quarterly",
              "offline monthly"]
    frontier = policy_frontier(policies, rates)
    rows = [
        [
            label,
            f"{row['median_days_to_detect']:.1f}",
            f"{row['detectable_fraction']:.2f}",
            f"{row['compute_cost_fraction']:.2e}",
        ]
        for label, row in zip(labels, frontier)
    ]
    # Live demonstration with real screeners on a voltage-gated defect.
    gated = Core(
        "e9/gated",
        defects=[
            StuckBitDefect(
                "e9/volt", bit=7, base_rate=1e-7,
                sensitivity=VoltageMarginSensitivity(factor_per_50mv=50.0),
            )
        ],
        rng=np.random.default_rng(seed),
    )
    online_result = OnlineScreener().screen_core(gated)
    offline_result = OfflineScreener(
        config=OfflineScreenerConfig(repetitions_per_point=1)
    ).screen_core(gated)
    rendered = render_table(
        ["policy", "median days to detect", "detectable fraction",
         "compute cost"],
        rows,
        title="E9: screening-policy frontier",
    ) + (
        f"\nvoltage-gated defect: online confessed={online_result.confessed}, "
        f"offline (stress sweep) confessed={offline_result.confessed}"
    )
    return {
        "frontier": frontier,
        "labels": labels,
        "online_caught_gated": online_result.confessed,
        "offline_caught_gated": offline_result.confessed,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E10 — core-level vs machine-level isolation
# ---------------------------------------------------------------------

def run_isolation(n_machines: int = 40, seed: int = 31) -> dict:
    """E10: capacity saved by core quarantine, plus safe-task placement."""
    builder = FleetBuilder(seed=seed)
    machines, _ = builder.build(n_machines)
    # Plant one mercurial core on a few machines deterministically.
    rng = np.random.default_rng(seed)
    planted: list[tuple] = []
    for machine in machines[:6]:
        core = machine.cores[int(rng.integers(len(machine.cores)))]
        planted.append((machine, core))

    def fresh() -> list:
        ms, _ = FleetBuilder(seed=seed).build(n_machines)
        return ms

    # Strategy A: machine-level quarantine.
    machines_a = fresh()
    mq = MachineQuarantine()
    for machine, core in planted:
        target = next(m for m in machines_a if m.machine_id == machine.machine_id)
        mq.remove(target.machine_id, target.cores, running_tasks=8)
    scheduler_a = FleetScheduler(machines_a)
    _, stats_a = scheduler_a.schedule([Task(f"t{i}") for i in range(10)])

    # Strategy B: core-level quarantine (CSR).
    machines_b = fresh()
    cq = CoreQuarantine()
    implicated = {}
    for machine, core in planted:
        target = next(m for m in machines_b if m.machine_id == machine.machine_id)
        target_core = next(c for c in target.cores if c.core_id == core.core_id)
        cq.remove(target_core, running_tasks=1)
        implicated[target_core.core_id] = frozenset({FunctionalUnit.VECTOR})
    scheduler_b = FleetScheduler(machines_b)
    _, stats_b = scheduler_b.schedule([Task(f"t{i}") for i in range(10)])

    # Strategy C: core quarantine + safe tasks (§6.1 speculation).
    total_slots = stats_b.slots_total
    scalar_mix = {Op.ADD: 0.5, Op.XOR: 0.3, Op.MUL: 0.2}
    scheduler_c = FleetScheduler(
        machines_b, allow_safe_tasks=True,
        implicated_units_by_core=implicated,
    )
    online_b, _ = scheduler_b.capacity()
    overload = [Task(f"t{i}", op_mix=scalar_mix) for i in range(online_b + 4)]
    _, stats_c = scheduler_c.schedule(overload)

    rendered = render_table(
        ["strategy", "slots stranded", "stranded fraction", "migrations"],
        [
            ["machine quarantine", mq.cost.cores_stranded,
             f"{stats_a.stranded_fraction:.4f}", mq.cost.migrations],
            ["core quarantine (CSR)", cq.cost.cores_stranded,
             f"{stats_b.stranded_fraction:.4f}", cq.cost.migrations],
            ["CSR + safe tasks",
             cq.cost.cores_stranded - stats_c.placed_on_quarantined,
             f"{(stats_b.slots_stranded - stats_c.placed_on_quarantined) / total_slots:.4f}",
             cq.cost.migrations],
        ],
        title="E10: isolation strategies (6 bad cores)",
    )
    return {
        "machine_stranded": mq.cost.cores_stranded,
        "core_stranded": cq.cost.cores_stranded,
        "safe_task_placements": stats_c.placed_on_quarantined,
        "machine_healthy_stranded": mq.cost.healthy_cores_stranded,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E11 — end-to-end mitigation effectiveness
# ---------------------------------------------------------------------

def run_mitigation_ladder(
    n_units: int = 40, seed: int = 37, defect_rate: float = 2e-4
) -> dict:
    """E11: escaped corruptions under increasingly strong mitigations.

    One core of the worker pool is mercurial (bit-flipping ALU/copy
    paths).  The same deterministic work units run under: no
    protection, checkpoint+invariant, DMR, and TMR.  Escapes = units
    whose final output digest differs from the healthy reference.
    """
    def build_pool() -> list[Core]:
        pool = _pool(6, seed)
        pool[0] = Core(
            "pool/c00",
            defects=[
                StuckBitDefect(
                    "e11/bit", bit=21, base_rate=defect_rate,
                    unit=FunctionalUnit.ALU,
                )
            ],
            rng=np.random.default_rng(seed),
        )
        return pool

    spec = STANDARD_MIX[0]  # hashing
    reference = _healthy("e11/ref")
    expected = [
        spec.build(seed + unit)(reference).output_digest
        for unit in range(n_units)
    ]

    def score(run_unit: Callable[[int, list[Core]], int | None]) -> tuple[int, int]:
        pool = build_pool()
        escaped = 0
        detected = 0
        for unit in range(n_units):
            digest = run_unit(unit, pool)
            if digest is None:
                detected += 1
            elif digest != expected[unit]:
                escaped += 1
        return escaped, detected

    def unprotected(unit: int, pool: list[Core]) -> int | None:
        return spec.build(seed + unit)(pool[0]).output_digest

    def dmr(unit: int, pool: list[Core]) -> int | None:
        executor = DmrExecutor(pool)
        try:
            outcome = executor.run(spec.build(seed + unit))
        except RedundancyExhaustedError:
            return None
        return outcome.result.output_digest

    def tmr(unit: int, pool: list[Core]) -> int | None:
        executor = TmrExecutor(pool)
        try:
            outcome = executor.run(spec.build(seed + unit))
        except RedundancyExhaustedError:
            return None
        return outcome.result.output_digest

    escaped_plain, _ = score(unprotected)
    escaped_dmr, detected_dmr = score(dmr)
    escaped_tmr, detected_tmr = score(tmr)

    rendered = render_table(
        ["mitigation", "escaped corruptions", "detected-and-handled"],
        [
            ["unprotected", escaped_plain, 0],
            ["DMR + retry", escaped_dmr, detected_dmr],
            ["TMR vote", escaped_tmr, detected_tmr],
        ],
        title=f"E11: corruption escapes over {n_units} work units "
              f"(1 of 6 pool cores mercurial)",
    )
    return {
        "escaped_unprotected": escaped_plain,
        "escaped_dmr": escaped_dmr,
        "escaped_tmr": escaped_tmr,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E12 — ABFT and resilient algorithms
# ---------------------------------------------------------------------

def run_abft(seed: int = 41, n_trials: int = 8, size: int = 6) -> dict:
    """E12: vanilla vs checksummed algorithms on a defective core."""
    rng = np.random.default_rng(seed)
    bad = Core(
        "e12/bad",
        defects=[
            StuckBitDefect("e12/mul", bit=9, base_rate=4e-3,
                           unit=FunctionalUnit.MUL_DIV)
        ],
        rng=np.random.default_rng(seed),
    )
    healthy = _healthy("e12/ref")
    vanilla_wrong = 0
    abft_wrong = 0
    abft_corrected = 0
    abft_flagged = 0
    for _ in range(n_trials):
        a = [[int(x) for x in row] for row in rng.integers(0, 2**30, (size, size))]
        b = [[int(x) for x in row] for row in rng.integers(0, 2**30, (size, size))]
        expected = matmul(healthy, a, b)
        if matmul(bad, a, b) != expected:
            vanilla_wrong += 1
        try:
            result, corrections = abft_matmul(bad, a, b, checker_core=healthy)
            abft_corrected += corrections
            if result != expected:
                abft_wrong += 1
        except Exception:
            abft_flagged += 1
    # Resilient sort vs plain sort on a comparator-defective core.
    from repro.workloads.sorting import merge_sort

    cmp_bad = Core(
        "e12/cmp", defects=named_case("comparator_flip"),
        rng=np.random.default_rng(seed + 1),
    )
    values = [int(x) for x in rng.integers(0, 2**48, size=250)]
    plain_wrong = merge_sort(cmp_bad, values) != sorted(values)
    resilient_ok = resilient_sort(
        [cmp_bad, _healthy("e12/s1"), _healthy("e12/s2")], values
    ) == sorted(values)
    # Checksummed LU detects multiplier corruption.
    lu_detections = 0
    for _ in range(n_trials):
        m = [[int(x) for x in row] for row in rng.integers(1, 2**40, (5, 5))]
        for i in range(5):
            m[i][i] += 2**50
        try:
            checksummed_lu(bad, m)
        except Exception:
            lu_detections += 1
    rendered = render_table(
        ["algorithm", "outcome"],
        [
            ["vanilla matmul wrong results", f"{vanilla_wrong}/{n_trials}"],
            ["ABFT matmul silent wrong", f"{abft_wrong}/{n_trials}"],
            ["ABFT corrections applied", abft_corrected],
            ["ABFT uncorrectable (flagged)", abft_flagged],
            ["plain sort misordered", plain_wrong],
            ["resilient sort correct", resilient_ok],
            ["checksummed LU detections", f"{lu_detections}/{n_trials}"],
        ],
        title="E12: SDC-resilient algorithms vs vanilla",
    )
    return {
        "vanilla_wrong": vanilla_wrong,
        "abft_silent_wrong": abft_wrong,
        "abft_corrected": abft_corrected,
        "abft_flagged": abft_flagged,
        "plain_sort_wrong": plain_wrong,
        "resilient_sort_ok": resilient_ok,
        "lu_detections": lu_detections,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E13 — report concentration
# ---------------------------------------------------------------------

def run_report_concentration(seed: int = 43) -> dict:
    """E13: concentrated reports → quarantine; spread reports → dismissed."""
    rng = np.random.default_rng(seed)
    service = CoreComplaintService(n_cores_visible=10000)
    # Background: 120 reports spread uniformly.
    for index in range(120):
        service.report(
            Complaint(
                time_days=float(index), application=f"app{index % 6}",
                machine_id=f"m{rng.integers(500):04d}",
                core_id=f"m{rng.integers(500):04d}/c{rng.integers(32):02d}",
            )
        )
    # Signal: 7 reports from 3 applications against one core.
    for index in range(7):
        service.report(
            Complaint(
                time_days=float(index), application=f"app{index % 3}",
                machine_id="m0042", core_id="m0042/c07",
            )
        )
    suspects = service.analyze()
    candidates = service.quarantine_candidates()
    top = suspects[0] if suspects else None
    rendered = render_table(
        ["core", "reports", "apps", "p-value", "quarantine?"],
        [
            [s.core_id, s.reports, s.applications, f"{s.p_value:.2e}",
             s.grounds_for_quarantine]
            for s in suspects[:5]
        ],
        title="E13: complaint-concentration analysis",
    )
    return {
        "top_suspect": top.core_id if top else None,
        "candidates": [s.core_id for s in candidates],
        "n_suspects_over_threshold": len(candidates),
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E14 — aging: onset and escalation
# ---------------------------------------------------------------------

def run_aging(seed: int = 47, n_defects: int = 3000) -> dict:
    """E14: onset-age distribution and post-onset escalation."""
    rng = np.random.default_rng(seed)
    onset = WeibullOnset()
    onsets = [onset.sample(rng) for _ in range(n_defects)]
    horizons = [0.0, 180.0, 365.0, 730.0, 1460.0]
    cdf_rows = [
        [f"{h:.0f}d", f"{onset.cdf(h):.2f}",
         f"{sum(1 for o in onsets if o <= h) / n_defects:.2f}"]
        for h in horizons
    ]
    stats = onset_stats(onsets, horizon_days=730.0)
    # Escalation: a defect that "gets worse with time" (§2).
    profile = onset.sample_profile(np.random.default_rng(seed + 1),
                                   escalation_range=(2.0, 2.0))
    escalation = [
        profile.rate_multiplier(profile.onset_days + days)
        for days in (0.0, 182.5, 365.0, 730.0)
    ]
    rendered = render_table(
        ["age", "model CDF", "empirical CDF"],
        cdf_rows,
        title="E14: defect onset by machine age",
    ) + (
        f"\nonset within 730d: median={stats.median_days:.0f}d, "
        f"censored beyond horizon={stats.censored_fraction:.0%}"
        f"\nescalation at onset/+6mo/+12mo/+24mo: "
        + "/".join(f"{e:.1f}x" for e in escalation)
    )
    return {
        "onsets": onsets,
        "model_cdf_365": onset.cdf(365.0),
        "censored_fraction_730": stats.censored_fraction,
        "escalation": escalation,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E15 — serving under CEE: chaos campaign, hardened vs unhardened
# ---------------------------------------------------------------------

def _detection_latency_line(label: str, summary: dict) -> str:
    """One rendered line of corrupt→quarantine latency percentiles."""
    pcts = latency_percentiles(summary, "corrupt_to_quarantine_ms")
    if not pcts.get("n"):
        return f"\n{label}: no completed corrupt->quarantine incidents"
    values = " ".join(
        f"{name}={pcts[name]:.0f}ms"
        for name in ("p50", "p90", "p99")
        if pcts[name] is not None
    )
    return (
        f"\n{label}: corrupt->quarantine {values} "
        f"(n={pcts['n']} incidents)"
    )


def _serving_campaign(
    hardening_name: str,
    *,
    ticks: int,
    n_machines: int,
    cores_per_machine: int,
    defect_rate: float,
    seed: int,
    onset_age: float,
) -> tuple:
    """Run one E15 hardening arm; module-level so the pool can pickle it.

    Returns ``(scorecard, events, bad_core_id)`` — the campaign object
    itself stays in the worker.
    """
    machines, bad_core_id = build_serving_fleet(
        n_machines=n_machines,
        cores_per_machine=cores_per_machine,
        base_rate=defect_rate,
        onset_days=onset_age,
        seed=seed + 7,
    )
    campaign = ServingCampaign(
        machines,
        CampaignConfig(ticks=ticks),
        getattr(HardeningConfig, hardening_name)(),
        seed=seed + 3,
    )
    # The chaos victim must be a core that actually hosts a replica
    # (placement is deterministic, but don't hard-code it here).
    victim = next(
        r.core_id for r in campaign.router.replicas
        if r.core_id != bad_core_id
    )
    campaign.chaos = ChaosSchedule.standard(
        bad_core_id, victim, ticks, onset_age_days=onset_age
    )
    campaign.run()
    return campaign.scorecard, list(campaign.events), bad_core_id


def run_serving_under_cee(
    ticks: int = 1000,
    n_machines: int = 4,
    cores_per_machine: int = 4,
    defect_rate: float = 0.05,
    seed: int = 0,
    workers: int | None = None,
) -> dict:
    """E15: a CEE-hardened RPC service vs a naive one, under chaos.

    Three configurations run the *same* chaos script (late-onset defect
    activation, a replica crash, a machine-check burst, a traffic
    burst) on identically-seeded fleets:

    - **unhardened** — trust every response; corrupt responses escape;
    - **hardened** — e2e validation, core-diverse retries, hedging,
      per-core circuit breakers feeding the quarantine policy, load
      shedding;
    - **validator-only** — the breaker ablation, to show that breaker
      trips *accelerate* quarantine of the offending core.

    Expected shape: the hardened escape rate drops ≥10× at <3× latency
    and goodput cost, and the breaker configuration quarantines the bad
    core earlier than validation signals alone.
    """
    onset_age = 400.0
    campaign_fn = functools.partial(
        _serving_campaign,
        ticks=ticks,
        n_machines=n_machines,
        cores_per_machine=cores_per_machine,
        defect_rate=defect_rate,
        seed=seed,
        onset_age=onset_age,
    )
    arms = run_tasks(
        campaign_fn,
        ("unhardened", "hardened", "validator_only"),
        workers=workers,
    )
    cards = [card for card, _events, _bad in arms]
    hardened_events = arms[1][1]
    bad_core_id = arms[0][2]

    trip_events = [
        e for e in hardened_events if e.kind is EventKind.BREAKER_TRIP
    ]
    escape_reduction = (
        math.inf if cards[1].escape_rate == 0.0
        else cards[0].escape_rate / cards[1].escape_rate
    )
    p99_cost = cards[1].p99_latency_ms / max(cards[0].p99_latency_ms, 1e-9)
    goodput_cost = (
        max(cards[0].throughput_per_tick, 1e-9)
        / max(cards[1].goodput_per_tick, 1e-9)
    )
    q_breaker = cards[1].quarantine_tick.get(bad_core_id)
    q_validator = cards[2].quarantine_tick.get(bad_core_id)

    rendered = render_table(
        ["config", "escape", "avail", "p99 ms", "goodput/tick",
         "caught", "trips", "quarantined"],
        [card.summary_row() for card in cards],
        title=f"E15: serving under CEE ({ticks} ticks, chaos on)",
    ) + (
        f"\nescape-rate reduction (hardened): "
        + ("inf" if math.isinf(escape_reduction)
           else f"{escape_reduction:.0f}x")
        + f"; p99 cost {p99_cost:.2f}x, goodput cost {goodput_cost:.2f}x"
        + f"\nbad core {bad_core_id} quarantined at tick "
        + f"{q_breaker} (breaker) vs {q_validator} (validation signals only)"
        + _detection_latency_line("hardened", cards[1].detection_latency_ms)
    )
    return {
        "unhardened": cards[0],
        "hardened": cards[1],
        "validator_only": cards[2],
        "bad_core_id": bad_core_id,
        "escape_rate_unhardened": cards[0].escape_rate,
        "escape_rate_hardened": cards[1].escape_rate,
        "escape_reduction": escape_reduction,
        "p99_cost": p99_cost,
        "goodput_cost": goodput_cost,
        "breaker_trip_events": len(trip_events),
        "quarantine_tick_breaker": q_breaker,
        "quarantine_tick_validator_only": q_validator,
        "detection_latency_hardened": latency_percentiles(
            cards[1].detection_latency_ms, "corrupt_to_quarantine_ms"
        ),
        "hardened_events": hardened_events,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E16 — replicated storage under CEE: the durable-path chaos campaign
# ---------------------------------------------------------------------

def _storage_campaign(
    protections_name: str,
    *,
    ticks: int,
    n_machines: int,
    cores_per_machine: int,
    defect_rate: float,
    seed: int,
    onset_age: float,
) -> tuple:
    """Run one E16 protection arm; module-level so the pool can pickle it.

    Returns ``(scorecard, events, bad_core_id)``.
    """
    machines, bad_core_id = build_storage_fleet(
        n_machines=n_machines,
        cores_per_machine=cores_per_machine,
        base_rate=defect_rate,
        onset_days=onset_age,
        seed=seed + 7,
    )
    campaign = StorageCampaign(
        machines,
        getattr(StorageProtections, protections_name)(),
        StorageCampaignConfig(ticks=ticks),
        seed=seed + 3,
    )
    # The chaos victim must be a core that actually hosts a replica
    # (placement is deterministic, but don't hard-code it here).
    victim = next(
        r.core_id for r in campaign.store.replicas
        if r.core_id != bad_core_id
    )
    campaign.chaos = ChaosSchedule.storage_standard(
        bad_core_id, victim, ticks, onset_age_days=onset_age
    )
    campaign.run()
    return campaign.scorecard, list(campaign.events), bad_core_id


def run_storage_under_cee(
    ticks: int = 600,
    n_machines: int = 4,
    cores_per_machine: int = 4,
    defect_rate: float = 0.05,
    seed: int = 0,
    workers: int | None = None,
) -> dict:
    """E16: corruption-tolerant replicated storage vs a trusting one.

    Five configurations run the *same* chaos script (late-onset defect
    activation on one replica core, that replica crashing onto a WAL
    full of corrupt records, a healthy-replica crash with a torn tail,
    a machine-check burst, a write burst) on identically-seeded fleets:

    - **unprotected** — replicate and trust: no WAL, read-one, decrypt
      on the replica's own core, no background repair;
    - **quorum-only** — WAL + quorum writes + voted reads +
      encrypt-verify, but read-repair is the only healing;
    - **no-encrypt-verify** — full stack minus the decrypt-elsewhere
      check: the ablation that brings back the §5.2 unrecoverable
      loss, because a mis-encrypted write replicates *identically* to
      every replica and the vote agrees on garbage;
    - **generic-weights** — full stack, but storage suspicion events
      weighted like any other signal (quarantine-acceleration
      ablation);
    - **protected** — WAL + quorum + scrub + anti-entropy + dedicated
      suspicion weights.

    Expected shape: the protected escape rate drops ≥10×, the
    unrecoverable-loss rate drops to zero, write amplification stays
    under 3× the baseline's, and dedicated storage weights quarantine
    the defective core earlier than generic ones.  The baseline shows
    the dual failure: its only signal is the machine-check burst on a
    *healthy* replica, so it tends to quarantine the noisy innocent
    core (or nobody) while the silent corruptor keeps serving.
    """
    onset_age = 400.0
    campaign_fn = functools.partial(
        _storage_campaign,
        ticks=ticks,
        n_machines=n_machines,
        cores_per_machine=cores_per_machine,
        defect_rate=defect_rate,
        seed=seed,
        onset_age=onset_age,
    )
    arms = run_tasks(
        campaign_fn,
        (
            "unprotected", "quorum_only", "no_encrypt_verify",
            "generic_weights", "protected",
        ),
        workers=workers,
    )
    cards = [card for card, _events, _bad in arms]
    protected_events = arms[4][1]
    bad_core_id = arms[0][2]

    base, full = cards[0], cards[4]
    escape_reduction = (
        math.inf if full.escape_rate == 0.0
        else base.escape_rate / full.escape_rate
    )
    amp_cost = (
        full.write_amplification / max(base.write_amplification, 1e-9)
    )
    q_dedicated = full.quarantine_tick.get(bad_core_id)
    q_generic = cards[3].quarantine_tick.get(bad_core_id)
    base_wrongly_quarantined = sorted(
        core_id for core_id in base.quarantine_tick
        if core_id != bad_core_id
    )

    rendered = render_table(
        ["config", "escape", "unrecov", "avail", "write amp",
         "repair ms", "caught", "repairs", "quarantined"],
        [card.summary_row() for card in cards],
        title=f"E16: replicated storage under CEE ({ticks} ticks, chaos on)",
    ) + (
        "\nescape-rate reduction (protected): "
        + ("inf" if math.isinf(escape_reduction)
           else f"{escape_reduction:.0f}x")
        + f"; unrecoverable {base.unrecoverable_keys} -> "
        + f"{full.unrecoverable_keys} keys; write-amp cost {amp_cost:.2f}x"
        + f"\nbad core {bad_core_id} quarantined at tick {q_dedicated} "
        + f"(dedicated weights) vs {q_generic} (generic weights)"
        + (
            "\nbaseline quarantined only innocent cores: "
            + ", ".join(base_wrongly_quarantined)
            if base_wrongly_quarantined else ""
        )
        + _detection_latency_line("protected", full.detection_latency_ms)
    )
    return {
        "unprotected": base,
        "quorum_only": cards[1],
        "no_encrypt_verify": cards[2],
        "generic_weights": cards[3],
        "protected": full,
        "bad_core_id": bad_core_id,
        "escape_rate_unprotected": base.escape_rate,
        "escape_rate_protected": full.escape_rate,
        "escape_reduction": escape_reduction,
        "unrecoverable_unprotected": base.unrecoverable_keys,
        "unrecoverable_no_verify": cards[2].unrecoverable_keys,
        "unrecoverable_protected": full.unrecoverable_keys,
        "write_amp_cost": amp_cost,
        "quarantine_tick_dedicated": q_dedicated,
        "quarantine_tick_generic": q_generic,
        "detection_latency_protected": latency_percentiles(
            full.detection_latency_ms, "corrupt_to_quarantine_ms"
        ),
        "protected_events": protected_events,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E17 — serve at scale: sharded cluster across a prevalence × spend grid
# ---------------------------------------------------------------------

#: the E17 mitigation-spend ladder, cheapest first
SCALE_ARMS: tuple[str, ...] = ("baseline", "retries_breakers", "full")


def _scale_cell(
    cell: tuple[float, str],
    *,
    ticks: int,
    n_machines: int,
    cores_per_machine: int,
    defect_rate: float,
    seed: int,
) -> tuple[float, str, "ScaleScorecard", int]:
    """Run one (prevalence, hardening) E17 cell; module-level so the
    pool can pickle it.

    Fleet and campaign seeds depend only on the campaign seed and the
    prevalence — every hardening arm at one prevalence faces the
    *identical* fleet, traffic and chaos script, and a cell's scorecard
    is byte-identical regardless of which worker runs it.
    """
    prevalence, arm_name = cell
    machines, bad_core_ids = build_scale_fleet(
        n_machines=n_machines,
        cores_per_machine=cores_per_machine,
        prevalence=prevalence,
        base_rate=defect_rate,
        seed=seed + 7,
    )
    campaign = ServeScaleCampaign(
        machines,
        ScaleConfig(ticks=ticks),
        getattr(ScaleHardening, arm_name)(),
        seed=seed + 3,
    )
    # Chaos targets must be cores that actually host replicas: the
    # whole of shard 0 crashes (shard loss), and two of shard 1's
    # healthy cores eat the machine-check storm (breaker storm).
    shards = campaign.cluster.shards
    shard_loss = [r.core_id for r in shards[0].router.replicas]
    storm = [
        r.core_id for r in shards[1 % len(shards)].router.replicas
        if r.core_id not in bad_core_ids
    ][:2]
    campaign.chaos = ChaosSchedule.serve_scale(
        bad_core_ids, shard_loss, storm, ticks
    )
    campaign.run()
    return prevalence, arm_name, campaign.scorecard, len(bad_core_ids)


def run_serve_at_scale(
    ticks: int = 600,
    n_machines: int = 4,
    cores_per_machine: int = 4,
    defect_rate: float = 0.05,
    prevalences: tuple[float, ...] = (0.1, 0.2, 0.4),
    seed: int = 0,
    workers: int | None = None,
) -> dict:
    """E17: the sharded serve-at-scale runtime across a mercurial-
    prevalence × mitigation-spend grid.

    Open-loop ramped traffic (user cohorts, stable route keys) drives a
    consistent-hash sharded cluster through the E17 chaos script —
    staggered multi-core defect activation, a whole-shard crash, a
    breaker storm, a traffic burst — at each prevalence level, under
    three spend levels:

    - **baseline** — round-robin, trust every response;
    - **retries_breakers** — e2e validation, token-bucket retry
      budgets with backoff + jitter, per-shard circuit breakers;
    - **full** — adds tail hedging, the shed → serve-stale →
      fail-closed degradation ladder, and utilization autoscaling.

    Expected shape: at every prevalence, hedging + budgeted retries cut
    user-visible corruption (escape rate) versus baseline, with the
    latency bill quantified at p99/p99.9.
    """
    cells = [
        (prevalence, arm) for prevalence in prevalences for arm in SCALE_ARMS
    ]
    cell_fn = functools.partial(
        _scale_cell,
        ticks=ticks,
        n_machines=n_machines,
        cores_per_machine=cores_per_machine,
        defect_rate=defect_rate,
        seed=seed,
    )
    results = run_tasks(cell_fn, cells, workers=workers)

    grid: dict[str, dict] = {}
    n_bad_by_prevalence: dict[str, int] = {}
    for prevalence, arm_name, card, n_bad in results:
        key = f"{prevalence:g}"
        grid.setdefault(key, {})[arm_name] = card
        n_bad_by_prevalence[key] = n_bad

    rows = []
    comparisons: dict[str, dict] = {}
    for prevalence in prevalences:
        key = f"{prevalence:g}"
        cards = grid[key]
        for arm_name in SCALE_ARMS:
            rows.append([key] + cards[arm_name].summary_row())
        base, full = cards["baseline"], cards["full"]
        comparisons[key] = {
            "n_bad_cores": n_bad_by_prevalence[key],
            "escape_rate_baseline": base.escape_rate,
            "escape_rate_retries_breakers":
                cards["retries_breakers"].escape_rate,
            "escape_rate_full": full.escape_rate,
            "escape_reduction": (
                math.inf if full.escape_rate == 0.0
                else base.escape_rate / full.escape_rate
            ),
            "p99_cost": full.p99_latency_ms / max(base.p99_latency_ms, 1e-9),
            "p999_cost":
                full.p999_latency_ms / max(base.p999_latency_ms, 1e-9),
            "availability_baseline": base.availability,
            "availability_full": full.availability,
        }

    hardening_wins = all(
        comp["escape_rate_full"] <= comp["escape_rate_baseline"]
        for comp in comparisons.values()
    )
    rendered = render_table(
        ["prev", "config", "escape", "avail", "p50", "p99 ms", "p99.9 ms",
         "stale", "failclosed", "hedges", "budget-exh", "quarantined"],
        rows,
        title=f"E17: serve at scale ({ticks} ticks, chaos on)",
    ) + "".join(
        f"\nprev {key}: escape "
        f"{comp['escape_rate_baseline']:.3%} -> "
        f"{comp['escape_rate_full']:.3%} "
        f"(p99 cost {comp['p99_cost']:.2f}x, "
        f"p99.9 cost {comp['p999_cost']:.2f}x, "
        f"{comp['n_bad_cores']} bad cores)"
        for key, comp in comparisons.items()
    )
    return {
        "grid": grid,
        "comparisons": comparisons,
        "prevalences": [f"{p:g}" for p in prevalences],
        "arms": list(SCALE_ARMS),
        "hardening_wins": hardening_wins,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E18 — instruction-level checking: cost vs coverage across arms
# ---------------------------------------------------------------------

def _instrcheck_cell(
    cell: tuple[float, str, float],
    *,
    units: int,
    seed: int,
) -> tuple[float, str, float, "InstrCheckScorecard", int]:
    """Run one (prevalence, arm, sampling rate) E18 cell; module-level
    so the pool can pickle it.

    The fleet seed depends only on the campaign seed and prevalence, so
    every arm × rate at one prevalence faces the *identical* mercurial
    cores, and a cell's scorecard is byte-identical regardless of which
    worker runs it.
    """
    prevalence, arm, rate = cell
    machines, bad_core_ids = build_instrcheck_fleet(
        prevalence=prevalence, seed=seed + 7
    )
    config = InstrCheckConfig(
        units=units,
        sample_rate=rate,
        # The screening arm spends its budget as battery frequency, not
        # per-op duplication: a higher "rate" screens more often.
        screen_interval_ticks=max(1, round(1.0 / max(rate, 1e-9))),
    )
    campaign = InstrCheckCampaign(machines, arm, config, seed=seed + 3)
    return prevalence, arm, rate, campaign.run(), len(bad_core_ids)


def run_instrcheck_grid(
    units: int = 320,
    prevalences: tuple[float, ...] = (0.125, 0.25),
    rates: tuple[float, ...] = (0.1, 0.33, 1.0),
    seed: int = 0,
    workers: int | None = None,
) -> dict:
    """E18: instruction-level checking arms on a cost-vs-coverage grid.

    Races the three literature arms (ITHICA same-core duplication, MEEK
    heterogeneous checker pairing, RepTFD checkpointed replay) plus the
    two in-repo reference points (E9 periodic screening, E11 end-to-end
    checks) across a sampling-rate × defect-prevalence grid, measuring
    each cell's slowdown factor against the fraction of CEE-affected
    work units caught before propagation.

    Expected shape: ITHICA is the cheap arm and looks perfect while the
    only bad core is *probabilistic*, then collapses at the prevalence
    step that introduces a deterministic operand-pattern core (both of
    its executions corrupt identically — the §2 self-inverting AES
    story).  MEEK and RepTFD pay a second core but catch deterministic
    CEEs; MEEK's bounded check-lag queue starts dropping coverage at
    full sampling, and RepTFD is the only arm that *corrects* what it
    catches (rollback re-run).  Screening catches cores, never
    in-flight results — its pre-propagation coverage is honestly ~0.
    """
    cells = [
        (prevalence, arm, rate)
        for prevalence in prevalences
        for arm in INSTRCHECK_ARMS
        for rate in rates
    ]
    cell_fn = functools.partial(_instrcheck_cell, units=units, seed=seed)
    results = run_tasks(cell_fn, cells, workers=workers)

    grid: dict[str, dict[str, dict[str, InstrCheckScorecard]]] = {}
    n_bad_by_prevalence: dict[str, int] = {}
    for prevalence, arm, rate, card, n_bad in results:
        key = f"{prevalence:g}"
        grid.setdefault(key, {}).setdefault(arm, {})[f"{rate:g}"] = card
        n_bad_by_prevalence[key] = n_bad

    rows = []
    comparisons: dict[str, dict] = {}
    for prevalence in prevalences:
        key = f"{prevalence:g}"
        for arm in INSTRCHECK_ARMS:
            for rate in rates:
                rows.append([key] + grid[key][arm][f"{rate:g}"].summary_row())
        full = {arm: grid[key][arm][f"{rates[-1]:g}"]
                for arm in INSTRCHECK_ARMS}
        comparisons[key] = {
            "n_bad_cores": n_bad_by_prevalence[key],
            "coverage_at_full_rate": {
                arm: card.coverage for arm, card in full.items()
            },
            "slowdown_at_full_rate": {
                arm: card.slowdown_factor for arm, card in full.items()
            },
            "meek_lag_drops_at_full_rate": full["meek"].lag_drops,
            "reptfd_corrected": full["reptfd"].flagged_clean_units,
        }

    # The headline claims, checked over the measured grid:
    # cross-core arms dominate same-core duplication once a
    # deterministic defect is in the fleet...
    high = f"{prevalences[-1]:g}"
    full_rate = f"{rates[-1]:g}"
    cross_core_wins = all(
        grid[high][arm][full_rate].coverage
        > grid[high]["ithica"][full_rate].coverage
        for arm in ("meek", "reptfd")
    )
    # ...and every checking arm beats screening at catching CEEs
    # *before* they propagate (screening only catches cores).
    precatch_beats_screening = all(
        grid[key][arm][full_rate].coverage
        >= grid[key]["screen"][full_rate].coverage
        for key in (f"{p:g}" for p in prevalences)
        for arm in ("ithica", "meek", "reptfd", "e2e")
    )

    rendered = render_table(
        ["prev", "arm", "rate", "slowdown", "coverage", "caught",
         "escaped", "lagdrops", "quarantined"],
        rows,
        title=f"E18: instruction-level checking ({units} units/cell)",
    ) + "".join(
        f"\nprev {key}: full-rate coverage "
        + ", ".join(
            f"{arm} {comp['coverage_at_full_rate'][arm]:.0%}"
            for arm in INSTRCHECK_ARMS
        )
        + f" ({comp['n_bad_cores']} bad cores)"
        for key, comp in comparisons.items()
    )
    return {
        "grid": grid,
        "comparisons": comparisons,
        "prevalences": [f"{p:g}" for p in prevalences],
        "arms": list(INSTRCHECK_ARMS),
        "rates": [f"{r:g}" for r in rates],
        "cross_core_wins": cross_core_wins,
        "precatch_beats_screening": precatch_beats_screening,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------
# E19 — fleet-scale proxy screening: budget × prevalence × corpus grid
# ---------------------------------------------------------------------

#: the two corpus arms E19 races (SiliFuzz question: what does
#: distillation cost in detection power?)
FLEETSCREEN_CORPORA: tuple[str, ...] = ("full", "distilled")


def _fleetscreen_battery(corpus_kind: str) -> DistilledBattery:
    """Build the battery for one E19 corpus arm."""
    corpus = TestCorpus.standard()
    if corpus_kind == "full":
        return full_battery(corpus)
    if corpus_kind == "distilled":
        return distill(corpus)
    raise ValueError(f"unknown corpus arm {corpus_kind!r}")


def _fleetscreen_cell(
    cell: tuple[float, float, str],
    *,
    n_machines: int,
    horizon_days: float,
    seed: int,
) -> tuple[float, float, str, dict]:
    """Run one (budget, prevalence scale, corpus) E19 cell; module-level
    so the pool can pickle it.

    The fleet seed depends only on the campaign seed and the prevalence
    scale, so both corpus arms at every budget face the *identical*
    mercurial cores, and a cell's summary is byte-identical regardless
    of which worker runs it.
    """
    budget, prevalence_scale, corpus_kind = cell
    products = tuple(
        dataclasses.replace(
            p, core_prevalence=min(1.0, p.core_prevalence * prevalence_scale)
        )
        for p in DEFAULT_PRODUCTS
    )
    builder = FleetBuilder(
        products=products,
        seed=seed + 7 + int(prevalence_scale),
        deployment_window=(-400.0, 0.0),
    )
    columns = builder.build_columns(n_machines)
    battery = _fleetscreen_battery(corpus_kind)
    screener = RideAlongScreener(
        battery, RideAlongConfig(budget_fraction=budget)
    )
    campaign = RideAlongCampaign(columns, screener, seed=seed + 3)
    report = campaign.run(horizon_days)
    summary = {
        "n_cores": columns.n_cores,
        "n_mercurial": columns.n_mercurial,
        "n_active": report.n_active,
        "detected": len(report.detected),
        "detected_fraction": report.detected_fraction,
        "median_latency_days": report.median_latency_days,
        "escaped_corruptions": report.escaped_corruptions,
        "machine_seconds": report.machine_seconds,
        "budget_machine_seconds": report.budget_machine_seconds,
        "skipped_slots": report.skipped_slots,
        "n_confessions": report.n_confessions,
        "battery_ops": battery.total_ops,
        "battery_coverage": battery.coverage_fraction,
        "battery_tests": len(battery.tests),
    }
    return budget, prevalence_scale, corpus_kind, summary


def run_fleetscreen_grid(
    n_machines: int = 120,
    horizon_days: float = 120.0,
    budgets: tuple[float, ...] = (2.5e-7, 2e-6, 2e-5),
    prevalence_scales: tuple[float, ...] = (200.0, 800.0),
    seed: int = 0,
    workers: int | None = None,
) -> dict:
    """E19: fleet-scale proxy screening across a budget × prevalence ×
    corpus grid, priced against E9's periodic-screening baseline.

    Each cell runs a :class:`~repro.detection.fleetscreen.RideAlongCampaign`:
    a day-stepped screening-only detection loop where spare scheduler
    slots get the battery under a machine-second budget and confessions
    drive the weighted quarantine loop.  The grid measures
    time-to-detection (activation → quarantine) and
    escapes-before-detection (expected corrupt results leaked by
    active, unquarantined defects) as the budget, the defect
    prevalence, and the corpus (full vs SiliFuzz-distilled) vary.

    Expected shape: the distilled battery reaches ≥90% of the full
    corpus's unit coverage at a fraction of its run cost, so under a
    *binding* budget it screens many more cores per day and detects at
    least as many defects — the SiliFuzz trade in one grid.  (Budgets
    are tiny fractions because screening genuinely is: one full-corpus
    fleet sweep costs ~7×10⁻⁶ of a day's machine-seconds.)  More
    budget buys detection; the E9 frontier rows anchor what
    drain-based periodic policies pay for comparable latency.
    """
    cells = [
        (budget, scale, corpus_kind)
        for budget in budgets
        for scale in prevalence_scales
        for corpus_kind in FLEETSCREEN_CORPORA
    ]
    cell_fn = functools.partial(
        _fleetscreen_cell,
        n_machines=n_machines,
        horizon_days=horizon_days,
        seed=seed,
    )
    results = run_tasks(cell_fn, cells, workers=workers)

    grid: dict[str, dict[str, dict[str, dict]]] = {}
    for budget, scale, corpus_kind, summary in results:
        grid.setdefault(f"{budget:g}", {}).setdefault(
            f"{scale:g}", {}
        )[corpus_kind] = summary

    # E9 anchor: the periodic online/offline policy frontier over the
    # same defect-rate ensemble E9 samples.
    rng = np.random.default_rng(seed + 29)
    rates = [float(10.0 ** rng.uniform(-8.0, -3.0)) for _ in range(120)]
    baseline_policies = [
        ScreeningPolicy(period_days=7.0, corpus_ops=2e5, env_boost=1.0),
        ScreeningPolicy(period_days=90.0, corpus_ops=2e6, env_boost=6.0,
                        drain_coreseconds=120.0),
    ]
    baseline_labels = ["online weekly (E9)", "offline quarterly (E9)"]
    baseline = policy_frontier(baseline_policies, rates)

    rows = []
    for budget in budgets:
        for scale in prevalence_scales:
            for corpus_kind in FLEETSCREEN_CORPORA:
                cell = grid[f"{budget:g}"][f"{scale:g}"][corpus_kind]
                rows.append([
                    f"{budget:g}", f"{scale:g}", corpus_kind,
                    f"{cell['detected']}/{cell['n_active']}",
                    f"{cell['median_latency_days']:.1f}",
                    f"{cell['escaped_corruptions']:.1f}",
                    f"{cell['machine_seconds']:.0f}",
                    f"{cell['skipped_slots']}",
                ])

    # Headline 1: distillation keeps ≥90% unit coverage at measurably
    # lower run cost (the SiliFuzz claim, checked on the built corpus).
    sample = grid[f"{budgets[0]:g}"][f"{prevalence_scales[0]:g}"]
    distilled_cheaper_at_equal_coverage = (
        sample["distilled"]["battery_coverage"] >= 0.9
        and sample["distilled"]["battery_ops"] < sample["full"]["battery_ops"]
    )
    # Headline 2: at the tightest (binding) budget the cheaper battery
    # screens more cores per day, so the distilled arm never detects
    # less than the full corpus does.
    tight = grid[f"{budgets[0]:g}"]
    distilled_detects_no_less = all(
        tight[f"{scale:g}"]["distilled"]["detected"]
        >= tight[f"{scale:g}"]["full"]["detected"]
        for scale in prevalence_scales
    )
    # Headline 3: budget buys latency — the largest budget's distilled
    # arm detects at least as much as the smallest's, everywhere.
    wide = grid[f"{budgets[-1]:g}"]
    budget_buys_detection = all(
        wide[f"{scale:g}"]["distilled"]["detected"]
        >= tight[f"{scale:g}"]["distilled"]["detected"]
        for scale in prevalence_scales
    )

    rendered = render_table(
        ["budget", "prev×", "corpus", "detected", "median days",
         "escapes", "machine-s", "skipped"],
        rows,
        title=f"E19: fleet proxy screening ({n_machines} machines, "
              f"{horizon_days:g}d horizon)",
    ) + "".join(
        f"\n{label}: median {row['median_days_to_detect']:.1f}d to detect, "
        f"cost fraction {row['compute_cost_fraction']:.2e}"
        for label, row in zip(baseline_labels, baseline)
    ) + (
        f"\ndistilled battery: {sample['distilled']['battery_ops']} ops vs "
        f"{sample['full']['battery_ops']} full "
        f"({sample['distilled']['battery_coverage']:.0%} unit coverage)"
    )
    return {
        "grid": grid,
        "budgets": [f"{b:g}" for b in budgets],
        "prevalence_scales": [f"{s:g}" for s in prevalence_scales],
        "corpora": list(FLEETSCREEN_CORPORA),
        "baseline": baseline,
        "baseline_labels": baseline_labels,
        "distilled_cheaper_at_equal_coverage":
            distilled_cheaper_at_equal_coverage,
        "distilled_detects_no_less": distilled_detects_no_less,
        "budget_buys_detection": budget_buys_detection,
        "rendered": rendered,
    }


#: registry mapping experiment id → (title, runner)
EXPERIMENTS: dict[str, tuple[str, Callable[..., dict]]] = {
    "F1": ("Fig. 1: reported CEE rates (normalized)", run_fig1),
    "E1": ("Incidence per 1000 machines", run_incidence),
    "E2": ("Symptom classes in risk order", run_symptoms),
    "E3": ("Self-inverting AES case study", run_aes_case),
    "E4": ("Corruption propagation case studies", run_propagation),
    "E5": ("DMR/TMR cost factors", run_redundancy_cost),
    "E6": ("Rate heterogeneity (orders of magnitude)", run_rate_spread),
    "E7": ("f/V/T sensitivity and shared logic", run_fvt),
    "E8": ("Human-triage confirmation rate", run_triage),
    "E9": ("Online vs offline screening tradeoff", run_screening_tradeoff),
    "E10": ("Core vs machine isolation", run_isolation),
    "E11": ("Mitigation ladder effectiveness", run_mitigation_ladder),
    "E12": ("ABFT / resilient algorithms", run_abft),
    "E13": ("Report concentration analysis", run_report_concentration),
    "E14": ("Aging: onset and escalation", run_aging),
    "E15": ("Serving under CEE: chaos campaign", run_serving_under_cee),
    "E16": ("Storage under CEE: durable-path chaos", run_storage_under_cee),
    "E17": ("Serve at scale: prevalence × mitigation-spend grid",
            run_serve_at_scale),
    "E18": ("Instruction-level checking: cost vs coverage grid",
            run_instrcheck_grid),
    "E19": ("Fleet proxy screening: budget × prevalence × corpus grid",
            run_fleetscreen_grid),
}
