"""Analysis: statistics, economics, figures, experiment runners."""

from repro.analysis.economics import (
    ExposureEstimate,
    ScreeningPolicy,
    exposure_before_detection,
    false_positive_cost,
    policy_frontier,
)
from repro.analysis.experiments import EXPERIMENTS
from repro.analysis.figures import (
    normalize_series,
    render_fig1,
    render_series,
    render_table,
)
from repro.analysis.stats import (
    RateEstimate,
    binomial_ci,
    exposure_needed,
    orders_of_magnitude_spread,
    poisson_rate_ci,
    trend_slope,
)

__all__ = [
    "ExposureEstimate",
    "ScreeningPolicy",
    "exposure_before_detection",
    "false_positive_cost",
    "policy_frontier",
    "EXPERIMENTS",
    "normalize_series",
    "render_fig1",
    "render_series",
    "render_table",
    "RateEstimate",
    "binomial_ci",
    "exposure_needed",
    "orders_of_magnitude_spread",
    "poisson_rate_ci",
    "trend_slope",
]
