"""Text renderers for the paper's figure and the experiment tables.

Benchmarks print these so a terminal run of the harness shows the same
rows/series the paper reports.  (No plotting dependencies: the paper's
single figure is two time series, which a bar chart in text conveys.)
"""

from __future__ import annotations

from typing import Sequence

_BAR = "▏▎▍▌▋▊▉█"


def normalize_series(
    series: Sequence[tuple[float, float]], baseline: float | None = None
) -> list[tuple[float, float]]:
    """Normalize values to an arbitrary baseline, like Fig. 1's y-axis.

    ``baseline`` defaults to the series' first nonzero value.
    """
    values = [v for _, v in series]
    if baseline is None:
        nonzero = [v for v in values if v > 0]
        baseline = nonzero[0] if nonzero else 1.0
    if baseline == 0:
        baseline = 1.0
    return [(t, v / baseline) for t, v in series]


def render_series(
    series: Sequence[tuple[float, float]],
    title: str,
    width: int = 40,
    value_format: str = "{:.2f}",
) -> str:
    """One horizontal bar per bucket, labeled with time and value."""
    lines = [title]
    values = [v for _, v in series]
    peak = max(values) if values and max(values) > 0 else 1.0
    for t, v in series:
        filled = v / peak * width
        whole = int(filled)
        fraction = filled - whole
        bar = "█" * whole
        if fraction > 0 and whole < width:
            bar += _BAR[int(fraction * len(_BAR))]
        lines.append(
            f"  t={t:>6.0f}d |{bar:<{width + 1}s}| " + value_format.format(v)
        )
    return "\n".join(lines)


def render_fig1(
    auto_series: Sequence[tuple[float, float]],
    human_series: Sequence[tuple[float, float]],
    width: int = 40,
) -> str:
    """Figure 1: normalized reported CEE rates, both series.

    Both series are normalized to the same arbitrary baseline (the
    human series' mean), matching the paper's "normalized to an
    arbitrary baseline".
    """
    human_values = [v for _, v in human_series]
    baseline = (sum(human_values) / len(human_values)) if human_values else 1.0
    if baseline == 0:
        baseline = 1.0
    auto_n = [(t, v / baseline) for t, v in auto_series]
    human_n = [(t, v / baseline) for t, v in human_series]
    parts = [
        "Figure 1: Reported CEE rates (normalized)",
        render_series(auto_n, "  automatically-reported:", width),
        render_series(human_n, "  user-reported:", width),
    ]
    return "\n".join(parts)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Plain monospace table."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows))
        if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)
