"""Statistics for rate estimation with honest uncertainty.

§4: "quantifying their values in practice is also difficult and
expensive, because it requires running tests on many machines,
potentially for a long time, before one can get high-confidence
results — we don't even know yet how many or how long."

These estimators answer that operational question: given an observed
count, what is the rate's confidence interval; and given a target
precision, how much test time is needed.
"""

from __future__ import annotations

import dataclasses
import math

from scipy import stats as _scipy_stats


@dataclasses.dataclass(frozen=True)
class RateEstimate:
    """A Poisson rate estimate with a confidence interval."""

    events: int
    exposure: float          # e.g. machine-days or core-ops
    rate: float
    lower: float
    upper: float
    confidence: float

    def renders_per(self, unit: float, label: str) -> str:
        return (
            f"{self.rate * unit:.3g} per {label} "
            f"[{self.lower * unit:.3g}, {self.upper * unit:.3g}] "
            f"@{self.confidence:.0%}"
        )


def poisson_rate_ci(
    events: int, exposure: float, confidence: float = 0.95
) -> RateEstimate:
    """Exact (Garwood) Poisson rate confidence interval.

    Args:
        events: observed event count.
        exposure: total observation (machine-days, ops, ...).
        confidence: two-sided coverage.
    """
    if exposure <= 0:
        raise ValueError("exposure must be positive")
    if events < 0:
        raise ValueError("events must be non-negative")
    alpha = 1.0 - confidence
    if events == 0:
        lower = 0.0
    else:
        lower = _scipy_stats.chi2.ppf(alpha / 2, 2 * events) / 2
    upper = _scipy_stats.chi2.ppf(1 - alpha / 2, 2 * events + 2) / 2
    return RateEstimate(
        events=events,
        exposure=exposure,
        rate=events / exposure,
        lower=lower / exposure,
        upper=upper / exposure,
        confidence=confidence,
    )


def binomial_ci(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Clopper–Pearson exact binomial interval."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    alpha = 1.0 - confidence
    if successes == 0:
        lower = 0.0
    else:
        lower = _scipy_stats.beta.ppf(alpha / 2, successes, trials - successes + 1)
    if successes == trials:
        upper = 1.0
    else:
        upper = _scipy_stats.beta.ppf(
            1 - alpha / 2, successes + 1, trials - successes
        )
    return float(lower), float(upper)


def exposure_needed(
    target_rate: float,
    relative_precision: float = 0.5,
    confidence: float = 0.95,
) -> float:
    """How much exposure to bound a rate within ±relative_precision.

    Uses the normal approximation N ≈ (z / precision)²; events needed
    divided by the target rate gives the exposure.  This is the §4
    "how many machines for how long" answer in closed form.
    """
    if target_rate <= 0:
        raise ValueError("target_rate must be positive")
    if not 0 < relative_precision < 1:
        raise ValueError("relative_precision must be in (0, 1)")
    z = _scipy_stats.norm.ppf(0.5 + confidence / 2)
    events_needed = (z / relative_precision) ** 2
    return events_needed / target_rate


def trend_slope(series: list[tuple[float, float]]) -> float:
    """Least-squares slope of a (time, value) series.

    Used to verify Fig. 1's "gradually increasing" automated rate.
    """
    if len(series) < 2:
        return 0.0
    n = len(series)
    mean_x = sum(x for x, _ in series) / n
    mean_y = sum(y for _, y in series) / n
    ss_xx = sum((x - mean_x) ** 2 for x, _ in series)
    if ss_xx == 0:
        return 0.0
    ss_xy = sum((x - mean_x) * (y - mean_y) for x, y in series)
    return ss_xy / ss_xx


def orders_of_magnitude_spread(rates: list[float]) -> float:
    """log10(max/min) over positive rates — §2's 'many orders of
    magnitude' claim, quantified."""
    positive = [r for r in rates if r > 0]
    if len(positive) < 2:
        return 0.0
    return math.log10(max(positive) / min(positive))
