"""Structured trace spans with deterministic, seed-derived ids.

A :class:`Tracer` records :class:`Span` records through a
context-manager API::

    with tracer.span("serving.request", request_id=7) as sp:
        ...
        sp.attrs["status"] = "ok"

Determinism is the whole point.  Real tracing systems mint random span
ids and stamp wall-clock times; both would break the repo's invariant
that a seeded campaign is bit-reproducible and that workers 1 vs N
produce identical artifacts.  Instead:

* the **trace id** is a hash of the trial seed (:meth:`Tracer.start_trace`),
* each **span id** is a hash of ``(trace_id, parent_id, name, child_index)``
  — the index being a per-parent counter, so the id encodes the span's
  position in the call tree and nothing else,
* **timestamps** come from a settable clock that campaigns point at
  their simulated-time counter (ticks x tick_ms); the default clock
  returns 0.0 so spans created outside any campaign stay deterministic.

Spans survive the process pool: a worker's spans are plain picklable
dataclasses, drained with :meth:`Tracer.drain` and re-attached on the
parent with :meth:`Tracer.adopt` (see ``repro.engine.runner``).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Callable

#: parent_id used for root spans when hashing child indices
_ROOT = ""


def _hash_id(*parts: object, digest_size: int = 8) -> str:
    text = "/".join(str(p) for p in parts)
    return hashlib.blake2b(text.encode(), digest_size=digest_size).hexdigest()


@dataclasses.dataclass
class Span:
    """One recorded operation: name, ids, simulated-time bounds, attrs."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start_ms: float
    end_ms: float | None = None
    attrs: dict = dataclasses.field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "attrs": dict(sorted(self.attrs.items())),
        }


class _NullSpan:
    """Context manager handed out when tracing is disabled.

    Supports the same ``sp.attrs[...] = ...`` idiom; the dict is
    discarded on exit so disabled call sites stay allocation-light and
    never accumulate state.
    """

    __slots__ = ("attrs",)

    def __enter__(self) -> "_NullSpan":
        self.attrs: dict = {}
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: object,
    ) -> bool:
        return False


class _ActiveSpan:
    """Context manager that opens/closes one real span on its tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: object,
    ) -> bool:
        span = self._span
        span.end_ms = self._tracer._clock()
        if exc is not None:
            span.attrs.setdefault("error", type(exc).__name__)
        stack = self._tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        self._tracer._spans.append(span)
        return False


class Tracer:
    """Collects spans for the current process; one per obs singleton."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._child_counts: dict[str, int] = {}
        self._trace_id = _hash_id("trace", 0)
        self._clock: Callable[[], float] = lambda: 0.0
        self._null = _NullSpan()

    # -- configuration --------------------------------------------------

    @property
    def trace_id(self) -> str:
        return self._trace_id

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Point span timestamps at a simulated-time source.

        Campaigns call this with ``lambda: self._now_ms`` so span times
        line up with scorecard latencies and event ``time_days``.  Never
        wire this to a wall clock — ids are deterministic but the
        recorded times would not be.
        """
        self._clock = clock

    def start_trace(self, seed: int) -> str:
        """Begin a fresh trace rooted at ``seed``; clears recorded spans.

        Returns the new trace id (a hash of the seed, so the same trial
        seed yields the same trace regardless of worker placement).
        """
        self._trace_id = _hash_id("trace", seed)
        self._spans.clear()
        self._stack.clear()
        self._child_counts.clear()
        return self._trace_id

    def reset(self) -> None:
        """Drop all recorded state and return to the default trace."""
        self.start_trace(0)
        self._clock = lambda: 0.0

    # -- recording ------------------------------------------------------

    def span(self, name: str, **attrs: object) -> "_ActiveSpan | _NullSpan":
        """Open a child span of whatever span is currently on the stack."""
        if not self.enabled:
            return self._null
        parent = self._stack[-1] if self._stack else None
        parent_id = parent.span_id if parent is not None else _ROOT
        index = self._child_counts.get(parent_id, 0)
        self._child_counts[parent_id] = index + 1
        span = Span(
            name=name,
            trace_id=self._trace_id,
            span_id=_hash_id(self._trace_id, parent_id, name, index),
            parent_id=parent.span_id if parent is not None else None,
            start_ms=self._clock(),
            attrs=dict(attrs),
        )
        return _ActiveSpan(self, span)

    # -- gather ---------------------------------------------------------

    def spans(self) -> list[Span]:
        """The recorded (closed) spans, in completion order."""
        return list(self._spans)

    def drain(self) -> list[Span]:
        """Remove and return all recorded spans (pool hand-off)."""
        out = self._spans
        self._spans = []
        return out

    def adopt(self, spans: list[Span]) -> None:
        """Attach spans recorded elsewhere (a worker, a prior trace)."""
        self._spans.extend(spans)


__all__ = ["Span", "Tracer"]
