"""Process-local metrics registry: counters, gauges, histograms.

One registry instance (the module singleton in :mod:`repro.obs`) holds
every metric the framework emits.  Design constraints, in order:

1. **Zero-cost when disabled.**  Every mutator checks one boolean on
   the owning registry and returns; hot paths additionally cache that
   boolean at construction time so the off mode reduces to a plain
   attribute test (benchmarked in ``BENCH_OBS.json``).
2. **Deterministic.**  Metrics never read clocks or RNGs; a snapshot
   of a seeded campaign is a pure function of the seed.
3. **Pool-mergeable.**  :meth:`MetricsRegistry.snapshot` /
   :meth:`MetricsRegistry.merge` round-trip through pickle/JSON so the
   trial engine can reset a worker's registry per trial and fold the
   per-trial snapshots back together on gather (counters and histogram
   buckets add; gauges last-write-win).
4. **Bounded cardinality.**  A series may fan out over at most
   :data:`MAX_LABEL_SETS` distinct label combinations; the 65th raises
   :class:`CardinalityError` instead of silently eating memory — the
   fleet-scale rule that per-core data belongs in forensics state, not
   in label values.

``reset()`` zeroes series *in place* and keeps every registered metric
object valid, so instrumentation handles cached in ``__init__`` bodies
(or module globals) survive per-trial resets.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

#: maximum distinct label sets per series before CardinalityError
MAX_LABEL_SETS = 64

#: default latency buckets (simulated milliseconds, upper bounds)
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)

#: canonical label-set key: sorted (name, value) pairs
LabelKey = tuple[tuple[str, str], ...]


class CardinalityError(RuntimeError):
    """A metric exceeded :data:`MAX_LABEL_SETS` distinct label sets.

    Unbounded label values (request ids, per-core ids at fleet scale)
    turn a metrics registry into an accidental database; the guard
    fails fast with the offending series name so the label can be
    dropped or bucketed.
    """


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base: one named family of labeled series."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str = "", unit: str = "") -> None:
        self.registry = registry
        self.name = name
        self.help = help
        self.unit = unit
        self._series: dict[LabelKey, object] = {}

    def _key(self, labels: dict[str, object]) -> LabelKey:
        key = _label_key(labels)
        if key not in self._series and len(self._series) >= MAX_LABEL_SETS:
            raise CardinalityError(
                f"metric {self.name!r} would exceed {MAX_LABEL_SETS} "
                f"distinct label sets (offending labels: {dict(key)!r}); "
                "drop or bucket the offending label"
            )
        return key

    def clear(self) -> None:
        """Drop all series (values *and* label sets); keep registration."""
        self._series.clear()

    def series(self) -> Iterator[tuple[LabelKey, object]]:
        """Deterministic (sorted) iteration over the label sets."""
        return iter(sorted(self._series.items()))


class Counter(Metric):
    """Monotonically-increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self.registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return float(self._series.get(_label_key(labels), 0.0))


class Gauge(Metric):
    """Point-in-time value (set wins; merge keeps the incoming value)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        if not self.registry.enabled:
            return
        self._series[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self.registry.enabled:
            return
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return float(self._series.get(_label_key(labels), 0.0))


@dataclasses.dataclass
class HistogramState:
    """Per-label-set histogram accumulator (non-cumulative buckets)."""

    counts: list[int]
    sum: float = 0.0
    count: int = 0


class Histogram(Metric):
    """Distribution over fixed upper-bound buckets (plus +Inf).

    Bucket semantics match Prometheus: a value lands in the first
    bucket whose upper bound is ``>=`` the value (``le``); values above
    the last bound land in the implicit +Inf bucket.  Internally the
    counts are per-bucket (non-cumulative); the exporter cumulates.
    """

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str = "", unit: str = "",
                 buckets: tuple[float, ...] | None = None) -> None:
        super().__init__(registry, name, help=help, unit=unit)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.buckets = bounds

    def _bucket_index(self, value: float) -> int:
        """Index of the bucket ``value`` lands in (len(buckets) = +Inf)."""
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                return index
        return len(self.buckets)

    def observe(self, value: float, **labels: object) -> None:
        if not self.registry.enabled:
            return
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            state = HistogramState(counts=[0] * (len(self.buckets) + 1))
            self._series[key] = state
        state.counts[self._bucket_index(value)] += 1
        state.sum += value
        state.count += 1

    def state(self, **labels: object) -> HistogramState | None:
        return self._series.get(_label_key(labels))


class MetricsRegistry:
    """All metrics of one process, addressable by name.

    Accessors are get-or-create: the first ``counter("x")`` registers
    the family, later calls return the same object (so handles can be
    cached anywhere).  Re-requesting a name as a different kind is a
    programming error and raises ``TypeError``.
    """

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Metric] = {}

    # -- registration ---------------------------------------------------

    def _get_or_create(self, cls: type, name: str, **kwargs: object) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is already registered as "
                    f"{metric.kind}, not {cls.kind}"
                )
            return metric
        metric = cls(self, name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", unit: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help, unit=unit)

    def gauge(self, name: str, help: str = "", unit: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help, unit=unit)

    def histogram(self, name: str, help: str = "", unit: str = "",
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        return self._get_or_create(
            Histogram, name, help=help, unit=unit, buckets=buckets
        )

    # -- introspection --------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def collect(self) -> Iterator[Metric]:
        """Metrics in deterministic (name-sorted) order."""
        for name in self.names():
            yield self._metrics[name]

    # -- lifecycle ------------------------------------------------------

    def reset(self) -> None:
        """Zero every series in place (handles stay valid)."""
        for metric in self._metrics.values():
            metric.clear()

    def snapshot(self) -> dict:
        """JSON/pickle-safe dump of every series, for pool gather."""
        out: dict[str, dict] = {}
        for metric in self.collect():
            entry: dict = {
                "kind": metric.kind, "help": metric.help,
                "unit": metric.unit, "series": [],
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                for key, state in metric.series():
                    entry["series"].append({
                        "labels": dict(key),
                        "counts": list(state.counts),
                        "sum": state.sum,
                        "count": state.count,
                    })
            else:
                for key, value in metric.series():
                    entry["series"].append(
                        {"labels": dict(key), "value": value}
                    )
            out[metric.name] = entry
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a worker's snapshot in: add counts, last-write gauges."""
        for name, entry in snapshot.items():
            kind = entry["kind"]
            if kind == "histogram":
                metric = self.histogram(
                    name, help=entry.get("help", ""),
                    unit=entry.get("unit", ""),
                    buckets=tuple(entry.get("buckets", DEFAULT_BUCKETS)),
                )
                for row in entry["series"]:
                    key = metric._key(row["labels"])
                    state = metric._series.get(key)
                    if state is None:
                        state = HistogramState(
                            counts=[0] * (len(metric.buckets) + 1)
                        )
                        metric._series[key] = state
                    for index, count in enumerate(row["counts"]):
                        state.counts[index] += count
                    state.sum += row["sum"]
                    state.count += row["count"]
                continue
            if kind == "gauge":
                metric = self.gauge(
                    name, help=entry.get("help", ""),
                    unit=entry.get("unit", ""),
                )
                for row in entry["series"]:
                    metric._series[metric._key(row["labels"])] = row["value"]
                continue
            metric = self.counter(
                name, help=entry.get("help", ""), unit=entry.get("unit", "")
            )
            for row in entry["series"]:
                key = metric._key(row["labels"])
                metric._series[key] = metric._series.get(key, 0.0) + row["value"]


__all__ = [
    "CardinalityError",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "HistogramState",
    "MAX_LABEL_SETS",
    "Metric",
    "MetricsRegistry",
]
