"""Unified observability: metrics registry, trace spans, forensics.

The paper's core argument is that corrupt execution errors stay
invisible until the fleet is instrumented for them (§3: automated
screening only overtook user reports once telemetry existed).  This
package is that instrumentation layer for the whole repo — every
subsystem (silicon, fleet, detection, serving, storage, engine) emits
into one process-local registry and one tracer, so cross-layer
questions ("which core caused this SLO breach, and how long did the
suspicion signal take to reach quarantine?") stop requiring manual
archaeology.

Components
----------
- :mod:`repro.obs.registry` — counters / gauges / histograms with
  labeled series, bounded cardinality, snapshot/merge for the process
  pool.  Singleton: :data:`metrics`.
- :mod:`repro.obs.spans` — context-manager trace spans with ids derived
  deterministically from the trial seed.  Singleton: :data:`tracer`.
- :mod:`repro.obs.export` — Prometheus-text and JSON exporters
  (``repro metrics``).
- :mod:`repro.obs.forensics` — per-incident timeline reconstruction:
  first corrupt op → first signal → quarantine, with per-stage
  latencies (``repro trace``, E15/E16 scorecards).

The no-op mode
--------------
``REPRO_OBS=off`` (or ``0``/``false``/``no``) disables everything.
Instrumented call sites cache :func:`enabled` in a local or instance
boolean, so the off mode costs one attribute test per call site —
measured against the on mode in ``BENCH_OBS.json``.  Observability
never touches an RNG or a control-flow decision: campaign scorecards
are byte-identical with obs on or off (pinned by
``tests/test_obs_parity.py``).
"""

from __future__ import annotations

import os

from repro.obs.registry import (  # noqa: F401  (re-exported API)
    CardinalityError,
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MAX_LABEL_SETS,
    MetricsRegistry,
)
from repro.obs.spans import Span, Tracer  # noqa: F401

#: environment variable gating the whole subsystem
ENV_VAR = "REPRO_OBS"

_OFF_VALUES = frozenset({"off", "0", "false", "no"})


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "on").strip().lower() not in _OFF_VALUES


#: the process-wide metrics registry
metrics = MetricsRegistry(enabled=_env_enabled())

#: the process-wide tracer
tracer = Tracer(enabled=metrics.enabled)


def enabled() -> bool:
    """Is observability on for this process?

    Instrumented constructors cache this into ``self._obs_on`` so their
    hot paths pay a single attribute test when off.  Flipping the
    switch mid-object-lifetime therefore only affects objects built
    afterwards — by design, so a campaign is all-on or all-off.
    """
    return metrics.enabled


def set_enabled(flag: bool) -> None:
    """Flip observability for this process (and future pool workers).

    Also writes :data:`ENV_VAR` so spawned worker processes inherit the
    setting even under start methods that re-import instead of forking.
    """
    metrics.enabled = bool(flag)
    tracer.enabled = bool(flag)
    os.environ[ENV_VAR] = "on" if flag else "off"


__all__ = [
    "CardinalityError",
    "Counter",
    "DEFAULT_BUCKETS",
    "ENV_VAR",
    "Gauge",
    "Histogram",
    "MAX_LABEL_SETS",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "enabled",
    "metrics",
    "set_enabled",
    "tracer",
]
