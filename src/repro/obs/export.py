"""Exporters: render a :class:`~repro.obs.registry.MetricsRegistry`.

Two formats, both deterministic (name-sorted families, label-sorted
series):

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket{le=...}``
  series for histograms), pasteable into any Prometheus tooling.
* :func:`to_json` — the registry snapshot as a JSON string, for
  programmatic consumption (``repro metrics --format json``).
"""

from __future__ import annotations

import json

from repro.obs.registry import Histogram, MetricsRegistry


def _fmt_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _fmt_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{_escape(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every registered metric in Prometheus text format."""
    lines: list[str] = []
    for metric in registry.collect():
        help_text = metric.help or metric.name
        if metric.unit:
            help_text = f"{help_text} [{metric.unit}]"
        lines.append(f"# HELP {metric.name} {help_text}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for key, state in metric.series():
                labels = dict(key)
                cumulative = 0
                for bound, count in zip(metric.buckets, state.counts):
                    cumulative += count
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_fmt_labels(labels, {'le': _fmt_value(bound)})}"
                        f" {cumulative}"
                    )
                cumulative += state.counts[-1]
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_fmt_labels(labels, {'le': '+Inf'})} {cumulative}"
                )
                lines.append(
                    f"{metric.name}_sum{_fmt_labels(labels)}"
                    f" {_fmt_value(state.sum)}"
                )
                lines.append(
                    f"{metric.name}_count{_fmt_labels(labels)} {state.count}"
                )
            continue
        for key, value in metric.series():
            lines.append(
                f"{metric.name}{_fmt_labels(dict(key))} {_fmt_value(value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """Render the registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


__all__ = ["to_json", "to_prometheus"]
