"""Declared metric and span names: the observability interface registry.

Every metric family and span name the framework emits through the
:data:`repro.obs.metrics` / :data:`repro.obs.tracer` singletons is
declared here as a constant.  The ``SAFE002`` lint rule statically
cross-references each emission site's name literal against this module,
so a typo'd name (``serving_request_total`` vs
``serving_requests_total``) fails ``repro lint`` instead of silently
shipping a metric no dashboard, alert, or OBSERVABILITY.md entry knows
about.  The docs-coverage tests (``tests/test_docs.py``) close the
other half of the loop: every name here that is actually emitted must
appear in OBSERVABILITY.md.

Adding a metric or span is therefore three edits, each machine-checked:
declare the constant here, emit it at the call site, document it in
OBSERVABILITY.md.
"""

from __future__ import annotations

# -- metric families --------------------------------------------------

SILICON_CORRUPTIONS_TOTAL = "silicon_corruptions_total"
SILICON_MACHINE_CHECKS_TOTAL = "silicon_machine_checks_total"

FLEET_TICKS_TOTAL = "fleet_ticks_total"
FLEET_EVENTS_TOTAL = "fleet_events_total"
FLEET_QUARANTINES_TOTAL = "fleet_quarantines_total"
FLEET_DETECTION_LATENCY_DAYS = "fleet_detection_latency_days"

TELEMETRY_MCE_RECORDS_TOTAL = "telemetry_mce_records_total"
TELEMETRY_MCE_EVENTS_TOTAL = "telemetry_mce_events_total"
TELEMETRY_CRASH_DUMPS_TOTAL = "telemetry_crash_dumps_total"

DETECTION_CONFUSION = "detection_confusion"
DETECTION_ISOLATIONS_TOTAL = "detection_isolations_total"

SERVING_REQUESTS_TOTAL = "serving_requests_total"
SERVING_LATENCY_MS = "serving_latency_ms"
SERVING_CORRUPT_ESCAPES_TOTAL = "serving_corrupt_escapes_total"
SERVING_CORRUPT_CAUGHT_TOTAL = "serving_corrupt_caught_total"
SERVING_QUARANTINES_TOTAL = "serving_quarantines_total"
SERVING_HEDGES_TOTAL = "serving_hedges_total"
SERVING_RETRIES_TOTAL = "serving_retries_total"
SERVING_RETRY_BUDGET_EXHAUSTED_TOTAL = "serving_retry_budget_exhausted_total"
SERVING_STALE_SERVED_TOTAL = "serving_stale_served_total"
SERVING_SHARD_DEGRADED_TOTAL = "serving_shard_degraded_total"
SERVING_AUTOSCALE_ACTIONS_TOTAL = "serving_autoscale_actions_total"

INSTRCHECK_OPS_CHECKED_TOTAL = "instrcheck_ops_checked_total"
INSTRCHECK_MISMATCHES_TOTAL = "instrcheck_mismatches_total"
INSTRCHECK_LAG_DROPS_TOTAL = "instrcheck_lag_drops_total"
INSTRCHECK_REPLAYS_TOTAL = "instrcheck_replays_total"
INSTRCHECK_QUARANTINES_TOTAL = "instrcheck_quarantines_total"

FLEETSCREEN_SCREENS_TOTAL = "fleetscreen_screens_total"
FLEETSCREEN_CONFESSIONS_TOTAL = "fleetscreen_confessions_total"
FLEETSCREEN_BUDGET_SKIPS_TOTAL = "fleetscreen_budget_skips_total"
FLEETSCREEN_MACHINE_SECONDS = "fleetscreen_machine_seconds"

STORAGE_WRITES_TOTAL = "storage_writes_total"
STORAGE_READS_TOTAL = "storage_reads_total"
STORAGE_DURABLE_ESCAPES_TOTAL = "storage_durable_escapes_total"
STORAGE_REPAIRS_TOTAL = "storage_repairs_total"
STORAGE_REPAIR_LATENCY_MS = "storage_repair_latency_ms"
STORAGE_QUARANTINES_TOTAL = "storage_quarantines_total"

# -- span names -------------------------------------------------------

SPAN_ENGINE_TRIAL = "engine.trial"
SPAN_DETECTION_QUARANTINE = "detection.quarantine"
SPAN_SERVING_SERVE = "serving.serve"
SPAN_SERVING_REQUEST = "serving.request"
SPAN_SERVING_QUARANTINE = "serving.quarantine"
SPAN_SERVING_SCALE_REQUEST = "serving.scale_request"
SPAN_SERVING_AUTOSCALE = "serving.autoscale"
SPAN_SERVING_DEGRADE = "serving.degrade"
SPAN_INSTRCHECK_UNIT = "instrcheck.unit"
SPAN_INSTRCHECK_REPLAY = "instrcheck.replay"
SPAN_FLEETSCREEN_PASS = "fleetscreen.pass"
SPAN_FLEETSCREEN_DISTILL = "fleetscreen.distill"
SPAN_STORAGE_PUT = "storage.put"
SPAN_STORAGE_GET = "storage.get"
SPAN_STORAGE_QUARANTINE = "storage.quarantine"

#: every declared metric family name
METRIC_NAMES: frozenset[str] = frozenset({
    SILICON_CORRUPTIONS_TOTAL,
    SILICON_MACHINE_CHECKS_TOTAL,
    FLEET_TICKS_TOTAL,
    FLEET_EVENTS_TOTAL,
    FLEET_QUARANTINES_TOTAL,
    FLEET_DETECTION_LATENCY_DAYS,
    TELEMETRY_MCE_RECORDS_TOTAL,
    TELEMETRY_MCE_EVENTS_TOTAL,
    TELEMETRY_CRASH_DUMPS_TOTAL,
    DETECTION_CONFUSION,
    DETECTION_ISOLATIONS_TOTAL,
    SERVING_REQUESTS_TOTAL,
    SERVING_LATENCY_MS,
    SERVING_CORRUPT_ESCAPES_TOTAL,
    SERVING_CORRUPT_CAUGHT_TOTAL,
    SERVING_QUARANTINES_TOTAL,
    SERVING_HEDGES_TOTAL,
    SERVING_RETRIES_TOTAL,
    SERVING_RETRY_BUDGET_EXHAUSTED_TOTAL,
    SERVING_STALE_SERVED_TOTAL,
    SERVING_SHARD_DEGRADED_TOTAL,
    SERVING_AUTOSCALE_ACTIONS_TOTAL,
    INSTRCHECK_OPS_CHECKED_TOTAL,
    INSTRCHECK_MISMATCHES_TOTAL,
    INSTRCHECK_LAG_DROPS_TOTAL,
    INSTRCHECK_REPLAYS_TOTAL,
    INSTRCHECK_QUARANTINES_TOTAL,
    FLEETSCREEN_SCREENS_TOTAL,
    FLEETSCREEN_CONFESSIONS_TOTAL,
    FLEETSCREEN_BUDGET_SKIPS_TOTAL,
    FLEETSCREEN_MACHINE_SECONDS,
    STORAGE_WRITES_TOTAL,
    STORAGE_READS_TOTAL,
    STORAGE_DURABLE_ESCAPES_TOTAL,
    STORAGE_REPAIRS_TOTAL,
    STORAGE_REPAIR_LATENCY_MS,
    STORAGE_QUARANTINES_TOTAL,
})

#: every declared span name
SPAN_NAMES: frozenset[str] = frozenset({
    SPAN_ENGINE_TRIAL,
    SPAN_DETECTION_QUARANTINE,
    SPAN_SERVING_SERVE,
    SPAN_SERVING_REQUEST,
    SPAN_SERVING_QUARANTINE,
    SPAN_SERVING_SCALE_REQUEST,
    SPAN_SERVING_AUTOSCALE,
    SPAN_SERVING_DEGRADE,
    SPAN_INSTRCHECK_UNIT,
    SPAN_INSTRCHECK_REPLAY,
    SPAN_FLEETSCREEN_PASS,
    SPAN_FLEETSCREEN_DISTILL,
    SPAN_STORAGE_PUT,
    SPAN_STORAGE_GET,
    SPAN_STORAGE_QUARANTINE,
})

#: the full declared-name contract SAFE002 checks against
DECLARED_NAMES: frozenset[str] = METRIC_NAMES | SPAN_NAMES

__all__ = sorted(
    name for name in dict(vars()) if name.isupper()
)
