"""Corruption forensics: join spans, events, and ground truth.

The paper's motivating pain is that a CEE incident is reconstructed by
archaeology — "which core caused this, when did it start lying, and how
long did suspicion take to become quarantine?"  This module does that
join mechanically for campaign runs:

* **ground truth** — the campaign's unconditional per-core record of
  the first tick whose :class:`~repro.silicon.core.Core` corruption
  counter moved (``first_corrupt_tick``);
* **signals** — the :class:`~repro.core.events.CeeEvent` stream the
  detection layer actually saw;
* **decision** — the scorecard's ``quarantine_tick``.

:func:`detection_latency_summary` reduces those to per-core stage
latencies (first corrupt op → first signal → quarantine) plus signal
latency percentiles; the result is JSON-safe and deterministic, so the
E15/E16 scorecards embed it directly.  :func:`render_forensics` formats
the same data as the ``repro trace`` timeline report.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.core.events import CeeEvent
from repro.obs.spans import Span

#: campaign tick-ms → CeeEvent.time_days conversion (mirrors campaigns)
MS_PER_DAY = 86_400_000.0


def _event_ms(event: CeeEvent) -> float:
    return event.time_days * MS_PER_DAY


def _percentile(values: list[float], q: float) -> float | None:
    if not values:
        return None
    return float(np.percentile(np.asarray(values, dtype=float), q))


def detection_latency_summary(
    first_corrupt_tick: dict[str, int],
    quarantine_tick: dict[str, int],
    events: list[CeeEvent],
    tick_ms: float,
) -> dict[str, dict]:
    """Per-core detection-latency record, keyed by core id (sorted).

    For every core that demonstrably corrupted (it has a
    ``first_corrupt_tick`` entry), compute when the first attributed
    suspicion signal arrived and when quarantine landed, all in
    simulated milliseconds.  Stage latencies are ``None`` when the
    stage never happened (escaped incident, or quarantined on a
    sibling's evidence before emitting a signal).
    """
    by_core: dict[str, list[CeeEvent]] = collections.defaultdict(list)
    for event in events:
        if event.core_id is not None:
            by_core[event.core_id].append(event)

    summary: dict[str, dict] = {}
    for core_id in sorted(first_corrupt_tick):
        corrupt_ms = first_corrupt_tick[core_id] * tick_ms
        signals = sorted(
            (e for e in by_core.get(core_id, ())
             if _event_ms(e) >= corrupt_ms),
            key=_event_ms,
        )
        first_signal_ms = _event_ms(signals[0]) if signals else None
        q_tick = quarantine_tick.get(core_id)
        quarantine_ms = None if q_tick is None else q_tick * tick_ms
        latencies = [_event_ms(e) - corrupt_ms for e in signals]
        kinds = collections.Counter(e.kind.value for e in signals)
        summary[core_id] = {
            "first_corrupt_tick": first_corrupt_tick[core_id],
            "first_corrupt_ms": corrupt_ms,
            "first_signal_ms": first_signal_ms,
            "quarantine_ms": quarantine_ms,
            "corrupt_to_signal_ms": (
                None if first_signal_ms is None
                else first_signal_ms - corrupt_ms
            ),
            "signal_to_quarantine_ms": (
                None if (first_signal_ms is None or quarantine_ms is None)
                else quarantine_ms - first_signal_ms
            ),
            "corrupt_to_quarantine_ms": (
                None if quarantine_ms is None
                else quarantine_ms - corrupt_ms
            ),
            "n_signals": len(signals),
            "signal_kinds": dict(sorted(kinds.items())),
            "signal_latency_p50_ms": _percentile(latencies, 50),
            "signal_latency_p90_ms": _percentile(latencies, 90),
            "signal_latency_p99_ms": _percentile(latencies, 99),
        }
    return summary


def latency_percentiles(
    summary: dict[str, dict], stage: str = "corrupt_to_quarantine_ms"
) -> dict[str, float | None]:
    """Fleet-level percentiles of one stage latency across incidents."""
    values = [
        record[stage] for record in summary.values()
        if record.get(stage) is not None
    ]
    return {
        "p50": _percentile(values, 50),
        "p90": _percentile(values, 90),
        "p99": _percentile(values, 99),
        "n": len(values),
    }


def span_stats(spans: list[Span]) -> dict[str, dict]:
    """Per-span-name count and total simulated duration, name-sorted."""
    stats: dict[str, dict] = {}
    for span in spans:
        entry = stats.setdefault(
            span.name, {"count": 0, "total_ms": 0.0, "errors": 0}
        )
        entry["count"] += 1
        entry["total_ms"] += span.duration_ms
        if "error" in span.attrs:
            entry["errors"] += 1
    return dict(sorted(stats.items()))


def _fmt_ms(value: float | None) -> str:
    return "-" if value is None else f"{value:.1f} ms"


def render_forensics(
    title: str,
    summary: dict[str, dict],
    events: list[CeeEvent],
    spans: list[Span],
    tick_ms: float,
    quarantine_tick: dict[str, int] | None = None,
) -> str:
    """The ``repro trace`` report: per-incident timeline + span rollup."""
    lines = [f"== corruption forensics: {title} =="]
    if not summary:
        lines.append("no core demonstrably corrupted during the campaign")
    for core_id, record in summary.items():
        lines.append(f"incident core {core_id}:")
        lines.append(
            f"  first corrupt op     tick {record['first_corrupt_tick']:>5}"
            f"  {record['first_corrupt_ms']:>9.1f} ms"
        )
        if record["first_signal_ms"] is None:
            lines.append(
                "  first signal         (none attributed to this core)"
            )
        else:
            lines.append(
                f"  first signal         tick "
                f"{int(record['first_signal_ms'] / tick_ms):>5}"
                f"  {record['first_signal_ms']:>9.1f} ms"
                f"   (+{record['corrupt_to_signal_ms']:.1f} ms after corrupt)"
            )
        if record["quarantine_ms"] is None:
            lines.append(
                "  quarantine decision  (never quarantined — escape)"
            )
        else:
            after_signal = record["signal_to_quarantine_ms"]
            suffix = (
                "" if after_signal is None
                else f"   (+{after_signal:.1f} ms after signal, "
                f"+{record['corrupt_to_quarantine_ms']:.1f} ms end-to-end)"
            )
            lines.append(
                f"  quarantine decision  tick "
                f"{int(record['quarantine_ms'] / tick_ms):>5}"
                f"  {record['quarantine_ms']:>9.1f} ms{suffix}"
            )
        kinds = ", ".join(
            f"{kind} x{count}"
            for kind, count in record["signal_kinds"].items()
        )
        lines.append(
            f"  signals attributed:  {record['n_signals']}"
            + (f" ({kinds})" if kinds else "")
        )
        p50, p90, p99 = (
            record["signal_latency_p50_ms"],
            record["signal_latency_p90_ms"],
            record["signal_latency_p99_ms"],
        )
        if p50 is not None:
            lines.append(
                "  signal latency since first corrupt: "
                f"p50={p50:.1f} p90={p90:.1f} p99={p99:.1f} ms"
            )
    if quarantine_tick:
        collateral = sorted(set(quarantine_tick) - set(summary))
        if collateral:
            lines.append(
                "collateral quarantines (no observed corruption): "
                + ", ".join(
                    f"{core_id}@tick{quarantine_tick[core_id]}"
                    for core_id in collateral
                )
            )
    lines.append(f"events: {len(events)} total")
    stats = span_stats(spans)
    if stats:
        total = sum(entry["count"] for entry in stats.values())
        lines.append(f"spans: {total} recorded")
        for name, entry in stats.items():
            err = f", errors {entry['errors']}" if entry["errors"] else ""
            lines.append(
                f"  {name:<24} x{entry['count']:<6}"
                f" total {entry['total_ms']:.1f} ms{err}"
            )
    return "\n".join(lines)


__all__ = [
    "MS_PER_DAY",
    "detection_latency_summary",
    "latency_percentiles",
    "render_forensics",
    "span_stats",
]
