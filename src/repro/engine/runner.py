"""Deterministic parallel trial execution.

The experiments in :mod:`repro.analysis.experiments` are Monte-Carlo
campaigns: independent trials that differ only in their seed.  This
module is the one place that knows how to fan such trials out over a
process pool while keeping the contract that matters for a
reproduction: **parallelism changes latency, never results**.

Three rules enforce that contract:

1. Per-trial seeds come from :func:`derive_trial_seeds`
   (``numpy.random.SeedSequence.spawn``), so trial *i*'s seed depends
   only on the master seed and *i* — not on the worker count, the chunk
   size, or how many trials run alongside it.
2. Work is chunked and futures are gathered by **submission index**,
   so results come back in trial order regardless of completion order.
3. Workers that die (OOM-kill, ``os._exit`` in native code) surface as
   a :class:`WorkerCrashError` immediately — the pool never hangs.

``workers=1`` (the default unless ``REPRO_WORKERS`` says otherwise)
bypasses the pool entirely and runs inline, so serial callers pay no
pickling or fork cost.
"""

from __future__ import annotations

import dataclasses
import functools
import math
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro import obs

T = TypeVar("T")
R = TypeVar("R")

#: environment override for the default worker count
WORKERS_ENV = "REPRO_WORKERS"

_SEED_MASK = (1 << 63) - 1


class WorkerCrashError(RuntimeError):
    """A pool worker died without returning a result.

    Raised instead of letting :class:`BrokenProcessPool` propagate so
    callers get an actionable message (which chunk was lost, likely
    causes) rather than a bare pool error — and never a hang.
    """


@dataclasses.dataclass(frozen=True, slots=True)
class Trial:
    """One unit of Monte-Carlo work: an index and its derived seed."""

    index: int
    seed: int


def resolve_workers(workers: int | None = None) -> int:
    """Explicit argument, else ``REPRO_WORKERS``, else 1."""
    if workers is None:
        workers = int(os.environ.get(WORKERS_ENV, "1") or "1")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def effective_workers(
    workers: int | None = None, n_items: int | None = None
) -> int:
    """Worker count clamped to what the host can actually parallelize.

    A pool wider than ``os.cpu_count()`` is pure overhead: the extra
    processes time-slice one CPU while every chunk still pays pickling
    and IPC (the root cause of BENCH_E15's historical < 1.0 "speedup"
    on single-CPU hosts).  Benchmarks and campaign entry points use
    this; :func:`run_tasks` itself deliberately does not, so explicit
    worker counts in tests still exercise the real pool.
    """
    workers = resolve_workers(workers)
    effective = min(workers, os.cpu_count() or 1)
    if n_items is not None:
        effective = min(effective, max(1, n_items))
    return max(1, effective)


def derive_trial_seeds(seed: int, n_trials: int) -> list[int]:
    """Independent, stable per-trial seeds from one master seed.

    Uses ``SeedSequence.spawn`` so the streams are statistically
    independent, and trial *i*'s seed is a pure function of
    ``(seed, i)``: asking for more trials later extends the list
    without changing the prefix already consumed.
    """
    if n_trials < 0:
        raise ValueError(f"n_trials must be >= 0, got {n_trials}")
    children = np.random.SeedSequence(seed).spawn(n_trials)
    return [
        int(child.generate_state(1, dtype=np.uint64)[0]) & _SEED_MASK
        for child in children
    ]


def _run_chunk(fn: Callable[[T], R], chunk: list[T]) -> list[R]:
    return [fn(item) for item in chunk]


def run_tasks(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally on a process pool.

    Results are returned in item order.  With ``workers=1`` (or a
    single item) everything runs inline in this process.  ``fn`` and
    the items must be picklable when ``workers > 1`` — module-level
    functions and :func:`functools.partial` over them qualify,
    closures do not.

    Exceptions raised *by* ``fn`` propagate unchanged; a worker process
    dying raises :class:`WorkerCrashError`.
    """
    items = list(items)
    if not items:
        return []
    workers = resolve_workers(workers)
    if workers == 1 or len(items) == 1:
        return [fn(item) for item in items]
    if chunk_size is None:
        # ~4 chunks per worker: coarse enough to amortize pickling,
        # fine enough that a slow trial doesn't straggle a whole arm.
        chunk_size = max(1, math.ceil(len(items) / (workers * 4)))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks = [
        items[start:start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]
    results: list[list[R] | None] = [None] * len(chunks)
    with ProcessPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
        futures = {
            pool.submit(_run_chunk, fn, chunk): position
            for position, chunk in enumerate(chunks)
        }
        for future in as_completed(futures):
            position = futures[future]
            try:
                results[position] = future.result()
            except BrokenProcessPool as error:
                first = position * chunk_size
                raise WorkerCrashError(
                    f"worker process died while running chunk {position} "
                    f"(items {first}..{first + len(chunks[position]) - 1}); "
                    "typical causes: OOM kill, os._exit in native code, "
                    "or an unpicklable result"
                ) from error
    return [result for chunk in results for result in chunk]  # type: ignore[union-attr]


def _obs_trial(fn: Callable[[Trial], R], trial: Trial) -> tuple[R, list, dict]:
    """Run one trial inside a fresh observability scope.

    Resetting the process-global registry *before* the trial is the
    fix for the telemetry-leak bug: pool workers are long-lived, so
    without the reset a worker's counters accumulate across every
    trial it happens to execute and the merged totals depend on the
    worker count.  After the trial we hand back a snapshot (to merge
    in the parent) plus the drained spans (so traces survive the
    pickle boundary).  Trace/span ids derive from the trial seed
    alone, so they are identical for any worker count.
    """
    obs.metrics.reset()
    obs.tracer.start_trace(trial.seed)
    with obs.tracer.span("engine.trial", index=trial.index, seed=trial.seed):
        result = fn(trial)
    return result, obs.tracer.drain(), obs.metrics.snapshot()


def run_trials(
    fn: Callable[[Trial], R],
    n_trials: int,
    *,
    seed: int = 0,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list[R]:
    """Run ``fn`` over ``n_trials`` seeded :class:`Trial` objects.

    The result list is ordered by trial index and is bit-identical for
    any worker count (given ``fn`` itself is deterministic in its
    trial seed).

    When observability is on (:func:`repro.obs.enabled`), each trial
    runs under a per-trial ``engine.trial`` span with a registry reset
    at trial entry; worker-side metric snapshots and spans are merged
    back here in trial order, so the parent process ends up with the
    same metrics and spans regardless of the worker count.
    """
    trials = [
        Trial(index, trial_seed)
        for index, trial_seed in enumerate(derive_trial_seeds(seed, n_trials))
    ]
    if not obs.enabled():
        return run_tasks(fn, trials, workers=workers, chunk_size=chunk_size)
    # Preserve whatever the parent already recorded this session: trials
    # replace the registry contents while they run, then everything is
    # merged back in a deterministic (trial-index) order.
    base_spans = obs.tracer.drain()
    base_metrics = obs.metrics.snapshot()
    wrapped = functools.partial(_obs_trial, fn)
    outcomes = run_tasks(wrapped, trials, workers=workers, chunk_size=chunk_size)
    obs.metrics.reset()
    obs.metrics.merge(base_metrics)
    obs.tracer.adopt(base_spans)
    results: list[R] = []
    for result, spans, snapshot in outcomes:
        results.append(result)
        obs.tracer.adopt(spans)
        obs.metrics.merge(snapshot)
    return results


#: per-process cache of attached fleet snapshots, keyed by segment
#: name.  Pool workers are long-lived within one fan-out; attaching
#: once per worker (not per trial) keeps the hand-off zero-copy and
#: O(1).  Mappings are reclaimed when the worker process exits.
_ATTACH_CACHE: dict = {}


def _attached_columns(handle):
    cached = _ATTACH_CACHE.get(handle.segment_name)
    if cached is None:
        from repro.fleet import shm as fleet_shm

        cached = fleet_shm.attach(handle)
        _ATTACH_CACHE[handle.segment_name] = cached
    return cached.columns


def _shared_fleet_trial(fn, handle, trial: Trial):
    return fn(trial, _attached_columns(handle))


def _inline_fleet_trial(fn, columns, trial: Trial):
    # Fresh mutable-state copy per trial, so inline (workers=1) trials
    # are as independent as pool trials attaching the read-only
    # snapshot — worker-invariance depends on it.
    return fn(trial, columns.thaw())


def run_fleet_trials(
    fn,
    fleet,
    n_trials: int,
    *,
    seed: int = 0,
    workers: int | None = None,
    chunk_size: int | None = None,
):
    """Fan ``fn(trial, columns)`` over trials sharing one fleet.

    The fleet (:class:`repro.fleet.columns.FleetColumns`) crosses the
    process boundary exactly once, as a
    :mod:`multiprocessing.shared_memory` snapshot published here and
    attached read-only per worker — per-trial pickling of fleet state
    is gone entirely.  ``fn`` must treat the columns as immutable (or
    ``thaw()`` them; :class:`~repro.fleet.simulator.FleetSimulator`
    does this automatically for read-only columns).

    Seed contract and result ordering are exactly
    :func:`run_trials`'s: trial *i*'s seed depends only on
    ``(seed, i)``, results are bit-identical for any worker count.
    The snapshot is unlinked on the way out even when a worker dies
    (:class:`WorkerCrashError`), so no ``/dev/shm`` segments leak.
    """
    workers = resolve_workers(workers)
    if workers == 1 or n_trials <= 1:
        bound = functools.partial(_inline_fleet_trial, fn, fleet)
        return run_trials(
            bound, n_trials, seed=seed, workers=1, chunk_size=chunk_size
        )
    from repro.fleet import shm as fleet_shm

    snapshot = fleet_shm.publish(fleet)
    try:
        bound = functools.partial(_shared_fleet_trial, fn, snapshot.handle)
        return run_trials(
            bound, n_trials, seed=seed, workers=workers, chunk_size=chunk_size
        )
    finally:
        snapshot.close()


@dataclasses.dataclass(slots=True)
class TrialEngine:
    """A configured handle on the pool, for callers that fan out twice.

    Thin convenience over :func:`run_tasks` / :func:`run_trials`; the
    functions remain the primary API.
    """

    workers: int | None = None
    chunk_size: int | None = None

    def run_tasks(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return run_tasks(
            fn, items, workers=self.workers, chunk_size=self.chunk_size
        )

    def run_trials(
        self, fn: Callable[[Trial], R], n_trials: int, *, seed: int = 0
    ) -> list[R]:
        return run_trials(
            fn, n_trials, seed=seed,
            workers=self.workers, chunk_size=self.chunk_size,
        )
