"""Parallel trial engine and benchmark scorecard harness.

:mod:`repro.engine.runner` is imported eagerly (the experiments layer
depends on it); :mod:`repro.engine.bench` is left as an explicit import
because it depends back on :mod:`repro.analysis.experiments`.
"""

from repro.engine.runner import (
    Trial,
    TrialEngine,
    WorkerCrashError,
    WORKERS_ENV,
    derive_trial_seeds,
    effective_workers,
    resolve_workers,
    run_fleet_trials,
    run_tasks,
    run_trials,
)

__all__ = [
    "Trial",
    "TrialEngine",
    "WorkerCrashError",
    "WORKERS_ENV",
    "derive_trial_seeds",
    "effective_workers",
    "resolve_workers",
    "run_fleet_trials",
    "run_tasks",
    "run_trials",
]
