"""Benchmark scorecards: measured speedups, committed as artifacts.

Each registered benchmark times the optimized path (vectorized fleet
build, vectorized simulator tick, golden-result memoization, parallel
trial fan-out) against the preserved serial baseline (``build_legacy``,
``SimulatorConfig(vectorized=False)``, golden cache disabled) and
returns a :class:`BenchScorecard`.  ``repro bench`` writes each card to
``BENCH_<ID>.json`` so speedup claims in EXPERIMENTS.md are pinned to a
reproducible measurement, not prose.

The baselines are real code paths kept in-tree, so the A/B stays honest
as both sides evolve.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro.engine.runner import resolve_workers


@dataclasses.dataclass
class BenchScorecard:
    """One benchmark's measured numbers (the BENCH_<ID>.json payload)."""

    bench_id: str
    title: str
    scale: str
    workers: int
    #: optimized-path wall time for the whole benchmark body
    wall_s: float
    #: serial-baseline wall time for the equivalent work
    baseline_wall_s: float
    #: baseline_wall_s / per-trial optimized wall
    speedup: float
    #: trials (or campaign arms) the optimized path ran
    trials: int
    trials_per_s: float
    ticks: int | None = None
    ticks_per_s: float | None = None
    baseline_ticks_per_s: float | None = None
    tick_speedup: float | None = None
    metrics: dict = dataclasses.field(default_factory=dict)

    def to_json(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["host"] = {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        }
        return payload

    def summary(self) -> str:
        parts = [
            f"{self.bench_id}: {self.wall_s:.2f}s "
            f"(baseline {self.baseline_wall_s:.2f}s, "
            f"{self.speedup:.1f}x), "
            f"{self.trials_per_s:.2f} trials/s",
        ]
        if self.ticks_per_s is not None:
            parts.append(f"{self.ticks_per_s:.0f} ticks/s")
        if self.tick_speedup is not None:
            parts.append(f"tick {self.tick_speedup:.1f}x")
        return ", ".join(parts)


def _timed(fn: Callable[[], object]) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


# ---------------------------------------------------------------------
# individual benchmarks
# ---------------------------------------------------------------------

def bench_build(scale: str, workers: int) -> BenchScorecard:
    """Fleet construction & tick: object substrate vs columnar.

    Four measurements over the same seeded population plan:

    - **build A/B** — legacy per-draw builder (baseline) vs vectorized
      object builder vs ``build_columns`` (the headline ``speedup`` and
      ``cores_per_s`` come from the columnar side);
    - **campaign A/B** — a short simulated campaign on the same fleet
      through both substrates, *including* simulator construction: the
      object side scans every core to build its id indexes, the
      columnar side touches only the mercurial arrays, and that gap is
      exactly what campaigns standing up a simulator per trial pay
      (``tick_speedup``);
    - **O(1M)-core arm** — columnar build + shared-memory snapshot
      publish/attach + a short campaign at a scale the object substrate
      cannot practically reach (``scale_*`` / ``snapshot_*`` metrics);
    - **parity gate** — a small prevalence-boosted fleet run through
      both substrates at the same seed; the event-stream fingerprints
      must be identical (``columnar_parity``), so the speedups above
      can never drift away from bit-equal results.
    """
    import hashlib

    from repro.fleet import shm as fleet_shm
    from repro.fleet.population import FleetBuilder
    from repro.fleet.product import DEFAULT_PRODUCTS
    from repro.fleet.simulator import FleetSimulator, SimulatorConfig

    n_machines = 2000 if scale == "ci" else 12000
    window = (-900.0, 0.0)
    legacy_s, (machines, _) = _timed(
        lambda: FleetBuilder(seed=7, deployment_window=window)
        .build_legacy(n_machines)
    )
    n_cores = sum(len(m.cores) for m in machines)
    object_s, (machines, truth) = _timed(
        lambda: FleetBuilder(seed=7, deployment_window=window)
        .build(n_machines)
    )
    columnar_s, columns = _timed(
        lambda: FleetBuilder(seed=7, deployment_window=window)
        .build_columns(n_machines)
    )

    # Campaign A/B on the fleets just built: construction + a short
    # horizon, both substrates, same seed.
    ab_ticks = 8
    ab_config = SimulatorConfig(horizon_days=float(ab_ticks), warmup_days=0.0)
    object_campaign_s, _ = _timed(
        lambda: FleetSimulator(machines, truth, ab_config, seed=8).run()
    )
    columnar_campaign_s, _ = _timed(
        lambda: FleetSimulator(columns, config=ab_config, seed=8).run()
    )

    # O(1M)-core columnar arm: build, publish, attach, simulate.  The
    # default core mix averages ~40 cores/machine, so 25k machines is
    # a ≈1M-core fleet; this arm runs at both scales because the
    # columnar substrate makes it cheap enough for CI.
    scale_machines = 25_000
    scale_build_s, scale_columns = _timed(
        lambda: FleetBuilder(seed=7, deployment_window=window)
        .build_columns(scale_machines)
    )
    scale_cores = scale_columns.n_cores
    scale_ticks = 30
    snapshot_s, snapshot = _timed(lambda: fleet_shm.publish(scale_columns))
    try:
        attach_s, attached = _timed(lambda: fleet_shm.attach(snapshot.handle))
        snapshot_bytes = snapshot.handle.snapshot_bytes
        scale_campaign_s, _ = _timed(
            lambda: FleetSimulator(
                attached.columns,
                config=SimulatorConfig(
                    horizon_days=float(scale_ticks), warmup_days=0.0
                ),
                seed=8,
            ).run()
        )
        scale_mercurial = scale_columns.n_mercurial
        attached.close()
    finally:
        snapshot.close()

    # Parity gate: prevalence-boosted small fleet (the determinism-test
    # shape), event streams hashed on both substrates.
    boosted = tuple(
        dataclasses.replace(p, core_prevalence=p.core_prevalence * 40.0)
        for p in DEFAULT_PRODUCTS
    )
    parity_config = SimulatorConfig(horizon_days=60.0, warmup_days=0.0)

    def _event_fingerprint(result) -> str:
        payload = {
            "events": [
                (e.time_days, e.machine_id, e.core_id, str(e.kind),
                 str(e.reporter), e.detail)
                for e in result.events
            ],
            "quarantined": sorted(result.quarantined_cores),
            "total_corruptions": result.total_corruptions,
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True, default=str).encode()
        ).hexdigest()

    p_machines, p_truth = FleetBuilder(
        products=boosted, seed=11, deployment_window=(-700.0, 0.0)
    ).build(150)
    object_fp = _event_fingerprint(
        FleetSimulator(p_machines, p_truth, parity_config, seed=3).run()
    )
    p_columns = FleetBuilder(
        products=boosted, seed=11, deployment_window=(-700.0, 0.0)
    ).build_columns(150)
    columnar_fp = _event_fingerprint(
        FleetSimulator(p_columns, config=parity_config, seed=3).run()
    )

    return BenchScorecard(
        bench_id="build",
        title="fleet build & tick (object substrate vs columnar)",
        scale=scale,
        workers=workers,
        wall_s=columnar_s,
        baseline_wall_s=legacy_s,
        speedup=legacy_s / max(columnar_s, 1e-9),
        trials=1,
        trials_per_s=1.0 / max(columnar_s, 1e-9),
        ticks=ab_ticks,
        ticks_per_s=ab_ticks / max(columnar_campaign_s, 1e-9),
        baseline_ticks_per_s=ab_ticks / max(object_campaign_s, 1e-9),
        tick_speedup=object_campaign_s / max(columnar_campaign_s, 1e-9),
        metrics={
            "n_machines": n_machines,
            "n_cores": n_cores,
            "n_mercurial": truth.n_mercurial,
            "legacy_build_s": legacy_s,
            "object_build_s": object_s,
            "columnar_build_s": columnar_s,
            "object_cores_per_s": n_cores / max(object_s, 1e-9),
            # headline: columnar build throughput at the 1M-core arm
            "cores_per_s": scale_cores / max(scale_build_s, 1e-9),
            "object_campaign_s": object_campaign_s,
            "columnar_campaign_s": columnar_campaign_s,
            "scale_n_machines": scale_machines,
            "scale_n_cores": scale_cores,
            "scale_n_mercurial": scale_mercurial,
            "scale_build_s": scale_build_s,
            "scale_campaign_ticks": scale_ticks,
            "scale_campaign_s": scale_campaign_s,
            "scale_ticks_per_s": scale_ticks / max(scale_campaign_s, 1e-9),
            "snapshot_bytes": snapshot_bytes,
            "snapshot_ms": snapshot_s * 1e3,
            "attach_ms": attach_s * 1e3,
            "columnar_parity": object_fp == columnar_fp,
            "parity_fingerprint": columnar_fp,
        },
    )


def _tick_timed_simulator_class() -> type:
    """Subclass that accumulates time spent inside the tick alone.

    The E1 sim run is dominated by shared downstream ingest (analyzer,
    policy), so whole-run A/B of the tick is noise; the scalar vs
    vectorized comparison is only meaningful on isolated tick time.
    """
    from repro.fleet.simulator import FleetSimulator

    class TickTimed(FleetSimulator):
        tick_seconds = 0.0

        def _tick_scalar(self, now: float, tick: float) -> None:
            start = time.perf_counter()
            super()._tick_scalar(now, tick)
            self.tick_seconds += time.perf_counter() - start

        def _tick_vectorized(self, now: float, tick: float) -> None:
            start = time.perf_counter()
            super()._tick_vectorized(now, tick)
            self.tick_seconds += time.perf_counter() - start

    return TickTimed


def bench_e1(scale: str, workers: int) -> BenchScorecard:
    """E1 incidence: the full serial legacy trial vs the engine path."""
    from repro.analysis.experiments import _incidence_trial, run_incidence
    from repro.engine.runner import Trial
    from repro.fleet.population import FleetBuilder
    from repro.fleet.simulator import SimulatorConfig
    from repro.workloads.generator import blended_op_mix

    if scale == "ci":
        n_machines, horizon = 2000, 60.0
    else:
        n_machines, horizon = 12000, 270.0
    seed = 7
    blended_op_mix()  # warm the lru cache so neither side pays it
    tick_timed = _tick_timed_simulator_class()

    # Both sides time the complete trial — build, sim, detection
    # scoring — on their respective paths, so the shared downstream
    # analysis is counted identically.
    baseline_wall, _ = _timed(lambda: _incidence_trial(
        Trial(0, seed), n_machines=n_machines, horizon_days=horizon,
        legacy=True,
    ))
    inline_trial_s, _ = _timed(lambda: _incidence_trial(
        Trial(0, seed), n_machines=n_machines, horizon_days=horizon,
    ))

    # Tick A/B on a prevalence-boosted fleet.  At the paper's realistic
    # prevalence this fleet has only a handful of mercurial cores, so
    # the per-tick hot loop barely runs and its A/B is pure noise; the
    # boosted fleet (same trick as tests/test_determinism.py) gives the
    # loop a population worth measuring.  Both sides get the identical
    # fleet: same builder, same seed, rebuilt because the sim mutates
    # cores.
    import dataclasses as _dc

    from repro.fleet.product import DEFAULT_PRODUCTS

    boost = 40.0
    boosted = tuple(
        _dc.replace(p, core_prevalence=p.core_prevalence * boost)
        for p in DEFAULT_PRODUCTS
    )
    tick_s = {}
    for vectorized in (False, True):
        b_machines, b_truth = FleetBuilder(
            products=boosted, seed=seed, deployment_window=(-900.0, 0.0)
        ).build(n_machines)
        b_sim = tick_timed(
            b_machines, b_truth,
            SimulatorConfig(
                horizon_days=horizon, warmup_days=0.0, vectorized=vectorized
            ),
            seed=seed + 1,
        )
        b_sim.run()
        tick_s[vectorized] = b_sim.tick_seconds
    baseline_tick_s, vec_tick_s = tick_s[False], tick_s[True]

    # Engine fan-out through run_incidence: several trials per worker,
    # so the one-time interpreter spawn + import cost of each pool
    # process is amortized across its trials.
    n_trials = 2 * max(1, workers)
    engine_s, _ = _timed(
        lambda: run_incidence(
            n_machines=n_machines, seed=seed, horizon_days=horizon,
            n_trials=n_trials, workers=workers,
        )
    )
    per_trial_s = engine_s / n_trials
    ticks = int(round(horizon / 1.0))
    return BenchScorecard(
        bench_id="e1",
        title="E1 incidence campaign (serial legacy vs engine)",
        scale=scale,
        workers=workers,
        wall_s=engine_s,
        baseline_wall_s=baseline_wall,
        speedup=baseline_wall / max(per_trial_s, 1e-9),
        trials=n_trials,
        trials_per_s=n_trials / max(engine_s, 1e-9),
        ticks=ticks,
        ticks_per_s=ticks / max(vec_tick_s, 1e-9),
        baseline_ticks_per_s=ticks / max(baseline_tick_s, 1e-9),
        tick_speedup=baseline_tick_s / max(vec_tick_s, 1e-9),
        metrics={
            "n_machines": n_machines,
            "horizon_days": horizon,
            "inline_trial_s": inline_trial_s,
            "inline_speedup": baseline_wall / max(inline_trial_s, 1e-9),
            # tick A/B measured on the prevalence-boosted fleet
            "tick_prevalence_boost": boost,
            "scalar_tick_s": baseline_tick_s,
            "vectorized_tick_s": vec_tick_s,
        },
    )


def _bench_campaign(
    bench_id: str,
    title: str,
    scale: str,
    workers: int,
    runner: Callable[..., dict],
    arms: int,
    ticks: int,
) -> BenchScorecard:
    """Shared body for the E15/E16 chaos-campaign benchmarks.

    The baseline disables the golden-result cache (the campaigns
    execute millions of real ops through :class:`Core`) and runs the
    arms serially; the optimized side re-enables it and fans the arms
    out over the engine.

    The optimized side runs with :func:`effective_workers`: a pool
    wider than the host's CPU count (or the arm count) is pure
    pickling/IPC overhead, and committing that as a "speedup" would be
    dishonest in the other direction — the engine would never configure
    it.  The requested count is recorded in ``metrics`` alongside the
    effective one the card's ``workers`` field reports.
    """
    from repro.engine.runner import effective_workers
    from repro.silicon.golden import golden_cache_clear, set_golden_cache

    requested_workers = workers
    workers = effective_workers(workers, n_items=arms)
    set_golden_cache(False)
    try:
        baseline_s, _ = _timed(lambda: runner(ticks=ticks, workers=1))
    finally:
        set_golden_cache(True)
    golden_cache_clear()
    wall_s, _ = _timed(lambda: runner(ticks=ticks, workers=workers))
    total_ticks = arms * ticks
    return BenchScorecard(
        bench_id=bench_id,
        title=title,
        scale=scale,
        workers=workers,
        wall_s=wall_s,
        baseline_wall_s=baseline_s,
        speedup=baseline_s / max(wall_s, 1e-9),
        trials=arms,
        trials_per_s=arms / max(wall_s, 1e-9),
        ticks=total_ticks,
        ticks_per_s=total_ticks / max(wall_s, 1e-9),
        baseline_ticks_per_s=total_ticks / max(baseline_s, 1e-9),
        tick_speedup=baseline_s / max(wall_s, 1e-9),
        metrics={
            "ticks_per_arm": ticks,
            "requested_workers": requested_workers,
        },
    )


def bench_e15(scale: str, workers: int) -> BenchScorecard:
    """E15 serving chaos campaign: golden cache off vs engine + cache."""
    from repro.analysis.experiments import run_serving_under_cee

    return _bench_campaign(
        "e15",
        "E15 serving chaos campaign (uncached serial vs engine)",
        scale,
        workers,
        run_serving_under_cee,
        arms=3,
        ticks=250 if scale == "ci" else 1000,
    )


def bench_e16(scale: str, workers: int) -> BenchScorecard:
    """E16 storage chaos campaign: golden cache off vs engine + cache."""
    from repro.analysis.experiments import run_storage_under_cee

    return _bench_campaign(
        "e16",
        "E16 storage chaos campaign (uncached serial vs engine)",
        scale,
        workers,
        run_storage_under_cee,
        arms=5,
        ticks=150 if scale == "ci" else 600,
    )


def bench_serve_scale(scale: str, workers: int) -> BenchScorecard:
    """E17 serve-at-scale grid: serial vs engine fan-out, plus the
    worker-count invariance gate.

    Runs the full prevalence × mitigation-spend grid twice — once with
    ``workers=1`` (the timing baseline) and once fanned out — and
    fingerprints both result grids.  The fingerprints must match: a
    same-seed E17 scorecard is bit-identical no matter how many workers
    ran it, so the speedup is pure scheduling, never a semantic drift.
    The committed card also carries the headline grid numbers (escape
    rates and p99/p99.9 latency per arm) so the EXPERIMENTS.md claims
    are pinned to a measured artifact.
    """
    import hashlib
    import math

    from repro.analysis.experiments import run_serve_at_scale

    ticks = 200 if scale == "ci" else 600
    prevalences = (0.1, 0.2, 0.4)

    def fingerprint(result: dict) -> str:
        payload = {
            prevalence: {arm: card.to_json() for arm, card in arms.items()}
            for prevalence, arms in result["grid"].items()
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()

    baseline_s, serial = _timed(
        lambda: run_serve_at_scale(
            ticks=ticks, prevalences=prevalences, workers=1
        )
    )
    wall_s, fanned = _timed(
        lambda: run_serve_at_scale(
            ticks=ticks, prevalences=prevalences, workers=workers
        )
    )
    serial_fp = fingerprint(serial)
    fanned_fp = fingerprint(fanned)

    def finite(value: float) -> float | None:
        return None if math.isinf(value) else value

    comparisons = {
        key: {
            name: (finite(v) if isinstance(v, float) else v)
            for name, v in comp.items()
        }
        for key, comp in fanned["comparisons"].items()
    }
    arms = len(fanned["arms"]) * len(prevalences)
    total_ticks = arms * ticks
    return BenchScorecard(
        bench_id="e17",
        title="E17 serve-at-scale grid (serial vs engine, invariance-gated)",
        scale=scale,
        workers=workers,
        wall_s=wall_s,
        baseline_wall_s=baseline_s,
        speedup=baseline_s / max(wall_s, 1e-9),
        trials=arms,
        trials_per_s=arms / max(wall_s, 1e-9),
        ticks=total_ticks,
        ticks_per_s=total_ticks / max(wall_s, 1e-9),
        baseline_ticks_per_s=total_ticks / max(baseline_s, 1e-9),
        tick_speedup=baseline_s / max(wall_s, 1e-9),
        metrics={
            "ticks_per_cell": ticks,
            "prevalences": [f"{p:g}" for p in prevalences],
            "arms": list(fanned["arms"]),
            "comparisons": comparisons,
            "hardening_wins": fanned["hardening_wins"],
            "worker_invariant": serial_fp == fanned_fp,
            "grid_fingerprint": fanned_fp,
        },
    )


def bench_instrcheck(scale: str, workers: int) -> BenchScorecard:
    """E18 instruction-level checking grid: serial vs engine fan-out,
    plus the worker-count invariance gate.

    Runs the sampling-rate × prevalence grid for all five checking arms
    twice — ``workers=1`` as the timing baseline, then fanned out — and
    fingerprints both grids.  The fingerprints must match: every cell
    seeds its own fleet and campaign, so a cell's scorecard is
    bit-identical no matter which worker ran it.  The committed card
    carries the headline cost-vs-coverage numbers (per-arm slowdown and
    fraction of CEEs caught pre-propagation at full sampling) so the
    EXPERIMENTS.md claims are pinned to a measured artifact.
    """
    import hashlib

    from repro.analysis.experiments import run_instrcheck_grid

    units = 160 if scale == "ci" else 320
    prevalences = (0.125, 0.25)
    rates = (0.1, 0.33, 1.0)

    def fingerprint(result: dict) -> str:
        payload = {
            prevalence: {
                arm: {rate: card.to_json() for rate, card in by_rate.items()}
                for arm, by_rate in arms.items()
            }
            for prevalence, arms in result["grid"].items()
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()

    baseline_s, serial = _timed(
        lambda: run_instrcheck_grid(
            units=units, prevalences=prevalences, rates=rates, workers=1
        )
    )
    wall_s, fanned = _timed(
        lambda: run_instrcheck_grid(
            units=units, prevalences=prevalences, rates=rates,
            workers=workers,
        )
    )
    serial_fp = fingerprint(serial)
    fanned_fp = fingerprint(fanned)

    cells = len(fanned["arms"]) * len(prevalences) * len(rates)
    total_units = cells * units
    return BenchScorecard(
        bench_id="e18",
        title="E18 instrcheck grid (serial vs engine, invariance-gated)",
        scale=scale,
        workers=workers,
        wall_s=wall_s,
        baseline_wall_s=baseline_s,
        speedup=baseline_s / max(wall_s, 1e-9),
        trials=cells,
        trials_per_s=cells / max(wall_s, 1e-9),
        ticks=total_units,
        ticks_per_s=total_units / max(wall_s, 1e-9),
        baseline_ticks_per_s=total_units / max(baseline_s, 1e-9),
        tick_speedup=baseline_s / max(wall_s, 1e-9),
        metrics={
            "units_per_cell": units,
            "prevalences": [f"{p:g}" for p in prevalences],
            "rates": [f"{r:g}" for r in rates],
            "arms": list(fanned["arms"]),
            "comparisons": fanned["comparisons"],
            "cross_core_wins": fanned["cross_core_wins"],
            "precatch_beats_screening": fanned["precatch_beats_screening"],
            "worker_invariant": serial_fp == fanned_fp,
            "grid_fingerprint": fanned_fp,
        },
    )


def bench_fleetscreen(scale: str, workers: int) -> BenchScorecard:
    """E19 fleet-screening grid: serial vs engine fan-out, the
    worker-count invariance gate, and a ≥100k-core columnar screen arm.

    Three measurements:

    - **grid A/B** — the full budget × prevalence × corpus E19 grid run
      twice, ``workers=1`` as the timing baseline then fanned out, with
      both result grids fingerprinted.  The fingerprints must match: a
      same-seed E19 scorecard is bit-identical no matter how many
      workers ran it (the committed ``worker_invariant`` gate).
    - **distillation gate** — the committed SiliFuzz claim: the
      distilled battery keeps ≥90% of the full corpus's unit coverage
      at measurably lower run cost
      (``distilled_cheaper_at_equal_coverage``), plus the grid's other
      headline booleans.
    - **O(100k)-core arm** — a 2,600-machine (~104k-core) columnar
      fleet built, published to shared memory, attached read-only, and
      screened in one vectorized pass with the distilled battery
      (``scale_*`` / ``snapshot_*`` metrics); the full corpus screens
      the same snapshot so the per-pass cost gap is measured on
      identical cores.
    """
    import hashlib

    from repro.analysis.experiments import run_fleetscreen_grid
    from repro.detection.corpus import TestCorpus
    from repro.detection.fleetscreen import FleetScreener, distill, full_battery
    from repro.fleet import shm as fleet_shm
    from repro.fleet.population import FleetBuilder

    if scale == "ci":
        n_machines, horizon = 60, 60.0
    else:
        n_machines, horizon = 120, 120.0

    def fingerprint(result: dict) -> str:
        payload = {
            "grid": result["grid"],
            # frontier rows carry ScreeningPolicy objects; fingerprint
            # only the scalar columns
            "baseline": [
                {k: v for k, v in row.items()
                 if isinstance(v, (int, float, str, bool))}
                for row in result["baseline"]
            ],
            "headlines": [
                result["distilled_cheaper_at_equal_coverage"],
                result["distilled_detects_no_less"],
                result["budget_buys_detection"],
            ],
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()

    baseline_s, serial = _timed(
        lambda: run_fleetscreen_grid(
            n_machines=n_machines, horizon_days=horizon, workers=1
        )
    )
    wall_s, fanned = _timed(
        lambda: run_fleetscreen_grid(
            n_machines=n_machines, horizon_days=horizon, workers=workers
        )
    )
    serial_fp = fingerprint(serial)
    fanned_fp = fingerprint(fanned)
    cells = (
        len(fanned["budgets"])
        * len(fanned["prevalence_scales"])
        * len(fanned["corpora"])
    )
    total_ticks = cells * int(horizon)

    # O(100k)-core arm: the default core mix averages ~40 cores/machine,
    # so 2,600 machines is a ≈104k-core fleet; screened zero-copy off a
    # shared-memory snapshot at both scales (one vectorized pass is
    # cheap enough for CI).
    corpus = TestCorpus.standard()
    distilled = distill(corpus)
    full = full_battery(corpus)
    scale_machines = 2_600
    scale_build_s, scale_columns = _timed(
        lambda: FleetBuilder(seed=7, deployment_window=(-900.0, 0.0))
        .build_columns(scale_machines)
    )
    snapshot = fleet_shm.publish(scale_columns)
    try:
        attached = fleet_shm.attach(snapshot.handle)
        snapshot_bytes = snapshot.handle.snapshot_bytes
        scale_screen_s, scale_result = _timed(
            lambda: FleetScreener(distilled, env_boost=6.0).screen(
                attached.columns, 30.0, np.random.default_rng(0)  # repro: noqa-DET004 -- benchmark fixture rng: fixed so the timed screen is identical across bench runs
            )
        )
        full_screen_s, full_result = _timed(
            lambda: FleetScreener(full, env_boost=6.0).screen(
                attached.columns, 30.0, np.random.default_rng(0)  # repro: noqa-DET004 -- benchmark fixture rng: fixed so the timed screen is identical across bench runs
            )
        )
        scale_cores = attached.columns.n_cores
        scale_mercurial = attached.columns.n_mercurial
        attached.close()
    finally:
        snapshot.close()

    return BenchScorecard(
        bench_id="e19",
        title="E19 fleet screening grid (serial vs engine, invariance-gated)",
        scale=scale,
        workers=workers,
        wall_s=wall_s,
        baseline_wall_s=baseline_s,
        speedup=baseline_s / max(wall_s, 1e-9),
        trials=cells,
        trials_per_s=cells / max(wall_s, 1e-9),
        ticks=total_ticks,
        ticks_per_s=total_ticks / max(wall_s, 1e-9),
        baseline_ticks_per_s=total_ticks / max(baseline_s, 1e-9),
        tick_speedup=baseline_s / max(wall_s, 1e-9),
        metrics={
            "n_machines": n_machines,
            "horizon_days": horizon,
            "budgets": fanned["budgets"],
            "prevalence_scales": fanned["prevalence_scales"],
            "corpora": fanned["corpora"],
            "worker_invariant": serial_fp == fanned_fp,
            "grid_fingerprint": fanned_fp,
            "distilled_cheaper_at_equal_coverage":
                fanned["distilled_cheaper_at_equal_coverage"],
            "distilled_detects_no_less": fanned["distilled_detects_no_less"],
            "budget_buys_detection": fanned["budget_buys_detection"],
            "full_battery_ops": full.total_ops,
            "distilled_battery_ops": distilled.total_ops,
            "distilled_battery_tests": len(distilled.tests),
            "distilled_coverage": distilled.coverage_fraction,
            "scale_n_machines": scale_machines,
            "scale_n_cores": scale_cores,
            "scale_n_mercurial": scale_mercurial,
            "scale_build_s": scale_build_s,
            "scale_screen_s": scale_screen_s,
            "scale_cores_per_s": scale_result.n_screened
            / max(scale_screen_s, 1e-9),
            "scale_n_screened": scale_result.n_screened,
            "scale_machine_seconds": scale_result.machine_seconds,
            "scale_full_screen_s": full_screen_s,
            "scale_full_machine_seconds": full_result.machine_seconds,
            "snapshot_bytes": snapshot_bytes,
        },
    )


def bench_obs(scale: str, workers: int) -> BenchScorecard:
    """Observability overhead: REPRO_OBS=off must be (nearly) free.

    Times the full E1 incidence trial (build + sim + detection scoring)
    three ways, interleaved so thermal / cache drift hits every side
    equally:

    - **ref** — obs disabled (the first "off" pass; the A/A reference);
    - **off** — obs disabled again: ``off vs ref`` is the measurement
      noise floor, and its median delta is the committed no-op-mode
      overhead claim (<3% per ISSUE/OBSERVABILITY.md);
    - **on** — obs enabled: what full instrumentation costs.

    ``speedup`` on this card is ref/off (≈1.0 when the no-op mode is
    actually free); the on-mode cost is in ``metrics``.
    """
    from repro import obs
    from repro.analysis.experiments import _incidence_trial
    from repro.engine.runner import Trial
    from repro.workloads.generator import blended_op_mix

    if scale == "ci":
        n_machines, horizon, reps = 2000, 60.0, 3
    else:
        n_machines, horizon, reps = 12000, 270.0, 5
    seed = 7
    blended_op_mix()  # warm the lru cache so no side pays it

    def trial() -> dict:
        return _incidence_trial(
            Trial(0, seed), n_machines=n_machines, horizon_days=horizon
        )

    prior = obs.enabled()
    times: dict[str, list[float]] = {"ref": [], "off": [], "on": []}
    try:
        trial()  # warm both paths once before any timed pass
        for _ in range(reps):
            for mode in ("ref", "off", "on"):
                obs.set_enabled(mode == "on")
                if mode == "on":
                    obs.metrics.reset()
                    obs.tracer.reset()
                seconds, _ = _timed(trial)
                times[mode].append(seconds)
    finally:
        obs.set_enabled(prior)
    ref_s = float(np.median(times["ref"]))
    off_s = float(np.median(times["off"]))
    on_s = float(np.median(times["on"]))
    off_overhead_pct = 100.0 * (off_s - ref_s) / max(ref_s, 1e-9)
    on_overhead_pct = 100.0 * (on_s - off_s) / max(off_s, 1e-9)
    return BenchScorecard(
        bench_id="obs",
        title="observability overhead (REPRO_OBS off vs on)",
        scale=scale,
        workers=workers,
        wall_s=off_s,
        baseline_wall_s=ref_s,
        speedup=ref_s / max(off_s, 1e-9),
        trials=reps,
        trials_per_s=1.0 / max(off_s, 1e-9),
        metrics={
            "n_machines": n_machines,
            "horizon_days": horizon,
            "reps": reps,
            "ref_s": ref_s,
            "off_s": off_s,
            "on_s": on_s,
            # the committed claim: no-op mode within noise of never
            # having imported obs at all (A/A delta), <3%
            "off_overhead_pct": off_overhead_pct,
            "on_overhead_pct": on_overhead_pct,
        },
    )


#: bench id → (title, runner)
BENCHMARKS: dict[str, tuple[str, Callable[[str, int], BenchScorecard]]] = {
    "build": ("Fleet construction: legacy vs vectorized", bench_build),
    "e1": ("E1 incidence: serial legacy vs engine", bench_e1),
    "e15": ("E15 serving campaign: uncached serial vs engine", bench_e15),
    "e16": ("E16 storage campaign: uncached serial vs engine", bench_e16),
    "serve-scale": ("E17 serve-at-scale grid: serial vs engine", bench_serve_scale),
    "instrcheck": ("E18 instrcheck grid: serial vs engine", bench_instrcheck),
    "fleetscreen": ("E19 fleet screening grid: serial vs engine", bench_fleetscreen),
    "obs": ("Observability overhead: off-mode A/A vs on", bench_obs),
}


def run_benchmark(
    bench_id: str, scale: str = "default", workers: int | None = None
) -> BenchScorecard:
    """Run one registered benchmark and return its scorecard."""
    if bench_id not in BENCHMARKS:
        known = ", ".join(sorted(BENCHMARKS))
        raise KeyError(f"unknown benchmark {bench_id!r} (known: {known})")
    if scale not in ("default", "ci"):
        raise ValueError(f"scale must be 'default' or 'ci', got {scale!r}")
    _title, fn = BENCHMARKS[bench_id]
    return fn(scale, resolve_workers(workers))


def write_scorecard(card: BenchScorecard, out_dir: str | Path = ".") -> Path:
    """Write ``BENCH_<ID>.json`` and return its path."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{card.bench_id.upper()}.json"
    path.write_text(json.dumps(card.to_json(), indent=2) + "\n")
    return path
