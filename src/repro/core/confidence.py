"""Suspicion scoring: recidivism turns signals into confidence.

"Recidivism — repeated signals from the same core — increases our
confidence that a core is mercurial" (§6).  The tracker keeps a
per-core exponentially-decayed suspicion score plus a simple Bayesian
posterior that a core is mercurial given how its signal count compares
to the fleet background rate.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass
class _CoreState:
    score: float = 0.0
    last_update_days: float = 0.0
    total_signals: int = 0
    distinct_sources: set = dataclasses.field(default_factory=set)


class SuspicionTracker:
    """Per-core decayed suspicion accumulator.

    Args:
        half_life_days: how fast old signals stop counting.  Mercurial
            cores fail "repeatedly and intermittently" (§2); decay keeps
            one-off coincidences from accumulating forever.
        source_bonus: extra weight when a *new distinct application*
            implicates the same core ("reports from multiple
            applications that appear to be concentrated on a few cores
            might well be CEEs", §6).
    """

    def __init__(self, half_life_days: float = 30.0,
                 source_bonus: float = 0.5) -> None:
        if half_life_days <= 0:
            raise ValueError("half_life_days must be positive")
        self.half_life_days = half_life_days
        self.source_bonus = source_bonus
        self._cores: dict[str, _CoreState] = {}

    def _decay(self, state: _CoreState, now_days: float) -> None:
        elapsed = now_days - state.last_update_days
        if elapsed > 0:
            state.score *= 0.5 ** (elapsed / self.half_life_days)
            state.last_update_days = now_days

    def record(
        self,
        core_id: str,
        now_days: float,
        weight: float = 1.0,
        source: str | None = None,
    ) -> float:
        """Add one signal; returns the updated score."""
        state = self._cores.setdefault(core_id, _CoreState(last_update_days=now_days))
        self._decay(state, now_days)
        bonus = 0.0
        if source is not None and source not in state.distinct_sources:
            state.distinct_sources.add(source)
            if len(state.distinct_sources) > 1:
                bonus = self.source_bonus
        state.score += weight + bonus
        state.total_signals += 1
        return state.score

    def score(self, core_id: str, now_days: float) -> float:
        state = self._cores.get(core_id)
        if state is None:
            return 0.0
        self._decay(state, now_days)
        return state.score

    def signals(self, core_id: str) -> int:
        state = self._cores.get(core_id)
        return state.total_signals if state else 0

    def distinct_sources(self, core_id: str) -> int:
        state = self._cores.get(core_id)
        return len(state.distinct_sources) if state else 0

    def suspects(self, now_days: float, threshold: float) -> list[tuple[str, float]]:
        """Cores at/above threshold, most suspicious first."""
        ranked = [
            (core_id, self.score(core_id, now_days))
            for core_id in list(self._cores)
        ]
        ranked = [(c, s) for c, s in ranked if s >= threshold]
        ranked.sort(key=lambda item: item[1], reverse=True)
        return ranked

    def tracked_cores(self) -> list[str]:
        return list(self._cores)


def posterior_mercurial(
    signals: int,
    observation_days: float,
    background_rate_per_day: float,
    mercurial_rate_per_day: float,
    prior: float = 1e-3,
) -> float:
    """Posterior P(core is mercurial | signal count) via Poisson likelihoods.

    Healthy cores emit signals (software bugs, cosmic rays, coincidental
    crashes) at ``background_rate_per_day``; mercurial cores at the much
    higher ``mercurial_rate_per_day``.  With a Poisson count model the
    log-likelihood ratio is closed-form.

    The ``prior`` default reflects the paper's "a few mercurial cores
    per several thousand machines": order 1e-3 per machine, less per
    core — callers should scale by cores per machine.
    """
    if observation_days <= 0:
        return prior
    if background_rate_per_day <= 0 or mercurial_rate_per_day <= 0:
        raise ValueError("rates must be positive")
    lam_h = background_rate_per_day * observation_days
    lam_m = mercurial_rate_per_day * observation_days
    log_lr = (
        signals * (math.log(lam_m) - math.log(lam_h)) - (lam_m - lam_h)
    )
    log_odds_prior = math.log(prior) - math.log1p(-prior)
    log_odds = log_odds_prior + log_lr
    # Numerically safe logistic.
    if log_odds > 50:
        return 1.0
    if log_odds < -50:
        return 0.0
    return 1.0 / (1.0 + math.exp(-log_odds))
