"""Human triage of suspect cores.

§6: "The humans running our production services identify a lot of
suspect cores, in the course of incident triage, debugging, and so
forth.  In our recent experience, roughly half of these human-identified
suspects are actually proven, on deeper investigation, to be mercurial
cores — we must extract 'confessions' via further testing (often after
first developing a new automatable test).  The other half is a mix of
false accusations and limited reproducibility."

:class:`HumanTriageModel` reproduces that workflow: incidents make
humans file suspects (with imperfect attribution), investigation tries
to extract a confession, and the three §6 outcomes fall out.  When an
actual :class:`~repro.silicon.core.Core` is available the confession can
be a *real* test run (pass ``confession_test``); otherwise the stochastic
reproducibility model is used.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable

import numpy as np


class TriageOutcome(enum.Enum):
    """§6's three ends of an investigation."""

    CONFIRMED = "confirmed"                 # confession extracted
    FALSE_ACCUSATION = "false_accusation"   # core exonerated
    UNREPRODUCIBLE = "unreproducible"       # real or not, it won't confess


@dataclasses.dataclass(frozen=True)
class Investigation:
    """Record of one human investigation."""

    core_id: str
    outcome: TriageOutcome
    started_days: float
    duration_days: float
    attempts: int


class HumanTriageModel:
    """Stochastic model of the human side of mercurial-core hunting.

    Args:
        rng: randomness source.
        p_flag_given_core_incident: probability a human files a suspect
            when an incident genuinely traces to a specific core.
        p_misattribute: probability the human fingers the *wrong* core
            (a healthy one) for a real incident — one source of the
            "false accusations" half.
        p_confess_given_mercurial: probability investigation reproduces
            a genuinely mercurial core's failure — the complement is
            "limited reproducibility".
        p_false_positive_signal: probability an unrelated software bug
            or transient makes a human suspect a healthy core at all.
        investigation_days: (low, high) uniform duration of one
            investigation; the paper applied "many engineer-decades".
    """

    def __init__(
        self,
        rng: np.random.Generator,
        p_flag_given_core_incident: float = 0.6,
        p_misattribute: float = 0.15,
        p_confess_given_mercurial: float = 0.8,
        p_false_positive_signal: float = 0.15,
        investigation_days: tuple[float, float] = (2.0, 21.0),
    ) -> None:
        for name, p in (
            ("p_flag_given_core_incident", p_flag_given_core_incident),
            ("p_misattribute", p_misattribute),
            ("p_confess_given_mercurial", p_confess_given_mercurial),
            ("p_false_positive_signal", p_false_positive_signal),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability")
        self.rng = rng
        self.p_flag_given_core_incident = p_flag_given_core_incident
        self.p_misattribute = p_misattribute
        self.p_confess_given_mercurial = p_confess_given_mercurial
        self.p_false_positive_signal = p_false_positive_signal
        self.investigation_days = investigation_days
        self.investigations: list[Investigation] = []

    # -- filing suspects -------------------------------------------------

    def files_suspect(self, incident_is_cee: bool) -> bool:
        """Does a human file a suspect for this production incident?"""
        if incident_is_cee:
            return self.rng.random() < self.p_flag_given_core_incident
        return self.rng.random() < self.p_false_positive_signal

    def attributed_core_is_right(self) -> bool:
        """Did the human finger the actually-failing core?"""
        return self.rng.random() >= self.p_misattribute

    # -- investigating ----------------------------------------------------

    def investigate(
        self,
        core_id: str,
        core_is_mercurial: bool,
        started_days: float,
        confession_test: Callable[[], bool] | None = None,
        attempts: int = 5,
    ) -> Investigation:
        """Investigate one suspect and record the outcome.

        If ``confession_test`` is given it is run up to ``attempts``
        times; any failure is a confession.  Otherwise the stochastic
        reproducibility model decides.
        """
        low, high = self.investigation_days
        duration = float(self.rng.uniform(low, high))
        used_attempts = attempts
        if confession_test is not None:
            confessed = False
            for attempt in range(1, attempts + 1):
                if confession_test():
                    confessed = True
                    used_attempts = attempt
                    break
            if confessed:
                outcome = TriageOutcome.CONFIRMED
            elif core_is_mercurial:
                outcome = TriageOutcome.UNREPRODUCIBLE
            else:
                outcome = TriageOutcome.FALSE_ACCUSATION
        elif core_is_mercurial:
            if self.rng.random() < self.p_confess_given_mercurial:
                outcome = TriageOutcome.CONFIRMED
            else:
                outcome = TriageOutcome.UNREPRODUCIBLE
        else:
            # Healthy cores never confess; investigations either clear
            # them or peter out without reproduction.
            if self.rng.random() < 0.7:
                outcome = TriageOutcome.FALSE_ACCUSATION
            else:
                outcome = TriageOutcome.UNREPRODUCIBLE
        record = Investigation(
            core_id=core_id,
            outcome=outcome,
            started_days=started_days,
            duration_days=duration,
            attempts=used_attempts,
        )
        self.investigations.append(record)
        return record

    # -- aggregate statistics ----------------------------------------------

    def outcome_fractions(self) -> dict[TriageOutcome, float]:
        """Fraction of investigations per outcome (the §6 'roughly half')."""
        total = len(self.investigations)
        if total == 0:
            return {outcome: 0.0 for outcome in TriageOutcome}
        return {
            outcome: sum(1 for i in self.investigations if i.outcome is outcome)
            / total
            for outcome in TriageOutcome
        }

    def confirmation_rate(self) -> float:
        return self.outcome_fractions()[TriageOutcome.CONFIRMED]
