"""The suspect-core complaint service.

"One of our particularly useful tools is a simple RPC service that
allows an application to report a suspect core or CPU.  Reports that
are evenly spread across cores probably are not CEEs; reports from
multiple applications that appear to be concentrated on a few cores
might well be CEEs, and become grounds for quarantining those cores,
followed by more careful checking." (§6)

:class:`CoreComplaintService` implements exactly that decision: it
accumulates reports and runs a concentration test — each core's report
count against a binomial null hypothesis of uniform spread — surfacing
cores whose counts are statistically inconsistent with background noise.
"""

from __future__ import annotations

import collections
import dataclasses
import math
from typing import Iterable

from repro.core.events import CeeEvent, EventKind, EventLog, Reporter


@dataclasses.dataclass(frozen=True)
class Complaint:
    """One application-filed report against a core."""

    time_days: float
    application: str
    machine_id: str
    core_id: str
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class SuspectCore:
    """Concentration-test verdict for one core."""

    core_id: str
    reports: int
    applications: int
    p_value: float

    @property
    def grounds_for_quarantine(self) -> bool:
        """Paper's rule of thumb: concentrated + multi-application."""
        return self.p_value < 1e-4 and self.applications >= 2


def _binomial_tail(n: int, k: int, p: float) -> float:
    """P[X >= k] for X ~ Binomial(n, p), exact summation.

    n is the total report count (moderate in practice); exact summation
    avoids approximation error in the far tail where decisions happen.
    """
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    tail = 0.0
    log_p = math.log(p)
    log_q = math.log1p(-p)
    for i in range(k, n + 1):
        log_term = (
            math.lgamma(n + 1)
            - math.lgamma(i + 1)
            - math.lgamma(n - i + 1)
            + i * log_p
            + (n - i) * log_q
        )
        tail += math.exp(log_term)
    return min(tail, 1.0)


class CoreComplaintService:
    """Collects complaints and surfaces statistically suspect cores.

    Args:
        n_cores_visible: population of cores complaints could have come
            from — the uniform-null denominator.
        event_log: optional fleet event log that every complaint is also
            recorded into (as ``APP_REPORT`` events), so the complaint
            stream shows up in Fig. 1's automated series.
    """

    def __init__(self, n_cores_visible: int,
                 event_log: EventLog | None = None) -> None:
        if n_cores_visible <= 0:
            raise ValueError("need a positive visible-core population")
        self.n_cores_visible = n_cores_visible
        self.event_log = event_log
        self._complaints: list[Complaint] = []
        self._by_core: dict[str, list[Complaint]] = collections.defaultdict(list)

    def report(self, complaint: Complaint) -> None:
        """File one complaint (the paper's RPC endpoint)."""
        self._complaints.append(complaint)
        self._by_core[complaint.core_id].append(complaint)
        if self.event_log is not None:
            self.event_log.append(
                CeeEvent(
                    time_days=complaint.time_days,
                    machine_id=complaint.machine_id,
                    core_id=complaint.core_id,
                    kind=EventKind.APP_REPORT,
                    reporter=Reporter.AUTOMATED,
                    application=complaint.application,
                    detail=complaint.detail,
                )
            )

    def report_many(self, complaints: Iterable[Complaint]) -> None:
        for complaint in complaints:
            self.report(complaint)

    @property
    def total_reports(self) -> int:
        return len(self._complaints)

    def complaints_against(self, core_id: str) -> list[Complaint]:
        return list(self._by_core.get(core_id, ()))

    def analyze(self, min_reports: int = 2) -> list[SuspectCore]:
        """Run the concentration test over all reported cores.

        Under the null (reports are background noise uniformly spread
        over ``n_cores_visible`` cores), each core's count is
        Binomial(total, 1/n_cores_visible).  Low p-value = concentration.
        Returns suspects sorted most-concentrated first.
        """
        total = len(self._complaints)
        if total == 0:
            return []
        p_uniform = 1.0 / self.n_cores_visible
        suspects = []
        for core_id, complaints in self._by_core.items():
            k = len(complaints)
            if k < min_reports:
                continue
            applications = len({c.application for c in complaints})
            p_value = _binomial_tail(total, k, p_uniform)
            suspects.append(
                SuspectCore(
                    core_id=core_id,
                    reports=k,
                    applications=applications,
                    p_value=p_value,
                )
            )
        suspects.sort(key=lambda s: s.p_value)
        return suspects

    def quarantine_candidates(self) -> list[SuspectCore]:
        """Suspects meeting the paper's quarantine grounds."""
        return [s for s in self.analyze() if s.grounds_for_quarantine]
