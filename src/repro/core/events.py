"""Event model: what the infrastructure can actually observe.

The paper's situation is black-box: "We have observations of the form
'this code has miscomputed (or crashed) on that core'" (§2).  Every
observable — a failed self-check, a crash, a machine check, a sanitizer
report, a screening-test failure, a user complaint — becomes a
:class:`CeeEvent` in an :class:`EventLog`.  Detection and policy layers
consume only these events, never ground truth.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import math
from typing import Callable, Iterable, Iterator


class EventKind(enum.Enum):
    """How the observable surfaced (§6 lists these signal sources)."""

    SELF_CHECK_FAILURE = "self_check_failure"     # app-level check tripped
    CRASH = "crash"                               # process/kernel crash
    MACHINE_CHECK = "machine_check"               # logged MCE
    SANITIZER = "sanitizer"                       # tool-chain sanitizer hit
    SCREEN_FAIL = "screen_fail"                   # screening test failed
    USER_REPORT = "user_report"                   # human-filed suspicion
    APP_REPORT = "app_report"                     # CoreComplaintService RPC
    DATA_CORRUPTION = "data_corruption"           # found corrupt at rest
    BREAKER_TRIP = "breaker_trip"                 # serving circuit breaker
    WAL_CORRUPTION = "wal_corruption"             # bad CRC at WAL replay
    SCRUB_MISMATCH = "scrub_mismatch"             # background scrub divergence
    QUORUM_MISMATCH = "quorum_mismatch"           # voted read disagreement
    ENCRYPT_VERIFY_FAIL = "encrypt_verify_fail"   # decrypt-elsewhere check
    HEDGE_FIRED = "hedge_fired"                   # tail-latency hedge issued
    RETRY_BUDGET_EXHAUSTED = "retry_budget_exhausted"  # retry tokens drained
    SHARD_DEGRADED = "shard_degraded"             # shard entered a degraded tier
    AUTOSCALE_ACTION = "autoscale_action"         # replica added or drained
    INSTRCHECK_MISMATCH = "instrcheck_mismatch"   # duplicate-execution digest split
    CHECKER_LAG_OVERFLOW = "checker_lag_overflow"  # MEEK check queue dropped entries
    REPLAY_DIVERGENCE = "replay_divergence"       # replayed granule disagreed
    FLEETSCREEN_FAIL = "fleetscreen_fail"         # distilled fleet battery confessed
    RIDEALONG_SKIPPED = "ridealong_skipped"       # ride-along budget exhausted


class Reporter(enum.Enum):
    """Who noticed (drives Fig. 1's two series)."""

    AUTOMATED = "automated"
    HUMAN = "human"


@dataclasses.dataclass(frozen=True, slots=True)
class CeeEvent:
    """One observation that *might* indicate a mercurial core.

    Attributes:
        time_days: fleet time of the observation.
        machine_id: machine the signal came from.
        core_id: core attribution if available (crashes often lack it).
        kind: signal source.
        reporter: automated infrastructure or a human.
        application: workload that produced the signal, if any.
        detail: free-form context (defect op, test name, ...).
    """

    time_days: float
    machine_id: str
    core_id: str | None
    kind: EventKind
    reporter: Reporter
    application: str | None = None
    detail: str = ""


class EventLog:
    """Append-only log of :class:`CeeEvent` with simple analytics."""

    def __init__(self) -> None:
        self._events: list[CeeEvent] = []

    def append(self, event: CeeEvent) -> None:
        self._events.append(event)

    def extend(self, events: Iterable[CeeEvent]) -> None:
        self._events.extend(events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[CeeEvent]:
        return iter(self._events)

    def filter(
        self,
        predicate: Callable[[CeeEvent], bool] | None = None,
        kind: EventKind | None = None,
        reporter: Reporter | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[CeeEvent]:
        """Select events; all criteria are ANDed."""
        selected = []
        for event in self._events:
            if kind is not None and event.kind is not kind:
                continue
            if reporter is not None and event.reporter is not reporter:
                continue
            if since is not None and event.time_days < since:
                continue
            if until is not None and event.time_days >= until:
                continue
            if predicate is not None and not predicate(event):
                continue
            selected.append(event)
        return selected

    def per_core_counts(
        self, kind: EventKind | None = None
    ) -> collections.Counter:
        """Events per attributed core (unattributed events are skipped)."""
        counts: collections.Counter = collections.Counter()
        for event in self._events:
            if kind is not None and event.kind is not kind:
                continue
            if event.core_id is not None:
                counts[event.core_id] += 1
        return counts

    def per_machine_counts(
        self, kind: EventKind | None = None
    ) -> collections.Counter:
        counts: collections.Counter = collections.Counter()
        for event in self._events:
            if kind is not None and event.kind is not kind:
                continue
            counts[event.machine_id] += 1
        return counts

    def tail(self, start: int) -> list[CeeEvent]:
        """Events appended at or after index ``start`` (cheap slice)."""
        return self._events[start:]

    def rate_timeline(
        self,
        bucket_days: float,
        horizon_days: float,
        reporter: Reporter | None = None,
        machines: int = 1,
        kinds: set[EventKind] | None = None,
    ) -> list[tuple[float, float]]:
        """(bucket start, events per machine per day) series — Fig. 1's shape."""
        if bucket_days <= 0:
            raise ValueError("bucket_days must be positive")
        n_buckets = max(1, int(horizon_days / bucket_days))
        counts = [0] * n_buckets
        for event in self._events:
            if reporter is not None and event.reporter is not reporter:
                continue
            if kinds is not None and event.kind not in kinds:
                continue
            # floor, not int(): warmup events at negative times must land
            # in negative buckets, not be truncated into bucket 0
            bucket = math.floor(event.time_days / bucket_days)
            if 0 <= bucket < n_buckets:
                counts[bucket] += 1
        return [
            (i * bucket_days, counts[i] / (bucket_days * max(machines, 1)))
            for i in range(n_buckets)
        ]
