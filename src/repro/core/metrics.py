"""The §4 metrics, made computable.

The paper struggles to define useful CEE metrics and proposes three
candidates, each with a challenge.  This module implements all three
against simulated ground truth plus the standard detection-quality
numbers the tradeoff discussion (§6) needs:

- incidence: "the fraction of cores (or machines) that exhibit CEEs"
  (challenge: depends on test coverage — so we report both ground-truth
  and *detected* incidence, and their gap is the coverage shortfall);
- age until onset (challenge: depends on how long you can wait — so the
  estimator takes an observation horizon and reports censoring);
- rate and nature of application-visible corruptions, including
  stickiness (one CEE propagating into multiple application errors).
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Iterable, Mapping, Sequence

from repro import obs


@dataclasses.dataclass(frozen=True)
class Confusion:
    """Detector quality against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def false_positive_rate(self) -> float:
        denom = self.false_positives + self.true_negatives
        return self.false_positives / denom if denom else 0.0


def confusion(
    ground_truth: Mapping[str, bool], flagged: Iterable[str]
) -> Confusion:
    """Score a set of flagged core ids against ground truth.

    Args:
        ground_truth: core id → is actually mercurial.
        flagged: core ids the detector marked.
    """
    flagged_set = set(flagged)
    tp = fp = fn = tn = 0
    for core_id, mercurial in ground_truth.items():
        if core_id in flagged_set:
            if mercurial:
                tp += 1
            else:
                fp += 1
        else:
            if mercurial:
                fn += 1
            else:
                tn += 1
    return Confusion(tp, fp, fn, tn)


def publish_confusion(confusion: Confusion, detector: str = "fleet") -> None:
    """Publish one detector's confusion counts to the obs registry.

    Replaces the old pattern of each campaign keeping its own ad-hoc
    tally dicts: gauges (last write wins) because a confusion matrix is
    a *state* of the trial, not an accumulating flow.
    """
    if not obs.metrics.enabled:
        return
    gauge = obs.metrics.gauge(
        "detection_confusion",
        help="detector confusion-matrix counts vs ground truth",
        unit="cores",
    )
    gauge.set(confusion.true_positives, detector=detector, cell="tp")
    gauge.set(confusion.false_positives, detector=detector, cell="fp")
    gauge.set(confusion.false_negatives, detector=detector, cell="fn")
    gauge.set(confusion.true_negatives, detector=detector, cell="tn")


def incidence_per_kmachine(n_mercurial_machines: int, n_machines: int) -> float:
    """Mercurial machines per 1000 machines.

    The paper reports "on the order of a few mercurial cores per several
    thousand machines", i.e. roughly 0.3–3 per 1000.
    """
    if n_machines <= 0:
        raise ValueError("need a positive machine count")
    return 1000.0 * n_mercurial_machines / n_machines


def core_incidence_fraction(n_mercurial_cores: int, n_cores: int) -> float:
    """Fraction of all cores that are mercurial (ground truth)."""
    if n_cores <= 0:
        raise ValueError("need a positive core count")
    return n_mercurial_cores / n_cores


@dataclasses.dataclass(frozen=True)
class OnsetStats:
    """Age-until-onset summary with explicit censoring.

    ``censored`` counts defects whose onset lies beyond the observation
    horizon — the paper's challenge that "this metric depends on how
    long you can wait".
    """

    observed: int
    censored: int
    mean_days: float
    median_days: float
    p90_days: float

    @property
    def censored_fraction(self) -> float:
        total = self.observed + self.censored
        return self.censored / total if total else 0.0


def onset_stats(
    onsets_days: Sequence[float], horizon_days: float
) -> OnsetStats:
    """Summarize onset ages observable within ``horizon_days``."""
    visible = sorted(o for o in onsets_days if o <= horizon_days)
    censored = len(onsets_days) - len(visible)
    if not visible:
        return OnsetStats(0, censored, float("nan"), float("nan"), float("nan"))
    p90_index = min(len(visible) - 1, int(0.9 * len(visible)))
    return OnsetStats(
        observed=len(visible),
        censored=censored,
        mean_days=statistics.fmean(visible),
        median_days=statistics.median(visible),
        p90_days=visible[p90_index],
    )


def visible_corruption_rate(
    corruptions_detected_by_app: int, workload_hours: float
) -> float:
    """Application-visible corruptions per workload-hour (§4 metric 3)."""
    if workload_hours <= 0:
        raise ValueError("need positive workload hours")
    return corruptions_detected_by_app / workload_hours


def stickiness(root_corruptions: int, downstream_errors: int) -> float:
    """Amplification: application-level errors per root CEE (§4).

    1.0 means each corruption caused exactly one visible error;
    larger values mean corruption propagated ("are corruptions
    'sticky'?").  Returns 0 when there were no root corruptions.
    """
    if root_corruptions <= 0:
        return 0.0
    return downstream_errors / root_corruptions


@dataclasses.dataclass(frozen=True)
class FleetMetrics:
    """Bundle of §4 metrics for one simulated campaign."""

    machines: int
    cores: int
    mercurial_cores_truth: int
    mercurial_cores_detected: int
    detection: Confusion
    onset: OnsetStats
    visible_rate_per_hour: float
    stickiness: float

    @property
    def truth_per_kmachine(self) -> float:
        return 1000.0 * self.mercurial_cores_truth / self.machines

    @property
    def detected_per_kmachine(self) -> float:
        return 1000.0 * self.mercurial_cores_detected / self.machines

    @property
    def coverage_shortfall(self) -> float:
        """Fraction of truly mercurial cores the campaign missed —
        the paper's 'depends on test coverage' caveat quantified."""
        if self.mercurial_cores_truth == 0:
            return 0.0
        missed = self.mercurial_cores_truth - self.detection.true_positives
        return missed / self.mercurial_cores_truth

    def render(self) -> str:
        """Human-readable report block."""
        lines = [
            f"fleet: {self.machines} machines / {self.cores} cores",
            (
                f"incidence (truth):    {self.truth_per_kmachine:.2f} "
                "mercurial cores per 1000 machines"
            ),
            (
                f"incidence (detected): {self.detected_per_kmachine:.2f} "
                "per 1000 machines"
            ),
            (
                f"detector: precision={self.detection.precision:.2f} "
                f"recall={self.detection.recall:.2f} "
                f"fpr={self.detection.false_positive_rate:.4f}"
            ),
            f"coverage shortfall: {self.coverage_shortfall:.1%}",
            (
                f"onset: median={self.onset.median_days:.0f}d "
                f"p90={self.onset.p90_days:.0f}d "
                f"censored={self.onset.censored_fraction:.0%}"
            ),
            f"app-visible corruption rate: {self.visible_rate_per_hour:.3g}/hour",
            f"stickiness (errors per root CEE): {self.stickiness:.2f}",
        ]
        return "\n".join(lines)
