"""The CEE symptom taxonomy of §2, "in increasing order of risk".

The paper classifies the observable consequences of a mercurial core:

1. wrong answers detected nearly immediately (self-checks, exceptions,
   segfaults) — retryable;
2. machine checks — more disruptive, but noisy;
3. wrong answers detected too late to retry;
4. wrong answers never detected — the worst case, with unbounded blast
   radius ("bad metadata can cause the loss of an entire file system").

Experiments classify every ground-truth corruption into one of these
classes by *when and whether* any detector noticed it.
"""

from __future__ import annotations

import enum


class Symptom(enum.Enum):
    """Observable consequence classes, ordered by increasing risk (§2)."""

    WRONG_ANSWER_IMMEDIATE = "wrong_answer_immediate"
    MACHINE_CHECK = "machine_check"
    WRONG_ANSWER_LATE = "wrong_answer_late"
    WRONG_ANSWER_UNDETECTED = "wrong_answer_undetected"

    @property
    def risk_rank(self) -> int:
        """Position in the paper's increasing-risk ordering (1 = least)."""
        return _RISK_ORDER.index(self) + 1

    @property
    def retryable(self) -> bool:
        """Whether automated retry can mask the failure (§2)."""
        return self in (Symptom.WRONG_ANSWER_IMMEDIATE, Symptom.MACHINE_CHECK)


_RISK_ORDER = (
    Symptom.WRONG_ANSWER_IMMEDIATE,
    Symptom.MACHINE_CHECK,
    Symptom.WRONG_ANSWER_LATE,
    Symptom.WRONG_ANSWER_UNDETECTED,
)


def risk_ordered() -> tuple[Symptom, ...]:
    """All symptom classes in the paper's increasing-risk order."""
    return _RISK_ORDER


def classify(
    detected: bool,
    machine_check: bool = False,
    detection_latency: float | None = None,
    retry_window: float = 0.0,
) -> Symptom:
    """Classify one corruption by its detection outcome.

    Args:
        detected: whether any check ever caught the wrong answer.
        machine_check: the failure surfaced as a machine check.
        detection_latency: time (same units as ``retry_window``) between
            the corruption and its detection; ``None`` if undetected.
        retry_window: latency budget within which a retry is still
            possible (e.g. the request deadline or transaction window).
    """
    if machine_check:
        return Symptom.MACHINE_CHECK
    if not detected:
        return Symptom.WRONG_ANSWER_UNDETECTED
    if detection_latency is None:
        raise ValueError("detected corruptions need a detection_latency")
    if detection_latency <= retry_window:
        return Symptom.WRONG_ANSWER_IMMEDIATE
    return Symptom.WRONG_ANSWER_LATE
