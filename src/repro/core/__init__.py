"""The paper's conceptual contribution, systematized.

- :mod:`repro.core.taxonomy` — §2 symptom classes in risk order.
- :mod:`repro.core.events` — observable events and the event log.
- :mod:`repro.core.confidence` — recidivism-based suspicion scoring.
- :mod:`repro.core.report` — the suspect-core complaint (RPC) service.
- :mod:`repro.core.triage` — the human investigation workflow.
- :mod:`repro.core.policy` — quarantine policy engine.
- :mod:`repro.core.metrics` — the §4 metrics, made computable.
"""

from repro.core.confidence import SuspicionTracker, posterior_mercurial
from repro.core.events import CeeEvent, EventKind, EventLog, Reporter
from repro.core.metrics import (
    Confusion,
    FleetMetrics,
    OnsetStats,
    confusion,
    core_incidence_fraction,
    incidence_per_kmachine,
    onset_stats,
    stickiness,
    visible_corruption_rate,
)
from repro.core.policy import Action, Decision, PolicyConfig, QuarantinePolicy
from repro.core.report import Complaint, CoreComplaintService, SuspectCore
from repro.core.taxonomy import Symptom, classify, risk_ordered
from repro.core.triage import HumanTriageModel, Investigation, TriageOutcome

__all__ = [
    "SuspicionTracker",
    "posterior_mercurial",
    "CeeEvent",
    "EventKind",
    "EventLog",
    "Reporter",
    "Confusion",
    "FleetMetrics",
    "OnsetStats",
    "confusion",
    "core_incidence_fraction",
    "incidence_per_kmachine",
    "onset_stats",
    "stickiness",
    "visible_corruption_rate",
    "Action",
    "Decision",
    "PolicyConfig",
    "QuarantinePolicy",
    "Complaint",
    "CoreComplaintService",
    "SuspectCore",
    "Symptom",
    "classify",
    "risk_ordered",
    "HumanTriageModel",
    "Investigation",
    "TriageOutcome",
]
