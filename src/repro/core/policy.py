"""Quarantine policy: turning suspicion into action.

§6 frames detection as "a tradeoff between false negatives or delayed
positives (leading to failures and data corruption), false positives
(leading to wasted cores that are inappropriately isolated), and the
non-trivial costs of the detection processes themselves."  The policy
engine makes that tradeoff explicit and tunable:

- low suspicion  → keep monitoring;
- medium         → schedule targeted retesting (cheap, reversible);
- high / confessed → quarantine the core;
- several bad cores on one machine → quarantine the machine;
- a capacity guard caps the fraction of the fleet that may be stranded
  by false positives.
"""

from __future__ import annotations

import collections
import dataclasses
import enum


class Action(enum.Enum):
    """What the quarantine policy decided to do about one core."""

    NONE = "none"
    MONITOR = "monitor"
    RETEST = "retest"
    QUARANTINE_CORE = "quarantine_core"
    QUARANTINE_MACHINE = "quarantine_machine"


@dataclasses.dataclass(frozen=True)
class PolicyConfig:
    """Tunable thresholds; defaults favour few false positives.

    Attributes:
        monitor_threshold: suspicion score to start watching a core.
        retest_threshold: score to schedule confession testing.
        quarantine_threshold: score to quarantine without a confession.
        require_confession_below: below this score a confession (failed
            confession test) is required before quarantining.
        machine_core_limit: quarantined cores on one machine at which
            the whole machine is pulled (suggests a chip-level or
            platform problem rather than a single mercurial core).
        max_quarantined_fraction: capacity guard — refuse new core
            quarantines beyond this fraction of the visible fleet.
    """

    monitor_threshold: float = 1.0
    retest_threshold: float = 2.0
    quarantine_threshold: float = 6.0
    require_confession_below: float = 6.0
    machine_core_limit: int = 3
    max_quarantined_fraction: float = 0.02

    def __post_init__(self) -> None:
        if not (
            self.monitor_threshold
            <= self.retest_threshold
            <= self.quarantine_threshold
        ):
            raise ValueError("thresholds must be monotonically ordered")
        if self.machine_core_limit < 1:
            raise ValueError("machine_core_limit must be >= 1")
        if not 0.0 < self.max_quarantined_fraction <= 1.0:
            raise ValueError("max_quarantined_fraction must be in (0, 1]")


@dataclasses.dataclass(frozen=True)
class Decision:
    """One policy decision: the action taken on a core, and why."""

    core_id: str
    action: Action
    reason: str


class QuarantinePolicy:
    """Stateful policy engine over suspicion scores and confessions."""

    def __init__(self, config: PolicyConfig | None = None,
                 fleet_cores: int = 1) -> None:
        self.config = config or PolicyConfig()
        self.fleet_cores = max(fleet_cores, 1)
        self.quarantined: set[str] = set()
        self.quarantined_machines: set[str] = set()
        self._per_machine: collections.Counter = collections.Counter()

    @staticmethod
    def machine_of(core_id: str) -> str:
        """Machine id by convention: ``"<machine>/<core>"``."""
        return core_id.rsplit("/", 1)[0]

    @property
    def capacity_exhausted(self) -> bool:
        limit = self.config.max_quarantined_fraction * self.fleet_cores
        return len(self.quarantined) >= limit

    def decide(
        self,
        core_id: str,
        score: float,
        confessed: bool = False,
    ) -> Decision:
        """Decide the next action for one core.

        Args:
            score: current suspicion score (from
                :class:`~repro.core.confidence.SuspicionTracker`).
            confessed: a confession test has reproduced a failure.
        """
        config = self.config
        machine_id = self.machine_of(core_id)
        if core_id in self.quarantined or machine_id in self.quarantined_machines:
            return Decision(core_id, Action.NONE, "already quarantined")

        wants_quarantine = confessed or score >= config.quarantine_threshold
        if not confessed and score < config.require_confession_below:
            wants_quarantine = False

        if wants_quarantine:
            if self.capacity_exhausted:
                return Decision(
                    core_id,
                    Action.RETEST,
                    "capacity guard: quarantine budget exhausted, keep retesting",
                )
            self.quarantined.add(core_id)
            self._per_machine[machine_id] += 1
            if self._per_machine[machine_id] >= config.machine_core_limit:
                self.quarantined_machines.add(machine_id)
                return Decision(
                    core_id,
                    Action.QUARANTINE_MACHINE,
                    f"{self._per_machine[machine_id]} bad cores on {machine_id}",
                )
            reason = "confession" if confessed else "score over threshold"
            return Decision(core_id, Action.QUARANTINE_CORE, reason)

        if score >= config.retest_threshold:
            return Decision(core_id, Action.RETEST, "suspicious; extract confession")
        if score >= config.monitor_threshold:
            return Decision(core_id, Action.MONITOR, "weak signal; watch")
        return Decision(core_id, Action.NONE, "background noise")

    def release(self, core_id: str) -> None:
        """Un-quarantine (e.g. after exoneration or repair)."""
        if core_id in self.quarantined:
            self.quarantined.discard(core_id)
            machine_id = self.machine_of(core_id)
            self._per_machine[machine_id] -= 1
            if self._per_machine[machine_id] < self.config.machine_core_limit:
                self.quarantined_machines.discard(machine_id)
