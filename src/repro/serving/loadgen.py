"""Deterministic open-loop load generation for serve-at-scale campaigns.

The Facebook SDC-at-scale follow-up frames silent corruption as a
*user-visible* problem: what matters is how many of the requests real
users issue come back wrong, not per-core CEE counts.  Measuring that
needs a traffic model that behaves like users do — **open loop**:
arrivals are a function of simulated time alone, never of how fast the
service is draining its queues.  A slow or degraded cluster therefore
builds backlog and blows deadlines exactly the way a real one would,
instead of quietly self-throttling the load (the classic closed-loop
benchmarking mistake).

Three pieces compose:

- :class:`LoadPhase` / :class:`LoadProfile` — a piecewise-linear
  arrival-rate script (ramps, plateaus, spikes) evaluated per tick;
- :class:`UserCohort` — a slice of the user population with its own
  payload size, deadline, and user-id space (interactive vs batch vs
  bulk traffic ages very differently under degradation);
- :class:`LoadGenerator` — draws each tick's Poisson arrival count at
  the profile rate, samples a cohort and a stable per-user ``route_key``
  for every request, and stamps payloads from its own seeded RNG.

Determinism contract: the generator owns a private
``numpy.random.Generator`` seeded at construction, and ``arrivals`` is
a pure function of ``(seed, tick sequence)`` — two generators built
with the same arguments produce byte-identical request streams, which
is what makes E17 scorecards comparable across hardening arms and
bit-identical across worker counts.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.serving.service import Request


@dataclasses.dataclass(frozen=True, slots=True)
class UserCohort:
    """One slice of the user population.

    Attributes:
        name: cohort label (appears on requests and scorecard splits).
        weight: relative share of arrivals routed to this cohort.
        payload_bytes: request payload size.
        deadline_ms: end-to-end latency budget for this cohort.
        n_users: size of the cohort's user-id space; ``route_key`` is
            drawn uniformly from it, so popular-key caching and
            consistent-hash spread are both exercised.
    """

    name: str
    weight: float = 1.0
    payload_bytes: int = 16
    deadline_ms: float = 30.0
    n_users: int = 256

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("cohort weight must be positive")
        if self.n_users < 1:
            raise ValueError("n_users must be >= 1")


#: the default population: latency-sensitive interactive traffic plus a
#: heavier batch tail with a looser deadline
DEFAULT_COHORTS: tuple[UserCohort, ...] = (
    UserCohort("interactive", weight=3.0, payload_bytes=16,
               deadline_ms=30.0, n_users=512),
    UserCohort("batch", weight=1.0, payload_bytes=64,
               deadline_ms=120.0, n_users=64),
)


@dataclasses.dataclass(frozen=True, slots=True)
class LoadPhase:
    """One linear segment of the arrival-rate script.

    The rate at offset ``t`` into the phase interpolates linearly from
    ``start_rate`` to ``end_rate`` (equal values = a plateau).
    """

    ticks: int
    start_rate: float
    end_rate: float

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise ValueError("phase ticks must be >= 1")
        if self.start_rate < 0 or self.end_rate < 0:
            raise ValueError("arrival rates must be non-negative")

    def rate_at(self, offset: int) -> float:
        if self.ticks == 1:
            return self.start_rate
        fraction = min(max(offset, 0), self.ticks - 1) / (self.ticks - 1)
        return self.start_rate + (self.end_rate - self.start_rate) * fraction


class LoadProfile:
    """A piecewise-linear arrival-rate script over campaign ticks."""

    def __init__(self, phases: list[LoadPhase]):
        if not phases:
            raise ValueError("a LoadProfile needs at least one phase")
        self.phases = list(phases)

    @property
    def total_ticks(self) -> int:
        return sum(phase.ticks for phase in self.phases)

    def rate_at(self, tick: int) -> float:
        """Arrival rate at ``tick``; the final rate holds past the end."""
        offset = tick
        for phase in self.phases:
            if offset < phase.ticks:
                return phase.rate_at(offset)
            offset -= phase.ticks
        return self.phases[-1].rate_at(self.phases[-1].ticks - 1)

    @classmethod
    def steady(cls, rate: float, ticks: int) -> "LoadProfile":
        """A flat plateau — the null traffic hypothesis."""
        return cls([LoadPhase(ticks, rate, rate)])

    @classmethod
    def ramp(
        cls, base_rate: float, peak_rate: float, ticks: int
    ) -> "LoadProfile":
        """Warm up, climb to peak, hold, and cool down (20/30/35/15%).

        The canonical open-loop shape: the climb exposes autoscaler
        reaction time, the hold exposes steady-state SLOs at peak, the
        cooldown exposes scale-down behaviour.
        """
        warm = max(1, ticks // 5)
        climb = max(1, (ticks * 3) // 10)
        cool = max(1, (ticks * 3) // 20)
        hold = max(1, ticks - warm - climb - cool)
        return cls([
            LoadPhase(warm, base_rate, base_rate),
            LoadPhase(climb, base_rate, peak_rate),
            LoadPhase(hold, peak_rate, peak_rate),
            LoadPhase(cool, peak_rate, base_rate),
        ])


class LoadGenerator:
    """Open-loop request source: seeded, cohort-aware, ramp-scripted.

    ``arrivals(tick)`` draws ``Poisson(profile.rate_at(tick) × burst)``
    requests.  The ``burst_multiplier`` hook is how chaos
    ``TRAFFIC_BURST`` windows compose with the scripted profile —
    the script models planned load, chaos models the unplanned spike.
    """

    def __init__(
        self,
        profile: LoadProfile,
        cohorts: tuple[UserCohort, ...] = DEFAULT_COHORTS,
        seed: int = 0,
    ):
        if not cohorts:
            raise ValueError("need at least one cohort")
        self.profile = profile
        self.cohorts = tuple(cohorts)
        self.rng = np.random.default_rng(seed)
        weights = np.array([c.weight for c in self.cohorts], dtype=float)
        self._cohort_p = weights / weights.sum()
        self._next_request_id = 0
        self.generated = 0

    def arrivals(
        self, tick: int, burst_multiplier: float = 1.0
    ) -> list[Request]:
        """This tick's arrivals (possibly empty), in issue order."""
        rate = self.profile.rate_at(tick) * burst_multiplier
        count = int(self.rng.poisson(rate)) if rate > 0 else 0
        requests: list[Request] = []
        for _ in range(count):
            cohort = self.cohorts[
                int(self.rng.choice(len(self.cohorts), p=self._cohort_p))
            ]
            user = int(self.rng.integers(cohort.n_users))
            requests.append(
                Request(
                    request_id=self._next_request_id,
                    payload=self.rng.bytes(cohort.payload_bytes),
                    deadline_ms=cohort.deadline_ms,
                    arrival_tick=tick,
                    # cohorts get disjoint key spaces so "interactive
                    # user 7" and "batch user 7" are different users
                    route_key=(
                        user + sum(
                            c.n_users for c in self.cohorts
                            if c.name < cohort.name
                        )
                    ),
                    cohort=cohort.name,
                )
            )
            self._next_request_id += 1
        self.generated += count
        return requests


__all__ = [
    "DEFAULT_COHORTS",
    "LoadGenerator",
    "LoadPhase",
    "LoadProfile",
    "UserCohort",
]
