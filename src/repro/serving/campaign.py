"""Serving campaigns: traffic + chaos + hardening + SLO scorecard.

A campaign drives a request stream against an :mod:`repro.serving`
service for a scripted number of ticks, injects
:class:`~repro.serving.chaos.ChaosSchedule` faults along the way, and
scores the configuration on the metrics a service owner actually has
SLOs for:

- **corrupt-response escape rate** — well-formed but wrong responses
  delivered as OK (the paper's silent-corruption hazard, measured
  against ground truth the service itself never sees);
- **availability** — fraction of arrivals answered OK in deadline;
- **p99 latency proxy** — tail of the simulated end-to-end latency;
- **goodput** — *valid* OK responses per tick.

The campaign also runs the detection loop the paper's §6 describes,
scaled down to serving time: validator catches and breaker trips become
:class:`~repro.core.events.CeeEvent` entries, a
:class:`~repro.detection.signals.SignalAnalyzer` turns them into
per-core suspicion, and a :class:`~repro.core.policy.QuarantinePolicy`
pulls the offending core out of the replica set — at which point the
:class:`~repro.fleet.scheduler.FleetScheduler` re-places the replica on
a spare core.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.core.confidence import SuspicionTracker
from repro.core.events import CeeEvent, EventKind, EventLog, Reporter
from repro.core.policy import Action, PolicyConfig, QuarantinePolicy
from repro.detection.signals import SignalAnalyzer
from repro.fleet.machine import Machine
from repro.fleet.product import CpuProduct
from repro.fleet.scheduler import FleetScheduler, Task
from repro.chaos import ChaosKind, ChaosSchedule
from repro.obs.forensics import detection_latency_summary
from repro.serving.robustness import (
    BreakerBoard,
    HardeningConfig,
    LoadShedder,
    ResponseValidator,
)
from repro.serving.service import (
    Attempt,
    AttemptOutcome,
    Request,
    Response,
    ResponseStatus,
    RoundRobinRouter,
    ServerReplica,
)
from repro.silicon.aging import AgingProfile
from repro.silicon.core import Chip, Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.errors import CoreOfflineError, MachineCheckError
from repro.silicon.units import FunctionalUnit, Op

MS_PER_DAY = 86_400_000.0


@dataclasses.dataclass
class CampaignConfig:
    """Traffic, capacity and timing knobs for one campaign."""

    ticks: int = 800
    tick_ms: float = 2.0
    arrivals_per_tick: float = 3.0
    n_replicas: int = 4
    per_replica_per_tick: int = 2
    payload_bytes: int = 16
    deadline_ms: float = 30.0
    base_latency_ms: float = 1.0
    straggler_prob: float = 0.03
    straggler_factor: float = 12.0
    #: connection-failure penalty when a core drops mid-RPC
    offline_penalty_ms: float = 0.5
    #: machine-check penalty (the OS eats the fault and kills the RPC)
    mce_penalty_ms: float = 2.0
    policy: PolicyConfig = dataclasses.field(default_factory=PolicyConfig)

    @property
    def capacity_per_tick(self) -> int:
        return self.n_replicas * self.per_replica_per_tick


@dataclasses.dataclass
class SloScorecard:
    """What one campaign configuration achieved."""

    name: str
    total_arrivals: int = 0
    ok: int = 0
    corrupt_escapes: int = 0
    corrupt_caught: int = 0
    timeouts: int = 0
    shed: int = 0
    unavailable: int = 0
    failed: int = 0
    retries: int = 0
    hedges: int = 0
    machine_checks: int = 0
    breaker_trips: int = 0
    ticks: int = 0
    quarantine_tick: dict[str, int] = dataclasses.field(default_factory=dict)
    latencies_ms: list[float] = dataclasses.field(default_factory=list)
    #: ground truth: first tick each core demonstrably corrupted
    first_corrupt_tick: dict[str, int] = dataclasses.field(default_factory=dict)
    #: per-incident stage latencies (see repro.obs.forensics)
    detection_latency_ms: dict = dataclasses.field(default_factory=dict)

    @property
    def availability(self) -> float:
        if self.total_arrivals == 0:
            return 1.0
        return self.ok / self.total_arrivals

    @property
    def escape_rate(self) -> float:
        """Corrupt responses delivered per OK response."""
        if self.ok == 0:
            return 0.0
        return self.corrupt_escapes / self.ok

    @property
    def valid_ok(self) -> int:
        return self.ok - self.corrupt_escapes

    @property
    def goodput_per_tick(self) -> float:
        if self.ticks == 0:
            return 0.0
        return self.valid_ok / self.ticks

    @property
    def throughput_per_tick(self) -> float:
        if self.ticks == 0:
            return 0.0
        return self.ok / self.ticks

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.array(self.latencies_ms), q))

    @property
    def p50_latency_ms(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_latency_ms(self) -> float:
        return self.latency_percentile(99.0)

    def summary_row(self) -> list[str]:
        return [
            self.name,
            f"{self.escape_rate:.2%}",
            f"{self.availability:.2%}",
            f"{self.p99_latency_ms:.1f}",
            f"{self.goodput_per_tick:.2f}",
            str(self.corrupt_caught),
            str(self.breaker_trips),
            str(len(self.quarantine_tick)),
        ]

    def to_json(self) -> dict:
        """Machine-readable SLO scorecard (CI asserts on these keys)."""
        return {
            "name": self.name,
            "ticks": self.ticks,
            "total_arrivals": self.total_arrivals,
            "ok": self.ok,
            "escape_rate": self.escape_rate,
            "corrupt_escapes": self.corrupt_escapes,
            "corrupt_caught": self.corrupt_caught,
            "availability": self.availability,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "goodput_per_tick": self.goodput_per_tick,
            "timeouts": self.timeouts,
            "shed": self.shed,
            "unavailable": self.unavailable,
            "failed": self.failed,
            "retries": self.retries,
            "hedges": self.hedges,
            "machine_checks": self.machine_checks,
            "breaker_trips": self.breaker_trips,
            "quarantine_tick": dict(sorted(self.quarantine_tick.items())),
            "first_corrupt_tick": dict(sorted(self.first_corrupt_tick.items())),
            "detection_latency_ms": self.detection_latency_ms,
        }


class ServingCampaign:
    """One configuration, one fleet, one chaos script, one scorecard."""

    def __init__(
        self,
        machines: list[Machine],
        config: CampaignConfig | None = None,
        hardening: HardeningConfig | None = None,
        chaos: ChaosSchedule | None = None,
        seed: int = 0,
    ):
        self.machines = machines
        self.config = config or CampaignConfig()
        self.hardening = hardening or HardeningConfig.hardened()
        self.chaos = chaos or ChaosSchedule()
        self.chaos.reset()
        self.rng = np.random.default_rng(seed)

        self.events = EventLog()
        self._core_by_id: dict[str, Core] = {}
        self._machine_by_core: dict[str, str] = {}
        for machine in machines:
            for core in machine.cores:
                self._core_by_id[core.core_id] = core
                self._machine_by_core[core.core_id] = machine.machine_id

        n_cores = len(self._core_by_id)
        self.analyzer = SignalAnalyzer(tracker=SuspicionTracker())
        self.policy = QuarantinePolicy(self.config.policy, fleet_cores=n_cores)

        # The client's own core is trusted (healthy by construction);
        # the end-to-end argument needs at least one honest endpoint.
        self.client_core = Core(
            "client/c00", rng=np.random.default_rng(seed + 1)
        )
        self.validator = (
            ResponseValidator(self.client_core)
            if self.hardening.validate else None
        )
        self.breakers = (
            BreakerBoard(
                self.hardening.breaker,
                event_log=self.events,
                machine_of=self._machine_by_core,
            )
            if self.hardening.breaker else None
        )
        self.shedder = (
            LoadShedder(self.hardening.shed) if self.hardening.shed else None
        )

        self.scheduler = FleetScheduler(machines)
        self.router = RoundRobinRouter(self._place_initial_replicas())

        self.scorecard = SloScorecard(name=self.hardening.name)
        self._queue: list[Request] = []
        self._next_request_id = 0
        self._restore_at: dict[str, int] = {}
        self._burst_multiplier = 1.0
        self._burst_until = -1
        self._events_seen = 0
        self.responses: list[Response] = []

        # Ground-truth corruption watcher.  Unconditional (not obs-gated)
        # because the scorecard must be byte-identical with obs on or
        # off: the forensics timeline is campaign bookkeeping, the obs
        # layer only *also* exports it when enabled.
        self._corruption_base = {
            core_id: core.corruptions_induced
            for core_id, core in self._core_by_id.items()
        }
        self._first_corrupt_tick: dict[str, int] = {}

        self._now_ms = 0.0
        self._obs_on = obs.enabled()
        if self._obs_on:
            obs.tracer.set_clock(lambda: self._now_ms)
            self._m_requests = obs.metrics.counter(
                "serving_requests_total",
                help="terminal request outcomes, by client-visible status",
                unit="requests",
            )
            self._h_latency = obs.metrics.histogram(
                "serving_latency_ms",
                help="end-to-end latency of OK responses (simulated)",
                unit="ms",
            )
            self._m_escapes = obs.metrics.counter(
                "serving_corrupt_escapes_total",
                help="corrupt responses delivered as OK (ground truth)",
                unit="responses",
            )
            self._m_caught = obs.metrics.counter(
                "serving_corrupt_caught_total",
                help="responses rejected by the e2e validator",
                unit="responses",
            )
            self._m_quarantines = obs.metrics.counter(
                "serving_quarantines_total",
                help="cores pulled from the replica pool by the campaign "
                     "policy loop",
                unit="cores",
            )

    # -- placement -----------------------------------------------------

    def _make_replica(self, core: Core, index: int) -> ServerReplica:
        cfg = self.config
        return ServerReplica(
            f"replica/{index}",
            core,
            base_latency_ms=cfg.base_latency_ms,
            straggler_prob=cfg.straggler_prob,
            straggler_factor=cfg.straggler_factor,
        )

    def _place_initial_replicas(self) -> list[ServerReplica]:
        tasks = [
            Task(f"replica/{i}", op_mix={Op.COPY: 1.0})
            for i in range(self.config.n_replicas)
        ]
        placements, _ = self.scheduler.schedule(tasks)
        if len(placements) < self.config.n_replicas:
            raise ValueError(
                "fleet too small for the requested replica count"
            )
        return [
            self._make_replica(self._core_by_id[p.core_id], i)
            for i, p in enumerate(placements)
        ]

    def _replace_replica(self, replica: ServerReplica) -> None:
        """Re-place one replica off its (now quarantined) core."""
        occupied = {r.core_id for r in self.router.replicas}
        quarantined = set(self.policy.quarantined) | set(
            self.scorecard.quarantine_tick
        )
        placements, _ = self.scheduler.schedule(
            [Task(replica.replica_id, op_mix={Op.COPY: 1.0})],
            exclude_core_ids=occupied | quarantined,
        )
        if not placements:
            return  # degraded: serve with fewer replicas
        new_core = self._core_by_id[placements[0].core_id]
        self.router.replace(
            replica,
            self._make_replica(new_core, len(self.router.replicas)),
        )

    # -- event plumbing ------------------------------------------------

    def _emit(
        self, now_ms: float, core_id: str, kind: EventKind, detail: str
    ) -> None:
        self.events.append(
            CeeEvent(
                time_days=now_ms / MS_PER_DAY,
                machine_id=self._machine_by_core.get(
                    core_id, core_id.rsplit("/", 1)[0]
                ),
                core_id=core_id,
                kind=kind,
                reporter=Reporter.AUTOMATED,
                application="serving",
                detail=detail,
            )
        )

    # -- one request ---------------------------------------------------

    def _attempt_once(
        self,
        replica: ServerReplica,
        request: Request,
        expected_checksum: int | None,
        now_ms: float,
        hedged: bool = False,
    ) -> tuple[Attempt, bytes | None]:
        cfg = self.config
        core_id = replica.core_id
        try:
            payload, latency = replica.serve(request, self.rng)
        except MachineCheckError:
            self.scorecard.machine_checks += 1
            self._emit(now_ms, core_id, EventKind.MACHINE_CHECK, "mce in RPC")
            if self.breakers:
                self.breakers.record_failure(core_id, now_ms, "machine check")
            return (
                Attempt(core_id, AttemptOutcome.MACHINE_CHECK,
                        cfg.mce_penalty_ms, hedged),
                None,
            )
        except CoreOfflineError:
            return (
                Attempt(core_id, AttemptOutcome.CORE_OFFLINE,
                        cfg.offline_penalty_ms, hedged),
                None,
            )
        if self.validator is not None and expected_checksum is not None:
            if not self.validator.validate(expected_checksum, payload):
                self.scorecard.corrupt_caught += 1
                if self._obs_on:
                    self._m_caught.inc()
                self._emit(
                    now_ms, core_id, EventKind.APP_REPORT,
                    "e2e checksum mismatch",
                )
                if self.breakers:
                    self.breakers.record_failure(
                        core_id, now_ms, "checksum mismatch"
                    )
                return (
                    Attempt(core_id, AttemptOutcome.CORRUPT_CAUGHT,
                            latency, hedged),
                    None,
                )
        if self.breakers:
            self.breakers.record_success(core_id, now_ms)
        return Attempt(core_id, AttemptOutcome.OK, latency, hedged), payload

    def _dispatch(self, request: Request, now_ms: float,
                  queue_wait_ms: float) -> Response:
        hardening = self.hardening
        expected = (
            self.validator.checksum(request.payload)
            if self.validator is not None else None
        )
        max_attempts = hardening.retry.max_attempts if hardening.retry else 1
        attempts: list[Attempt] = []
        tried: set[str] = set()
        total_latency = queue_wait_ms

        for attempt_index in range(max_attempts):
            exclude = set(tried) if (
                hardening.retry and hardening.retry.core_diversity
            ) else set()
            if self.breakers:
                exclude |= self.breakers.open_core_ids(now_ms)
            replica = self.router.pick(exclude)
            if replica is None:
                break
            if attempt_index > 0:
                self.scorecard.retries += 1
                total_latency += hardening.retry.backoff_ms(
                    attempt_index - 1, self.rng
                )
            attempt, payload = self._attempt_once(
                replica, request, expected, now_ms
            )
            attempts.append(attempt)
            tried.add(replica.core_id)
            effective = attempt.latency_ms
            winner = replica.core_id

            # Tail hedging: duplicate a slow-looking primary elsewhere.
            if (
                hardening.hedge
                and attempt.outcome is AttemptOutcome.OK
                and attempt.latency_ms > hardening.hedge.hedge_delay_ms
            ):
                hedge_exclude = exclude | {replica.core_id}
                hedge_replica = self.router.pick(hedge_exclude)
                if hedge_replica is not None:
                    self.scorecard.hedges += 1
                    h_attempt, h_payload = self._attempt_once(
                        hedge_replica, request, expected, now_ms, hedged=True
                    )
                    attempts.append(h_attempt)
                    tried.add(hedge_replica.core_id)
                    if h_attempt.outcome is AttemptOutcome.OK:
                        h_effective = (
                            hardening.hedge.hedge_delay_ms
                            + h_attempt.latency_ms
                        )
                        if h_effective < effective:
                            effective = h_effective
                            payload = h_payload
                            winner = hedge_replica.core_id

            total_latency += effective
            if attempt.outcome is AttemptOutcome.OK:
                status = (
                    ResponseStatus.OK
                    if total_latency <= request.deadline_ms
                    else ResponseStatus.TIMEOUT
                )
                return Response(
                    request.request_id, status, payload, winner,
                    total_latency, attempts,
                    validated=self.validator is not None,
                )

        status = (
            ResponseStatus.UNAVAILABLE if not attempts
            else ResponseStatus.FAILED
        )
        return Response(
            request.request_id, status, None, None, total_latency, attempts
        )

    # -- chaos ---------------------------------------------------------

    def _apply_chaos(self, tick: int) -> None:
        for action in self.chaos.due(tick):
            if action.kind is ChaosKind.ACTIVATE_DEFECT:
                core = self._core_by_id.get(action.core_id)
                if core is not None:
                    core.advance_age(action.magnitude)
            elif action.kind is ChaosKind.CRASH_CORE:
                core = self._core_by_id.get(action.core_id)
                if core is not None:
                    core.set_online(False)
                    self._restore_at[action.core_id] = (
                        tick + max(1, action.duration_ticks)
                    )
            elif action.kind is ChaosKind.MACHINE_CHECK_BURST:
                for replica in self.router.replicas:
                    if replica.core_id == action.core_id:
                        replica.forced_mce_remaining += int(action.magnitude)
            elif action.kind is ChaosKind.TRAFFIC_BURST:
                self._burst_multiplier = action.magnitude
                self._burst_until = tick + max(1, action.duration_ticks)

        # Transient crashes recover — unless the policy pulled the core.
        for core_id, restore_tick in list(self._restore_at.items()):
            if tick >= restore_tick:
                del self._restore_at[core_id]
                if core_id not in self.scorecard.quarantine_tick:
                    self._core_by_id[core_id].set_online(True)
        if tick >= self._burst_until:
            self._burst_multiplier = 1.0

    # -- detection loop ------------------------------------------------

    def _run_policy(self, tick: int, now_ms: float) -> None:
        new_events = self.events.tail(self._events_seen)
        self._events_seen = len(self.events)
        self.analyzer.ingest_all(new_events)

        now_days = now_ms / MS_PER_DAY
        for core_id, score in self.analyzer.suspects(
            now_days, threshold=self.config.policy.retest_threshold
        ):
            core = self._core_by_id.get(core_id)
            if core is None or core_id in self.scorecard.quarantine_tick:
                continue
            decision = self.policy.decide(core_id, score, confessed=False)
            if decision.action in (
                Action.QUARANTINE_CORE, Action.QUARANTINE_MACHINE
            ):
                self._quarantine(core_id, tick)
                if decision.action is Action.QUARANTINE_MACHINE:
                    machine_id = self._machine_by_core[core_id]
                    for sibling_id, owner in self._machine_by_core.items():
                        if owner == machine_id:
                            self._quarantine(sibling_id, tick)

        for replica in self.router.replicas:
            if replica.core_id in self.scorecard.quarantine_tick:
                self._replace_replica(replica)

    def _quarantine(self, core_id: str, tick: int) -> None:
        if core_id in self.scorecard.quarantine_tick:
            return
        self._core_by_id[core_id].set_online(False)
        self.scorecard.quarantine_tick[core_id] = tick
        self._restore_at.pop(core_id, None)
        if self._obs_on:
            self._m_quarantines.inc()
            with obs.tracer.span(
                "serving.quarantine", core_id=core_id, tick=tick
            ):
                pass

    # -- the main loop -------------------------------------------------

    def run(self) -> SloScorecard:
        cfg = self.config
        card = self.scorecard
        obs_on = self._obs_on
        for tick in range(cfg.ticks):
            now_ms = tick * cfg.tick_ms
            self._now_ms = now_ms
            self._apply_chaos(tick)

            live = len(self.router.live_replicas())
            capacity = live * cfg.per_replica_per_tick
            arrivals = int(self.rng.poisson(
                cfg.arrivals_per_tick * self._burst_multiplier
            ))
            card.total_arrivals += arrivals

            admitted = arrivals
            if self.shedder is not None:
                admitted = self.shedder.admit(
                    len(self._queue), arrivals, max(capacity, 1)
                )
                card.shed += arrivals - admitted
            for _ in range(admitted):
                payload = self.rng.bytes(cfg.payload_bytes)
                self._queue.append(
                    Request(
                        request_id=self._next_request_id,
                        payload=payload,
                        deadline_ms=cfg.deadline_ms,
                        arrival_tick=tick,
                    )
                )
                self._next_request_id += 1

            batch, self._queue = (
                self._queue[:capacity], self._queue[capacity:]
            )
            for request in batch:
                queue_wait = (tick - request.arrival_tick) * cfg.tick_ms
                if obs_on:
                    with obs.tracer.span(
                        "serving.request", request_id=request.request_id
                    ) as sp:
                        response = self._dispatch(request, now_ms, queue_wait)
                        sp.attrs["status"] = response.status.value
                        sp.attrs["attempts"] = response.n_attempts
                else:
                    response = self._dispatch(request, now_ms, queue_wait)
                self.responses.append(response)
                self._score(request, response)

            self._note_corruptions(tick)
            self._run_policy(tick, now_ms)

        # Whatever is still queued at the end never got served.
        for request in self._queue:
            card.unavailable += 1
        self._queue.clear()
        card.ticks = cfg.ticks
        if self.breakers:
            card.breaker_trips = self.breakers.total_trips
        card.first_corrupt_tick = dict(sorted(self._first_corrupt_tick.items()))
        card.detection_latency_ms = detection_latency_summary(
            self._first_corrupt_tick, card.quarantine_tick,
            list(self.events), cfg.tick_ms,
        )
        return card

    def _note_corruptions(self, tick: int) -> None:
        """Record the first tick each core's corruption counter moved.

        Ground-truth bookkeeping for the forensics timeline; runs
        unconditionally so scorecards don't depend on REPRO_OBS.
        """
        base = self._corruption_base
        for core_id, core in self._core_by_id.items():
            induced = core.corruptions_induced
            if induced != base[core_id]:
                base[core_id] = induced
                if core_id not in self._first_corrupt_tick:
                    self._first_corrupt_tick[core_id] = tick

    def _score(self, request: Request, response: Response) -> None:
        card = self.scorecard
        if self._obs_on:
            self._m_requests.inc(status=response.status.value)
        if response.status is ResponseStatus.OK:
            card.ok += 1
            card.latencies_ms.append(response.latency_ms)
            if self._obs_on:
                self._h_latency.observe(response.latency_ms)
            # Ground truth (the experimenter's oracle, never the
            # service's): an echo service must return what it was sent.
            if response.payload != request.payload:
                card.corrupt_escapes += 1
                if self._obs_on:
                    self._m_escapes.inc()
        elif response.status is ResponseStatus.TIMEOUT:
            card.timeouts += 1
        elif response.status is ResponseStatus.UNAVAILABLE:
            card.unavailable += 1
        elif response.status is ResponseStatus.FAILED:
            card.failed += 1


# ---------------------------------------------------------------------
# fleet construction for serving experiments
# ---------------------------------------------------------------------

def build_serving_fleet(
    n_machines: int = 4,
    cores_per_machine: int = 4,
    bad_machine: int = 0,
    bad_core: int = 1,
    base_rate: float = 0.05,
    onset_days: float = 0.0,
    seed: int = 7,
) -> tuple[list[Machine], str]:
    """A small fleet with exactly one (possibly late-onset) bad core.

    The defect is a stuck-bit on the load/store unit — the §2
    "repeated bit-flips ... at a particular bit position" archetype,
    which corrupts the serving copy path while leaving responses
    well-formed.  Returns (machines, bad core id).
    """
    product = CpuProduct(
        vendor="sim", sku=f"serving-{cores_per_machine}c",
        cores_per_machine=cores_per_machine, core_prevalence=0.0,
    )
    root = np.random.default_rng(seed)
    machines: list[Machine] = []
    bad_core_id = ""
    for m in range(n_machines):
        machine_id = f"m{m:05d}"
        cores = []
        for c in range(cores_per_machine):
            core_id = f"{machine_id}/c{c:02d}"
            defects = ()
            if m == bad_machine and c == bad_core:
                bad_core_id = core_id
                defects = (
                    StuckBitDefect(
                        f"defect/{core_id}",
                        bit=17,
                        base_rate=base_rate,
                        unit=FunctionalUnit.LOAD_STORE,
                        aging=AgingProfile(onset_days=onset_days),
                    ),
                )
            cores.append(
                Core(
                    core_id,
                    defects=defects,
                    rng=np.random.default_rng(root.integers(2**63)),
                )
            )
        machines.append(
            Machine(machine_id=machine_id, product=product, chip=Chip(cores))
        )
    return machines, bad_core_id


__all__ = [
    "CampaignConfig",
    "ServingCampaign",
    "SloScorecard",
    "build_serving_fleet",
]
