"""The E17 serve-at-scale campaign: sharded, hedged, budgeted, degraded.

:mod:`repro.serving.campaign` proves the hardening mechanisms on one
replica set; this driver runs them the way a planet-scale service
would, against a fleet where *several* cores are mercurial at once:

- traffic comes from the open-loop :class:`~repro.serving.loadgen.LoadGenerator`
  (arrival ramps, user cohorts, stable per-user ``route_key``);
- the service is a :class:`~repro.serving.cluster.ShardedCluster` with a
  pluggable per-shard router, per-shard
  :class:`~repro.serving.robustness.BreakerBoard`, retry-budget token
  bucket, stale-response cache and degradation tier;
- the request path adds what E15 lacked: **deadline propagation** (no
  attempt or hedge is launched once the remaining budget cannot pay for
  it), **retry budgets** (a drained bucket refuses the retry and emits
  ``RETRY_BUDGET_EXHAUSTED`` instead of amplifying an incident), and a
  **graceful-degradation ladder** (shed → serve-stale → fail-closed)
  driven by the cluster-wide fraction of open breakers;
- an :class:`~repro.serving.cluster.Autoscaler` adds and drains
  replicas off the :class:`~repro.fleet.scheduler.FleetScheduler` as
  utilization moves.

The scorecard extends E15's SLO view with the tail the paper's
fleet-scale framing cares about — p99.9 latency, stale-served and
fail-closed counts, hedge win rates, budget exhaustion — while keeping
the same ground-truth corruption oracle: an echo service must return
the bytes it was sent, and only responses *delivered as fresh OK* count
as user-visible corruption (a response labelled stale is degraded
service, not silent corruption).

Determinism contract: everything derives from the campaign seed (fleet
cores, load generator, service jitter); routing uses process-stable
hashes; obs metrics/spans are emission-only — scorecards are
byte-identical with observability on or off, and across worker counts.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.chaos import ChaosKind, ChaosSchedule
from repro.core.confidence import SuspicionTracker
from repro.core.events import CeeEvent, EventKind, EventLog, Reporter
from repro.core.policy import Action, PolicyConfig, QuarantinePolicy
from repro.detection.signals import SignalAnalyzer
from repro.fleet.machine import Machine
from repro.fleet.product import CpuProduct
from repro.fleet.scheduler import FleetScheduler, Task
from repro.obs.forensics import detection_latency_summary
from repro.serving.cluster import (
    ROUTER_POLICIES,
    Autoscaler,
    AutoscalerConfig,
    DegradationPolicy,
    DegradationTier,
    RetryBudgetConfig,
    Shard,
    ShardedCluster,
    TIER_ORDER,
)
from repro.serving.loadgen import DEFAULT_COHORTS, LoadGenerator, LoadProfile, UserCohort
from repro.serving.robustness import (
    BreakerConfig,
    HedgePolicy,
    LoadShedConfig,
    ResponseValidator,
    RetryPolicy,
)
from repro.serving.service import (
    Attempt,
    AttemptOutcome,
    Request,
    Response,
    ResponseStatus,
    ServerReplica,
)
from repro.silicon.aging import AgingProfile
from repro.silicon.core import Chip, Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.errors import CoreOfflineError, MachineCheckError
from repro.silicon.units import FunctionalUnit, Op

MS_PER_DAY = 86_400_000.0


# ---------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------

@dataclasses.dataclass
class ScaleConfig:
    """Cluster shape, traffic shape and timing for one E17 run."""

    ticks: int = 600
    tick_ms: float = 2.0
    n_shards: int = 3
    replicas_per_shard: int = 3
    per_replica_per_tick: int = 2
    base_rate: float = 6.0
    peak_rate: float = 14.0
    base_latency_ms: float = 1.0
    straggler_prob: float = 0.03
    straggler_factor: float = 12.0
    offline_penalty_ms: float = 0.5
    mce_penalty_ms: float = 2.0
    #: latency of a stale-cache hit (no core in the path)
    stale_latency_ms: float = 0.3
    #: the multi-bad-core fleet needs a wider quarantine budget than the
    #: single-defect default (2% of 32 cores rounds to one core)
    policy: PolicyConfig = dataclasses.field(
        default_factory=lambda: PolicyConfig(max_quarantined_fraction=0.3)
    )

    @property
    def n_replicas(self) -> int:
        return self.n_shards * self.replicas_per_shard


@dataclasses.dataclass(frozen=True)
class ScaleHardening:
    """Which defences the sharded service runs (the E17 arm knob)."""

    name: str = "full"
    validate: bool = True
    retry: RetryPolicy | None = dataclasses.field(default_factory=RetryPolicy)
    retry_budget: RetryBudgetConfig | None = dataclasses.field(
        default_factory=RetryBudgetConfig
    )
    hedge: HedgePolicy | None = dataclasses.field(default_factory=HedgePolicy)
    breaker: BreakerConfig | None = dataclasses.field(
        default_factory=BreakerConfig
    )
    shed: LoadShedConfig | None = dataclasses.field(
        default_factory=LoadShedConfig
    )
    degradation: DegradationPolicy | None = dataclasses.field(
        default_factory=DegradationPolicy
    )
    autoscale: AutoscalerConfig | None = dataclasses.field(
        default_factory=AutoscalerConfig
    )
    router_policy: str = "consistent-hash"

    def __post_init__(self) -> None:
        if self.router_policy not in ROUTER_POLICIES:
            raise ValueError(f"unknown router policy {self.router_policy!r}")

    @classmethod
    def baseline(cls) -> "ScaleHardening":
        """The naive cluster: trust every response, never reroute."""
        return cls(
            name="baseline", validate=False, retry=None, retry_budget=None,
            hedge=None, breaker=None, shed=None, degradation=None,
            autoscale=None, router_policy="round-robin",
        )

    @classmethod
    def retries_breakers(cls) -> "ScaleHardening":
        """Validation + budgeted retries + breakers, no hedging or
        degradation ladder — the middle rung of the mitigation-spend
        grid."""
        return cls(
            name="retries+breakers", hedge=None, degradation=None,
            autoscale=None,
        )

    @classmethod
    def full(cls) -> "ScaleHardening":
        """Everything on: hedging, degradation tiers, autoscaling."""
        return cls()


# ---------------------------------------------------------------------
# the scorecard
# ---------------------------------------------------------------------

@dataclasses.dataclass
class ScaleScorecard:
    """What one (prevalence, hardening) cell achieved."""

    name: str
    total_arrivals: int = 0
    ok: int = 0
    corrupt_escapes: int = 0
    corrupt_caught: int = 0
    timeouts: int = 0
    shed: int = 0
    unavailable: int = 0
    failed: int = 0
    fail_closed: int = 0
    stale_served: int = 0
    retries: int = 0
    retry_budget_exhausted: int = 0
    hedges: int = 0
    hedges_won: int = 0
    machine_checks: int = 0
    breaker_trips: int = 0
    autoscale_ups: int = 0
    autoscale_downs: int = 0
    ticks: int = 0
    #: ticks each shard spent in each non-normal tier (summed over shards)
    degraded_ticks: dict[str, int] = dataclasses.field(default_factory=dict)
    quarantine_tick: dict[str, int] = dataclasses.field(default_factory=dict)
    latencies_ms: list[float] = dataclasses.field(default_factory=list)
    per_cohort: dict[str, dict[str, int]] = dataclasses.field(
        default_factory=dict
    )
    first_corrupt_tick: dict[str, int] = dataclasses.field(default_factory=dict)
    detection_latency_ms: dict = dataclasses.field(default_factory=dict)

    @property
    def answered(self) -> int:
        """Responses a user got back with payload: fresh OK + stale."""
        return self.ok + self.stale_served

    @property
    def availability(self) -> float:
        """Fresh in-deadline OK responses per arrival (strict)."""
        if self.total_arrivals == 0:
            return 1.0
        return self.ok / self.total_arrivals

    @property
    def answered_rate(self) -> float:
        """OK + stale per arrival (what degraded service still delivers)."""
        if self.total_arrivals == 0:
            return 1.0
        return self.answered / self.total_arrivals

    @property
    def escape_rate(self) -> float:
        """User-visible corruption: wrong bytes delivered as fresh OK."""
        if self.ok == 0:
            return 0.0
        return self.corrupt_escapes / self.ok

    @property
    def valid_ok(self) -> int:
        return self.ok - self.corrupt_escapes

    @property
    def goodput_per_tick(self) -> float:
        if self.ticks == 0:
            return 0.0
        return self.valid_ok / self.ticks

    @property
    def hedge_win_rate(self) -> float:
        if self.hedges == 0:
            return 0.0
        return self.hedges_won / self.hedges

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.array(self.latencies_ms), q))

    @property
    def p50_latency_ms(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_latency_ms(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def p999_latency_ms(self) -> float:
        return self.latency_percentile(99.9)

    def summary_row(self) -> list[str]:
        return [
            self.name,
            f"{self.escape_rate:.3%}",
            f"{self.availability:.2%}",
            f"{self.p50_latency_ms:.1f}",
            f"{self.p99_latency_ms:.1f}",
            f"{self.p999_latency_ms:.1f}",
            str(self.stale_served),
            str(self.fail_closed),
            f"{self.hedges_won}/{self.hedges}",
            str(self.retry_budget_exhausted),
            str(len(self.quarantine_tick)),
        ]

    def to_json(self) -> dict:
        """Machine-readable scorecard (CI asserts on these keys)."""
        return {
            "name": self.name,
            "ticks": self.ticks,
            "total_arrivals": self.total_arrivals,
            "ok": self.ok,
            "escape_rate": self.escape_rate,
            "corrupt_escapes": self.corrupt_escapes,
            "corrupt_caught": self.corrupt_caught,
            "availability": self.availability,
            "answered_rate": self.answered_rate,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "p999_latency_ms": self.p999_latency_ms,
            "goodput_per_tick": self.goodput_per_tick,
            "timeouts": self.timeouts,
            "shed": self.shed,
            "unavailable": self.unavailable,
            "failed": self.failed,
            "fail_closed": self.fail_closed,
            "stale_served": self.stale_served,
            "retries": self.retries,
            "retry_budget_exhausted": self.retry_budget_exhausted,
            "hedges": self.hedges,
            "hedges_won": self.hedges_won,
            "hedge_win_rate": self.hedge_win_rate,
            "machine_checks": self.machine_checks,
            "breaker_trips": self.breaker_trips,
            "autoscale_ups": self.autoscale_ups,
            "autoscale_downs": self.autoscale_downs,
            "degraded_ticks": dict(sorted(self.degraded_ticks.items())),
            "per_cohort": {
                cohort: dict(sorted(stats.items()))
                for cohort, stats in sorted(self.per_cohort.items())
            },
            "quarantine_tick": dict(sorted(self.quarantine_tick.items())),
            "first_corrupt_tick": dict(sorted(self.first_corrupt_tick.items())),
            "detection_latency_ms": self.detection_latency_ms,
        }


# ---------------------------------------------------------------------
# the campaign driver
# ---------------------------------------------------------------------

class ServeScaleCampaign:
    """One hardening arm against one multi-defect fleet, sharded."""

    def __init__(
        self,
        machines: list[Machine],
        config: ScaleConfig | None = None,
        hardening: ScaleHardening | None = None,
        chaos: ChaosSchedule | None = None,
        profile: LoadProfile | None = None,
        cohorts: tuple[UserCohort, ...] = DEFAULT_COHORTS,
        seed: int = 0,
    ):
        self.machines = machines
        self.config = config or ScaleConfig()
        self.hardening = hardening or ScaleHardening.full()
        self.chaos = chaos or ChaosSchedule()
        self.chaos.reset()
        self.rng = np.random.default_rng(seed)
        cfg = self.config

        self.events = EventLog()
        self._core_by_id: dict[str, Core] = {}
        self._machine_by_core: dict[str, str] = {}
        for machine in machines:
            for core in machine.cores:
                self._core_by_id[core.core_id] = core
                self._machine_by_core[core.core_id] = machine.machine_id

        self.analyzer = SignalAnalyzer(tracker=SuspicionTracker())
        self.policy = QuarantinePolicy(
            cfg.policy, fleet_cores=len(self._core_by_id)
        )

        self.client_core = Core(
            "client/c00", rng=np.random.default_rng(seed + 1)
        )
        self.validator = (
            ResponseValidator(self.client_core)
            if self.hardening.validate else None
        )

        self.loadgen = LoadGenerator(
            profile or LoadProfile.ramp(cfg.base_rate, cfg.peak_rate,
                                        cfg.ticks),
            cohorts=cohorts,
            seed=seed + 11,
        )

        self.scheduler = FleetScheduler(machines)
        self.cluster = self._build_cluster()
        self.autoscaler = (
            Autoscaler(self.hardening.autoscale)
            if self.hardening.autoscale else None
        )

        self.scorecard = ScaleScorecard(name=self.hardening.name)
        for cohort in cohorts:
            self.scorecard.per_cohort[cohort.name] = {
                "arrivals": 0, "ok": 0, "corrupt_escapes": 0,
            }
        self._restore_at: dict[str, int] = {}
        self._burst_multiplier = 1.0
        self._burst_until = -1
        self._events_seen = 0
        self._replica_seq = cfg.n_replicas

        self._corruption_base = {
            core_id: core.corruptions_induced
            for core_id, core in self._core_by_id.items()
        }
        self._first_corrupt_tick: dict[str, int] = {}

        self._now_ms = 0.0
        self._obs_on = obs.enabled()
        if self._obs_on:
            obs.tracer.set_clock(lambda: self._now_ms)
            self._m_requests = obs.metrics.counter(
                "serving_requests_total",
                help="terminal request outcomes, by client-visible status",
                unit="requests",
            )
            self._h_latency = obs.metrics.histogram(
                "serving_latency_ms",
                help="end-to-end latency of OK responses (simulated)",
                unit="ms",
            )
            self._m_escapes = obs.metrics.counter(
                "serving_corrupt_escapes_total",
                help="corrupt responses delivered as OK (ground truth)",
                unit="responses",
            )
            self._m_caught = obs.metrics.counter(
                "serving_corrupt_caught_total",
                help="responses rejected by the e2e validator",
                unit="responses",
            )
            self._m_quarantines = obs.metrics.counter(
                "serving_quarantines_total",
                help="cores pulled from the replica pool by the campaign "
                     "policy loop",
                unit="cores",
            )
            self._m_hedges = obs.metrics.counter(
                "serving_hedges_total",
                help="tail-latency hedges issued, by whether the hedge won",
                unit="hedges",
            )
            self._m_retries = obs.metrics.counter(
                "serving_retries_total",
                help="retry attempts issued after a failed first attempt",
                unit="retries",
            )
            self._m_budget = obs.metrics.counter(
                "serving_retry_budget_exhausted_total",
                help="retries refused because the shard's token bucket "
                     "was dry",
                unit="refusals",
            )
            self._m_stale = obs.metrics.counter(
                "serving_stale_served_total",
                help="responses served from the degradation stale cache",
                unit="responses",
            )
            self._m_degraded = obs.metrics.counter(
                "serving_shard_degraded_total",
                help="shard degradation-tier escalations, by tier entered",
                unit="transitions",
            )
            self._m_autoscale = obs.metrics.counter(
                "serving_autoscale_actions_total",
                help="autoscaler replica additions and drains",
                unit="actions",
            )

    # -- placement -----------------------------------------------------

    def _make_replica(self, core: Core, replica_id: str) -> ServerReplica:
        cfg = self.config
        return ServerReplica(
            replica_id,
            core,
            base_latency_ms=cfg.base_latency_ms,
            straggler_prob=cfg.straggler_prob,
            straggler_factor=cfg.straggler_factor,
        )

    def _build_cluster(self) -> ShardedCluster:
        cfg = self.config
        hardening = self.hardening
        tasks = [
            Task(f"shard/{g}/r{i}", op_mix={Op.COPY: 1.0})
            for g in range(cfg.n_shards)
            for i in range(cfg.replicas_per_shard)
        ]
        placements, _ = self.scheduler.schedule(tasks)
        if len(placements) < len(tasks):
            raise ValueError("fleet too small for the requested cluster")
        router_cls = ROUTER_POLICIES[hardening.router_policy]
        shards = []
        for g in range(cfg.n_shards):
            chunk = placements[
                g * cfg.replicas_per_shard:(g + 1) * cfg.replicas_per_shard
            ]
            replicas = [
                self._make_replica(
                    self._core_by_id[p.core_id], f"shard/{g}/r{i}"
                )
                for i, p in enumerate(chunk)
            ]
            shards.append(
                Shard(
                    f"shard/{g}",
                    router_cls(replicas),
                    hardening.breaker,
                    event_log=self.events,
                    machine_of=self._machine_by_core,
                    retry_budget=hardening.retry_budget,
                )
            )
        return ShardedCluster(shards)

    def _spare_core(self) -> Core | None:
        """A scheduled spare core, or None when the fleet is drained."""
        occupied = {r.core_id for r in self.cluster.replicas()}
        quarantined = set(self.policy.quarantined) | set(
            self.scorecard.quarantine_tick
        )
        placements, _ = self.scheduler.schedule(
            [Task("spare", op_mix={Op.COPY: 1.0})],
            exclude_core_ids=occupied | quarantined,
        )
        if not placements:
            return None
        return self._core_by_id[placements[0].core_id]

    def _replace_replica(self, shard: Shard, replica: ServerReplica) -> None:
        """Re-place one replica off its (now quarantined) core."""
        core = self._spare_core()
        if core is None:
            return  # degraded: serve with fewer replicas
        self._replica_seq += 1
        shard.router.replace(
            replica,
            self._make_replica(core, f"{shard.shard_id}/r{self._replica_seq}"),
        )

    # -- event plumbing ------------------------------------------------

    def _emit(
        self, now_ms: float, core_id: str, kind: EventKind, detail: str
    ) -> None:
        self.events.append(
            CeeEvent(
                time_days=now_ms / MS_PER_DAY,
                machine_id=self._machine_by_core.get(
                    core_id, core_id.rsplit("/", 1)[0]
                ),
                core_id=core_id,
                kind=kind,
                reporter=Reporter.AUTOMATED,
                application="serving",
                detail=detail,
            )
        )

    # -- one request ---------------------------------------------------

    def _attempt_once(
        self,
        shard: Shard,
        replica: ServerReplica,
        request: Request,
        expected_checksum: int | None,
        now_ms: float,
        hedged: bool = False,
    ) -> tuple[Attempt, bytes | None]:
        cfg = self.config
        core_id = replica.core_id
        try:
            payload, latency = replica.serve(request, self.rng)
        except MachineCheckError:
            self.scorecard.machine_checks += 1
            self._emit(now_ms, core_id, EventKind.MACHINE_CHECK, "mce in RPC")
            if shard.breakers:
                shard.breakers.record_failure(core_id, now_ms, "machine check")
            return (
                Attempt(core_id, AttemptOutcome.MACHINE_CHECK,
                        cfg.mce_penalty_ms, hedged),
                None,
            )
        except CoreOfflineError:
            return (
                Attempt(core_id, AttemptOutcome.CORE_OFFLINE,
                        cfg.offline_penalty_ms, hedged),
                None,
            )
        if self.validator is not None and expected_checksum is not None:
            if not self.validator.validate(expected_checksum, payload):
                self.scorecard.corrupt_caught += 1
                if self._obs_on:
                    self._m_caught.inc()
                self._emit(
                    now_ms, core_id, EventKind.APP_REPORT,
                    "e2e checksum mismatch",
                )
                if shard.breakers:
                    shard.breakers.record_failure(
                        core_id, now_ms, "checksum mismatch"
                    )
                return (
                    Attempt(core_id, AttemptOutcome.CORRUPT_CAUGHT,
                            latency, hedged),
                    None,
                )
        if shard.breakers:
            shard.breakers.record_success(core_id, now_ms)
        return Attempt(core_id, AttemptOutcome.OK, latency, hedged), payload

    def _dispatch(self, shard: Shard, request: Request, now_ms: float,
                  queue_wait_ms: float) -> Response:
        hardening = self.hardening
        card = self.scorecard
        expected = (
            self.validator.checksum(request.payload)
            if self.validator is not None else None
        )
        max_attempts = hardening.retry.max_attempts if hardening.retry else 1
        attempts: list[Attempt] = []
        tried: set[str] = set()
        total_latency = queue_wait_ms

        for attempt_index in range(max_attempts):
            if attempt_index > 0:
                # Deadline propagation: a retry that cannot possibly
                # finish inside the budget is not launched at all.
                if total_latency >= request.deadline_ms:
                    break
                if shard.budget is not None and not shard.budget.try_spend():
                    card.retry_budget_exhausted += 1
                    if self._obs_on:
                        self._m_budget.inc()
                    self._emit(
                        now_ms, shard.shard_id,
                        EventKind.RETRY_BUDGET_EXHAUSTED,
                        f"request {request.request_id}: token bucket dry",
                    )
                    break
                card.retries += 1
                if self._obs_on:
                    self._m_retries.inc()
                total_latency += hardening.retry.backoff_ms(
                    attempt_index - 1, self.rng
                )
            exclude = set(tried) if (
                hardening.retry and hardening.retry.core_diversity
            ) else set()
            if shard.breakers:
                exclude |= shard.breakers.open_core_ids(now_ms)
            replica = shard.router.pick(exclude, route_key=request.route_key)
            if replica is None:
                break
            attempt, payload = self._attempt_once(
                shard, replica, request, expected, now_ms
            )
            attempts.append(attempt)
            tried.add(replica.core_id)
            effective = attempt.latency_ms
            winner = replica.core_id

            # Tail hedging: duplicate a slow-looking primary elsewhere —
            # but only when the deadline can still pay for the hedge.
            if (
                hardening.hedge
                and attempt.outcome is AttemptOutcome.OK
                and attempt.latency_ms > hardening.hedge.hedge_delay_ms
                and total_latency + hardening.hedge.hedge_delay_ms
                    < request.deadline_ms
            ):
                hedge_exclude = exclude | {replica.core_id}
                hedge_replica = shard.router.pick(
                    hedge_exclude, route_key=request.route_key
                )
                if hedge_replica is not None:
                    card.hedges += 1
                    self._emit(
                        now_ms, replica.core_id, EventKind.HEDGE_FIRED,
                        f"primary looked slow ({attempt.latency_ms:.1f}ms)",
                    )
                    h_attempt, h_payload = self._attempt_once(
                        shard, hedge_replica, request, expected, now_ms,
                        hedged=True,
                    )
                    attempts.append(h_attempt)
                    tried.add(hedge_replica.core_id)
                    won = False
                    if h_attempt.outcome is AttemptOutcome.OK:
                        h_effective = (
                            hardening.hedge.hedge_delay_ms
                            + h_attempt.latency_ms
                        )
                        if h_effective < effective:
                            effective = h_effective
                            payload = h_payload
                            winner = hedge_replica.core_id
                            won = True
                    if won:
                        card.hedges_won += 1
                    if self._obs_on:
                        self._m_hedges.inc(
                            outcome="won" if won else "lost"
                        )

            total_latency += effective
            if attempt.outcome is AttemptOutcome.OK:
                status = (
                    ResponseStatus.OK
                    if total_latency <= request.deadline_ms
                    else ResponseStatus.TIMEOUT
                )
                return Response(
                    request.request_id, status, payload, winner,
                    total_latency, attempts,
                    validated=self.validator is not None,
                )

        status = (
            ResponseStatus.UNAVAILABLE if not attempts
            else ResponseStatus.FAILED
        )
        return Response(
            request.request_id, status, None, None, total_latency, attempts
        )

    def _serve_one(self, shard: Shard, request: Request, tick: int,
                   now_ms: float) -> Response:
        cfg = self.config
        card = self.scorecard
        queue_wait = (tick - request.arrival_tick) * cfg.tick_ms

        if shard.tier is DegradationTier.SERVE_STALE:
            cached = shard.stale_cache.get(request.route_key)
            if cached is not None:
                card.stale_served += 1
                if self._obs_on:
                    self._m_stale.inc()
                return Response(
                    request.request_id, ResponseStatus.OK, cached, None,
                    queue_wait + cfg.stale_latency_ms, [], stale=True,
                )
            # cache miss: fall through to a (risky) live attempt

        response = self._dispatch(shard, request, now_ms, queue_wait)
        if (
            self.hardening.degradation is not None
            and response.status is ResponseStatus.OK
            and not response.stale
            and response.payload is not None
        ):
            shard.stale_cache[request.route_key] = response.payload
        return response

    # -- chaos ---------------------------------------------------------

    def _apply_chaos(self, tick: int) -> None:
        for action in self.chaos.due(tick):
            if action.kind is ChaosKind.ACTIVATE_DEFECT:
                core = self._core_by_id.get(action.core_id)
                if core is not None:
                    core.advance_age(action.magnitude)
            elif action.kind is ChaosKind.CRASH_CORE:
                core = self._core_by_id.get(action.core_id)
                if core is not None:
                    core.set_online(False)
                    self._restore_at[action.core_id] = (
                        tick + max(1, action.duration_ticks)
                    )
            elif action.kind is ChaosKind.MACHINE_CHECK_BURST:
                for replica in self.cluster.replicas():
                    if replica.core_id == action.core_id:
                        replica.forced_mce_remaining += int(action.magnitude)
            elif action.kind is ChaosKind.TRAFFIC_BURST:
                self._burst_multiplier = action.magnitude
                self._burst_until = tick + max(1, action.duration_ticks)

        for core_id, restore_tick in list(self._restore_at.items()):
            if tick >= restore_tick:
                del self._restore_at[core_id]
                if core_id not in self.scorecard.quarantine_tick:
                    self._core_by_id[core_id].set_online(True)
        if tick >= self._burst_until:
            self._burst_multiplier = 1.0

    # -- degradation ---------------------------------------------------

    def _update_tiers(self, tick: int, now_ms: float) -> None:
        policy = self.hardening.degradation
        card = self.scorecard
        for shard in self.cluster.shards:
            if policy is None:
                tier = DegradationTier.NORMAL
            else:
                tier = policy.tier_for(self.cluster.distress(shard, now_ms))
            if TIER_ORDER[tier] > TIER_ORDER[shard.tier]:
                # escalation is the alarm-worthy transition
                self._emit(
                    now_ms, shard.shard_id, EventKind.SHARD_DEGRADED,
                    f"{shard.tier.value} -> {tier.value}",
                )
                if self._obs_on:
                    self._m_degraded.inc(tier=tier.value)
                    with obs.tracer.span(
                        "serving.degrade", shard=shard.shard_id,
                        tier=tier.value, tick=tick,
                    ):
                        pass
            shard.tier = tier
            if tier is not DegradationTier.NORMAL:
                card.degraded_ticks[tier.value] = (
                    card.degraded_ticks.get(tier.value, 0) + 1
                )

    # -- autoscaling ---------------------------------------------------

    def _autoscale(self, tick: int, now_ms: float) -> None:
        if self.autoscaler is None:
            return
        card = self.scorecard
        for shard in self.cluster.shards:
            action = self.autoscaler.decide(shard, tick)
            if action == 0:
                continue
            if action > 0:
                core = self._spare_core()
                if core is None:
                    continue
                self._replica_seq += 1
                shard.router.add(
                    self._make_replica(
                        core, f"{shard.shard_id}/r{self._replica_seq}"
                    )
                )
                card.autoscale_ups += 1
                direction = "up"
            else:
                live = shard.router.live_replicas()
                if not live:
                    continue
                # drain the most recently added live replica (LIFO keeps
                # the original placement as the stable core of the shard)
                shard.router.remove(live[-1])
                card.autoscale_downs += 1
                direction = "down"
            self._emit(
                now_ms, shard.shard_id, EventKind.AUTOSCALE_ACTION,
                f"scale {direction} (util {shard.utilization:.2f})",
            )
            if self._obs_on:
                self._m_autoscale.inc(direction=direction)
                with obs.tracer.span(
                    "serving.autoscale", shard=shard.shard_id,
                    direction=direction, tick=tick,
                ):
                    pass

    # -- detection loop ------------------------------------------------

    def _run_policy(self, tick: int, now_ms: float) -> None:
        new_events = self.events.tail(self._events_seen)
        self._events_seen = len(self.events)
        self.analyzer.ingest_all(new_events)

        now_days = now_ms / MS_PER_DAY
        for core_id, score in self.analyzer.suspects(
            now_days, threshold=self.config.policy.retest_threshold
        ):
            core = self._core_by_id.get(core_id)
            if core is None or core_id in self.scorecard.quarantine_tick:
                continue
            decision = self.policy.decide(core_id, score, confessed=False)
            if decision.action in (
                Action.QUARANTINE_CORE, Action.QUARANTINE_MACHINE
            ):
                self._quarantine(core_id, tick)
                if decision.action is Action.QUARANTINE_MACHINE:
                    machine_id = self._machine_by_core[core_id]
                    for sibling_id, owner in self._machine_by_core.items():
                        if owner == machine_id:
                            self._quarantine(sibling_id, tick)

        for shard in self.cluster.shards:
            for replica in list(shard.router.replicas):
                if replica.core_id in self.scorecard.quarantine_tick:
                    self._replace_replica(shard, replica)

    def _quarantine(self, core_id: str, tick: int) -> None:
        if core_id in self.scorecard.quarantine_tick:
            return
        self._core_by_id[core_id].set_online(False)
        self.scorecard.quarantine_tick[core_id] = tick
        self._restore_at.pop(core_id, None)
        if self._obs_on:
            self._m_quarantines.inc()
            with obs.tracer.span(
                "serving.quarantine", core_id=core_id, tick=tick
            ):
                pass

    # -- the main loop -------------------------------------------------

    def run(self) -> ScaleScorecard:
        cfg = self.config
        card = self.scorecard
        obs_on = self._obs_on
        for tick in range(cfg.ticks):
            now_ms = tick * cfg.tick_ms
            self._now_ms = now_ms
            self._apply_chaos(tick)
            self._update_tiers(tick, now_ms)

            arrivals = self.loadgen.arrivals(tick, self._burst_multiplier)
            card.total_arrivals += len(arrivals)
            per_shard: dict[str, list[Request]] = {
                shard.shard_id: [] for shard in self.cluster.shards
            }
            for request in arrivals:
                card.per_cohort[request.cohort]["arrivals"] += 1
                shard = self.cluster.shard_for(request.route_key)
                per_shard[shard.shard_id].append(request)

            for shard in self.cluster.shards:
                mine = per_shard[shard.shard_id]
                capacity = (
                    len(shard.router.live_replicas())
                    * cfg.per_replica_per_tick
                )

                if shard.tier is DegradationTier.FAIL_CLOSED:
                    # fail fast and clearly rather than risk wrong bytes
                    for request in mine:
                        card.fail_closed += 1
                        response = Response(
                            request.request_id, ResponseStatus.FAILED, None,
                            None, 0.0, [],
                        )
                        self._score(request, response)
                    admitted = 0
                else:
                    admitted = self._admit(shard, mine, capacity)

                if shard.budget is not None and admitted:
                    shard.budget.deposit(admitted)

                batch = shard.queue[:capacity]
                shard.queue = shard.queue[capacity:]
                for request in batch:
                    if obs_on:
                        with obs.tracer.span(
                            "serving.scale_request",
                            request_id=request.request_id,
                            shard=shard.shard_id,
                        ) as sp:
                            response = self._serve_one(
                                shard, request, tick, now_ms
                            )
                            sp.attrs["status"] = response.status.value
                            sp.attrs["stale"] = response.stale
                    else:
                        response = self._serve_one(shard, request, tick, now_ms)
                    self._score(request, response)

                demand = admitted + len(shard.queue)
                shard.note_utilization(demand, max(capacity, 1))

            self._note_corruptions(tick)
            self._run_policy(tick, now_ms)
            self._autoscale(tick, now_ms)

        for shard in self.cluster.shards:
            card.unavailable += len(shard.queue)
            shard.queue.clear()
        card.ticks = cfg.ticks
        card.breaker_trips = sum(
            shard.breakers.total_trips
            for shard in self.cluster.shards if shard.breakers is not None
        )
        if self.autoscaler is not None:
            # cross-check the campaign's own counters against the scaler
            card.autoscale_ups = self.autoscaler.scale_ups
            card.autoscale_downs = self.autoscaler.scale_downs
        card.first_corrupt_tick = dict(sorted(self._first_corrupt_tick.items()))
        card.detection_latency_ms = detection_latency_summary(
            self._first_corrupt_tick, card.quarantine_tick,
            list(self.events), cfg.tick_ms,
        )
        return card

    def _admit(self, shard: Shard, arrivals: list[Request],
               capacity: int) -> int:
        """Admission control for one shard's arrivals; returns admitted."""
        card = self.scorecard
        hardening = self.hardening
        degradation = hardening.degradation
        if shard.tier is not DegradationTier.NORMAL and degradation is not None:
            factor = degradation.shed_queue_factor
        elif hardening.shed is not None:
            factor = hardening.shed.max_queue_factor
        else:
            shard.queue.extend(arrivals)
            return len(arrivals)
        limit = max(capacity, int(factor * capacity))
        room = max(0, limit - len(shard.queue))
        admitted = arrivals[:room]
        card.shed += len(arrivals) - len(admitted)
        shard.queue.extend(admitted)
        return len(admitted)

    def _note_corruptions(self, tick: int) -> None:
        """Ground-truth bookkeeping (unconditional: no REPRO_OBS skew)."""
        base = self._corruption_base
        for core_id, core in self._core_by_id.items():
            induced = core.corruptions_induced
            if induced != base[core_id]:
                base[core_id] = induced
                if core_id not in self._first_corrupt_tick:
                    self._first_corrupt_tick[core_id] = tick

    def _score(self, request: Request, response: Response) -> None:
        card = self.scorecard
        if self._obs_on:
            self._m_requests.inc(status=response.status.value)
        if response.stale:
            # degraded-but-honest: delivered, labelled stale, never
            # counted as fresh OK nor eligible as a silent corruption
            card.latencies_ms.append(response.latency_ms)
            if self._obs_on:
                self._h_latency.observe(response.latency_ms)
            return
        if response.status is ResponseStatus.OK:
            card.ok += 1
            card.per_cohort[request.cohort]["ok"] += 1
            card.latencies_ms.append(response.latency_ms)
            if self._obs_on:
                self._h_latency.observe(response.latency_ms)
            if response.payload != request.payload:
                card.corrupt_escapes += 1
                card.per_cohort[request.cohort]["corrupt_escapes"] += 1
                if self._obs_on:
                    self._m_escapes.inc()
        elif response.status is ResponseStatus.TIMEOUT:
            card.timeouts += 1
        elif response.status is ResponseStatus.UNAVAILABLE:
            card.unavailable += 1
        elif response.status is ResponseStatus.FAILED:
            card.failed += 1


# ---------------------------------------------------------------------
# fleet construction for serve-at-scale experiments
# ---------------------------------------------------------------------

def build_scale_fleet(
    n_machines: int = 4,
    cores_per_machine: int = 4,
    prevalence: float = 0.1,
    base_rate: float = 0.05,
    onset_days: float = 300.0,
    seed: int = 7,
) -> tuple[list[Machine], list[str]]:
    """A fleet where a ``prevalence`` fraction of cores is mercurial.

    The bad-core count is fixed at ``round(prevalence × n_cores)``
    (minimum 1) and the cores are chosen by a seed-stable permutation,
    so raising the prevalence strictly *grows* the bad-core set — the
    E17 grid compares prevalence levels against nested fleets rather
    than re-rolled ones.  Defects are dormant stuck-bits on the
    load/store unit (``onset_days`` in the future); the E17 chaos
    script ages the bad cores past onset mid-campaign, so the cluster
    starts clean and rots while under load.  Returns
    (machines, bad core ids).
    """
    product = CpuProduct(
        vendor="sim", sku=f"scale-{cores_per_machine}c",
        cores_per_machine=cores_per_machine, core_prevalence=prevalence,
    )
    root = np.random.default_rng(seed)
    n_cores = n_machines * cores_per_machine
    n_bad = max(1, int(round(prevalence * n_cores)))
    bad_slots = {int(i) for i in root.permutation(n_cores)[:n_bad]}
    machines: list[Machine] = []
    bad_core_ids: list[str] = []
    for m in range(n_machines):
        machine_id = f"m{m:05d}"
        cores = []
        for c in range(cores_per_machine):
            core_id = f"{machine_id}/c{c:02d}"
            defects = ()
            if m * cores_per_machine + c in bad_slots:
                bad_core_ids.append(core_id)
                defects = (
                    StuckBitDefect(
                        f"defect/{core_id}",
                        bit=17,
                        base_rate=base_rate,
                        unit=FunctionalUnit.LOAD_STORE,
                        aging=AgingProfile(onset_days=onset_days),
                    ),
                )
            cores.append(
                Core(
                    core_id,
                    defects=defects,
                    rng=np.random.default_rng(root.integers(2**63)),
                )
            )
        machines.append(
            Machine(machine_id=machine_id, product=product, chip=Chip(cores))
        )
    return machines, bad_core_ids


__all__ = [
    "ScaleConfig",
    "ScaleHardening",
    "ScaleScorecard",
    "ServeScaleCampaign",
    "build_scale_fleet",
]
