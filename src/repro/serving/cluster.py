"""The sharded serving cluster: routing, budgets, degradation, scaling.

:mod:`repro.serving.service` models one replica set behind one
round-robin balancer — enough for E15's four replicas, nowhere near a
planet-scale service.  This module is the serve-at-scale layer E17
runs on:

- **Pluggable routers** replacing the bare
  :class:`~repro.serving.service.RoundRobinRouter`:
  :class:`ConsistentHashRouter` (stable user→replica affinity, minimal
  remap when replicas join or leave) and :class:`LeastLoadedRouter`
  (hot-spot absorption).  All routers share one ``pick`` contract
  including the exclusion set the retry/breaker machinery relies on.
- **Per-shard state** — each :class:`Shard` owns its replica router,
  its own :class:`~repro.serving.robustness.BreakerBoard`, a request
  queue, a stale-response cache, and a degradation tier.
- **Retry budgets** — :class:`RetryBudget` is the token bucket that
  keeps retries from amplifying an incident into a retry storm: tokens
  accrue as a fraction of admitted requests and every retry spends
  one; an empty bucket refuses the retry and emits
  ``RETRY_BUDGET_EXHAUSTED``.
- **Graceful degradation** — :class:`DegradationPolicy` maps the
  cluster-wide fraction of open breakers (plus shard capacity loss)
  onto tiers: ``NORMAL → SHED → SERVE_STALE → FAIL_CLOSED``.  Shedding
  tightens admission; serve-stale answers from the last validated
  response for the user key rather than risking a suspect core;
  fail-closed refuses outright — wrong-and-confident is the one
  §1-class outcome the ladder never permits.
- **Autoscaling** — :class:`Autoscaler` watches per-shard utilization
  (EWMA-smoothed) and asks the campaign to add or drain replicas off
  the :class:`~repro.fleet.scheduler.FleetScheduler`, with a cooldown
  so breaker storms don't make it flap.

Everything here is deterministic: router hashes use explicit CRC/
splitmix functions (never Python's salted ``hash``), and no component
reads a clock or an unseeded RNG — the cluster is a pure function of
the request stream it is fed.
"""

from __future__ import annotations

import bisect
import dataclasses
import enum
import zlib

from repro.serving.robustness import BreakerBoard, BreakerConfig
from repro.serving.service import ServerReplica


# ---------------------------------------------------------------------
# deterministic hashing (Python's hash() is salted per process)
# ---------------------------------------------------------------------

def stable_key_hash(key: int) -> int:
    """64-bit splitmix finalizer: deterministic across processes."""
    z = (key + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def stable_str_hash(text: str) -> int:
    """CRC32 of the UTF-8 bytes: deterministic across processes."""
    return zlib.crc32(text.encode("utf-8"))


# ---------------------------------------------------------------------
# pluggable routers
# ---------------------------------------------------------------------

class ReplicaRouter:
    """The routing contract every policy implements.

    ``pick`` honours an exclusion set (cores already tried — the retry
    policy's core-diversity rule — or cores whose breaker is open) and
    an optional ``route_key`` for affinity-aware policies.
    """

    def __init__(self, replicas: list[ServerReplica]):
        self.replicas = list(replicas)

    def live_replicas(self) -> list[ServerReplica]:
        return [r for r in self.replicas if r.available]

    def pick(
        self,
        exclude_core_ids: set[str] | None = None,
        route_key: int | None = None,
    ) -> ServerReplica | None:
        raise NotImplementedError

    def add(self, replica: ServerReplica) -> None:
        self.replicas.append(replica)

    def remove(self, replica: ServerReplica) -> None:
        self.replicas.remove(replica)

    def replace(self, old: ServerReplica, new: ServerReplica) -> None:
        self.replicas[self.replicas.index(old)] = new


class ShardRoundRobinRouter(ReplicaRouter):
    """The E15 policy behind the shared contract (the control arm)."""

    def __init__(self, replicas: list[ServerReplica]):
        super().__init__(replicas)
        self._cursor = 0

    def pick(
        self,
        exclude_core_ids: set[str] | None = None,
        route_key: int | None = None,
    ) -> ServerReplica | None:
        exclude = exclude_core_ids or set()
        n = len(self.replicas)
        for offset in range(n):
            replica = self.replicas[(self._cursor + offset) % n]
            if not replica.available or replica.core_id in exclude:
                continue
            self._cursor = (self._cursor + offset + 1) % n
            replica.assigned += 1
            return replica
        return None


class ConsistentHashRouter(ReplicaRouter):
    """Hash-ring routing: stable affinity, minimal remap on change.

    Each replica owns ``vnodes`` points on a 32-bit ring (hashed from
    its replica id, so placement survives process boundaries); a
    request walks clockwise from ``stable_key_hash(route_key)`` to the
    first distinct live replica not in the exclusion set.  Removing a
    replica only remaps the keys it owned — retries and stale caches
    keep their affinity through churn.
    """

    def __init__(self, replicas: list[ServerReplica], vnodes: int = 16):
        self.vnodes = vnodes
        self._ring: list[tuple[int, ServerReplica]] = []
        super().__init__(replicas)
        self._rebuild()

    def _rebuild(self) -> None:
        ring = []
        for replica in self.replicas:
            for vnode in range(self.vnodes):
                point = stable_str_hash(f"{replica.replica_id}#{vnode}")
                ring.append((point, replica))
        # replica_id tie-break keeps the ring order deterministic even
        # on the (rare) CRC collision
        ring.sort(key=lambda entry: (entry[0], entry[1].replica_id))
        self._ring = ring

    def add(self, replica: ServerReplica) -> None:
        super().add(replica)
        self._rebuild()

    def remove(self, replica: ServerReplica) -> None:
        super().remove(replica)
        self._rebuild()

    def replace(self, old: ServerReplica, new: ServerReplica) -> None:
        super().replace(old, new)
        self._rebuild()

    def pick(
        self,
        exclude_core_ids: set[str] | None = None,
        route_key: int | None = None,
    ) -> ServerReplica | None:
        if not self._ring:
            return None
        exclude = exclude_core_ids or set()
        point = stable_key_hash(route_key or 0) & 0xFFFFFFFF
        start = bisect.bisect_left(self._ring, (point, None)) % len(self._ring)
        seen: set[str] = set()
        for offset in range(len(self._ring)):
            _, replica = self._ring[(start + offset) % len(self._ring)]
            if replica.replica_id in seen:
                continue
            seen.add(replica.replica_id)
            if replica.available and replica.core_id not in exclude:
                replica.assigned += 1
                return replica
        return None


class LeastLoadedRouter(ReplicaRouter):
    """Power-of-all-choices: route to the least-assigned live replica.

    Load is the monotone ``assigned`` counter on each replica (picks,
    not completions — the simulation dispatches synchronously), with
    the replica-list position as the deterministic tie-break.
    """

    def pick(
        self,
        exclude_core_ids: set[str] | None = None,
        route_key: int | None = None,
    ) -> ServerReplica | None:
        exclude = exclude_core_ids or set()
        best: ServerReplica | None = None
        for replica in self.replicas:
            if not replica.available or replica.core_id in exclude:
                continue
            if best is None or replica.assigned < best.assigned:
                best = replica
        if best is not None:
            best.assigned += 1
        return best


#: router policy name → constructor (the E17 config knob)
ROUTER_POLICIES: dict[str, type[ReplicaRouter]] = {
    "round-robin": ShardRoundRobinRouter,
    "consistent-hash": ConsistentHashRouter,
    "least-loaded": LeastLoadedRouter,
}


# ---------------------------------------------------------------------
# retry budgets
# ---------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class RetryBudgetConfig:
    """Token bucket sizing (per shard).

    Attributes:
        ratio: tokens earned per admitted request (0.1 = retries may
            amplify load by at most ~10% in steady state).
        burst: bucket capacity (and the initial balance), so a short
            incident can still retry aggressively.
    """

    ratio: float = 0.1
    burst: float = 10.0

    def __post_init__(self) -> None:
        if self.ratio < 0:
            raise ValueError("ratio must be non-negative")
        if self.burst <= 0:
            raise ValueError("burst must be positive")


class RetryBudget:
    """The anti-retry-storm token bucket."""

    def __init__(self, config: RetryBudgetConfig):
        self.config = config
        self.tokens = config.burst
        self.spent = 0
        self.exhausted = 0

    def deposit(self, admitted: int = 1) -> None:
        """Earn tokens from admitted first attempts."""
        self.tokens = min(
            self.config.burst, self.tokens + self.config.ratio * admitted
        )

    def try_spend(self) -> bool:
        """Spend one token for a retry; False when the bucket is dry."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.exhausted += 1
        return False


# ---------------------------------------------------------------------
# graceful degradation tiers
# ---------------------------------------------------------------------

class DegradationTier(enum.Enum):
    """shed → serve-stale → fail-closed, in escalating order."""

    NORMAL = "normal"
    SHED = "shed"
    SERVE_STALE = "serve_stale"
    FAIL_CLOSED = "fail_closed"


#: escalation order for comparisons (enum members are not ordered)
TIER_ORDER: dict[DegradationTier, int] = {
    DegradationTier.NORMAL: 0,
    DegradationTier.SHED: 1,
    DegradationTier.SERVE_STALE: 2,
    DegradationTier.FAIL_CLOSED: 3,
}


@dataclasses.dataclass(frozen=True)
class DegradationPolicy:
    """Maps cluster distress (fraction of breakers open, capacity lost)
    onto a degradation tier.  Thresholds are inclusive lower bounds."""

    shed_at: float = 0.25
    serve_stale_at: float = 0.5
    fail_closed_at: float = 0.9
    #: admission queue factor while in SHED or worse (vs the shedder's
    #: configured factor in NORMAL)
    shed_queue_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.shed_at <= self.serve_stale_at <= self.fail_closed_at:
            raise ValueError(
                "thresholds must satisfy 0 < shed <= stale <= fail"
            )

    def tier_for(self, distress: float) -> DegradationTier:
        if distress >= self.fail_closed_at:
            return DegradationTier.FAIL_CLOSED
        if distress >= self.serve_stale_at:
            return DegradationTier.SERVE_STALE
        if distress >= self.shed_at:
            return DegradationTier.SHED
        return DegradationTier.NORMAL


# ---------------------------------------------------------------------
# autoscaling
# ---------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class AutoscalerConfig:
    """Utilization-band autoscaling with cooldown.

    Utilization is admitted work over live capacity, EWMA-smoothed
    with ``smoothing``; a shard above ``scale_up_at`` asks for one more
    replica, below ``scale_down_at`` drains one, never leaving the
    ``[min_replicas, max_replicas]`` band, and never acting twice
    within ``cooldown_ticks``.
    """

    scale_up_at: float = 0.85
    scale_down_at: float = 0.3
    min_replicas: int = 2
    max_replicas: int = 6
    cooldown_ticks: int = 25
    smoothing: float = 0.2

    def __post_init__(self) -> None:
        if not 0 <= self.scale_down_at < self.scale_up_at:
            raise ValueError("need 0 <= scale_down_at < scale_up_at")
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if not 0 < self.smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")


class Autoscaler:
    """Per-shard scale decisions; the campaign executes them."""

    def __init__(self, config: AutoscalerConfig):
        self.config = config
        self._last_action_tick: dict[str, int] = {}
        self.scale_ups = 0
        self.scale_downs = 0

    def decide(self, shard: "Shard", tick: int) -> int:
        """+1 (add a replica), -1 (drain one), or 0 (hold)."""
        cfg = self.config
        last = self._last_action_tick.get(shard.shard_id)
        if last is not None and tick - last < cfg.cooldown_ticks:
            return 0
        n_live = len(shard.router.live_replicas())
        if shard.utilization >= cfg.scale_up_at and n_live < cfg.max_replicas:
            self._last_action_tick[shard.shard_id] = tick
            self.scale_ups += 1
            return 1
        if shard.utilization <= cfg.scale_down_at and n_live > cfg.min_replicas:
            self._last_action_tick[shard.shard_id] = tick
            self.scale_downs += 1
            return -1
        return 0


# ---------------------------------------------------------------------
# shards and the cluster
# ---------------------------------------------------------------------

class Shard:
    """One shard: replicas, breaker board, queue, stale cache, tier."""

    def __init__(
        self,
        shard_id: str,
        router: ReplicaRouter,
        breaker_config: BreakerConfig | None,
        event_log=None,
        machine_of: dict[str, str] | None = None,
        retry_budget: RetryBudgetConfig | None = None,
        smoothing: float = 0.2,
    ):
        self.shard_id = shard_id
        self.router = router
        self.breakers = (
            BreakerBoard(breaker_config, event_log=event_log,
                         machine_of=machine_of)
            if breaker_config is not None else None
        )
        self.budget = (
            RetryBudget(retry_budget) if retry_budget is not None else None
        )
        self.queue: list = []
        #: route_key → last validated OK payload (the serve-stale source)
        self.stale_cache: dict[int, bytes] = {}
        self.tier = DegradationTier.NORMAL
        self.utilization = 0.0
        self._smoothing = smoothing
        #: replicas the baseline placement put here (autoscale floor ref)
        self.configured_replicas = len(router.replicas)

    def note_utilization(self, admitted: int, capacity: int) -> None:
        """EWMA-update the utilization estimate for the autoscaler."""
        instant = admitted / capacity if capacity > 0 else 1.0
        alpha = self._smoothing
        self.utilization = (1 - alpha) * self.utilization + alpha * instant

    def open_breaker_fraction(self, now_ms: float) -> float:
        """Fraction of this shard's replica cores behind open breakers."""
        if self.breakers is None or not self.router.replicas:
            return 0.0
        open_ids = self.breakers.open_core_ids(now_ms)
        blocked = sum(
            1 for r in self.router.replicas if r.core_id in open_ids
        )
        return blocked / len(self.router.replicas)

    def capacity_loss_fraction(self) -> float:
        """Fraction of configured replica slots currently dark."""
        if self.configured_replicas == 0:
            return 0.0
        live = len(self.router.live_replicas())
        return max(0.0, 1.0 - live / self.configured_replicas)


class ShardedCluster:
    """All shards of one service, plus cluster-wide distress tracking."""

    def __init__(self, shards: list[Shard]):
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        self.shards = list(shards)

    def shard_for(self, route_key: int) -> Shard:
        """Deterministic key → shard assignment (stable across runs)."""
        return self.shards[stable_key_hash(route_key) % len(self.shards)]

    def replicas(self) -> list[ServerReplica]:
        return [r for shard in self.shards for r in shard.router.replicas]

    def live_capacity(self, per_replica_per_tick: int) -> int:
        return sum(
            len(shard.router.live_replicas()) * per_replica_per_tick
            for shard in self.shards
        )

    def open_breaker_fraction(self, now_ms: float) -> float:
        """Cluster-wide fraction of replica cores behind open breakers."""
        total = 0
        blocked = 0
        for shard in self.shards:
            if shard.breakers is None:
                total += len(shard.router.replicas)
                continue
            open_ids = shard.breakers.open_core_ids(now_ms)
            for replica in shard.router.replicas:
                total += 1
                if replica.core_id in open_ids:
                    blocked += 1
        return blocked / total if total else 0.0

    def distress(self, shard: Shard, now_ms: float) -> float:
        """What the degradation policy grades: the worst of the
        cluster-wide breaker picture and this shard's own state."""
        return max(
            self.open_breaker_fraction(now_ms),
            shard.open_breaker_fraction(now_ms),
            shard.capacity_loss_fraction(),
        )


__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ConsistentHashRouter",
    "DegradationPolicy",
    "DegradationTier",
    "LeastLoadedRouter",
    "ROUTER_POLICIES",
    "ReplicaRouter",
    "RetryBudget",
    "RetryBudgetConfig",
    "Shard",
    "ShardRoundRobinRouter",
    "ShardedCluster",
    "TIER_ORDER",
    "stable_key_hash",
    "stable_str_hash",
]
