"""The hardening toolkit around the serving layer.

Each mechanism is one §7-style defence, composable via
:class:`HardeningConfig`:

- :class:`ResponseValidator` — the end-to-end argument applied to RPC:
  the *client* computes a checksum on its own (trusted) core before the
  request crosses a possibly-mercurial server core, and re-verifies the
  response against it — the same mechanism as
  :class:`repro.mitigation.e2e.ChecksummedStore`, reusing the same
  :func:`~repro.workloads.hashing.crc64` primitive.
- :class:`RetryPolicy` — exponential backoff with full jitter, with a
  *core-diversity* rule: a retry is never sent to a core that already
  served (and failed) this request, because a mercurial core fails
  "repeatedly and intermittently" (§2) — retrying in place converts an
  intermittent corruption into a repeated one.
- :class:`HedgePolicy` — tail-latency hedging: when the primary attempt
  is predicted slow, a duplicate is issued to a *different* core and the
  first valid response wins (which also happens to be a cheap dual
  execution for the hedged fraction of traffic).
- :class:`CircuitBreaker` / :class:`BreakerBoard` — per-core failure
  accounting with CLOSED → OPEN → HALF_OPEN states.  A trip is hard
  recidivism evidence, so the board emits a
  :class:`~repro.core.events.CeeEvent` of kind ``BREAKER_TRIP`` — the
  hook through which serving-layer symptoms reach the
  :class:`~repro.core.confidence.SuspicionTracker` and the quarantine
  policy (closing §6's loop from application signal to core isolation).
- :class:`LoadShedder` — graceful degradation: under capacity loss or
  burst traffic, excess admissions are refused outright so that the
  requests that *are* served still meet their deadlines.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro.core.events import CeeEvent, EventKind, EventLog, Reporter
from repro.workloads.base import CoreLike
from repro.workloads.hashing import crc64


# ---------------------------------------------------------------------
# end-to-end response validation
# ---------------------------------------------------------------------

class ResponseValidator:
    """Client-side e2e checksum over the request/response payload."""

    def __init__(self, client_core: CoreLike):
        self.client_core = client_core
        self.checks = 0
        self.mismatches = 0

    def checksum(self, payload: bytes) -> int:
        """Pre-send checksum, computed on the client's own core."""
        return crc64(self.client_core, payload)

    def validate(self, expected_checksum: int, response_payload: bytes) -> bool:
        """Re-verify a response against the pre-send checksum."""
        self.checks += 1
        ok = crc64(self.client_core, response_payload) == expected_checksum
        if not ok:
            self.mismatches += 1
        return ok


# ---------------------------------------------------------------------
# retries with backoff + jitter + core diversity
# ---------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter (AWS-style).

    Attributes:
        max_attempts: total tries including the first.
        base_backoff_ms: delay scale for the first retry.
        multiplier: exponential growth per retry.
        max_backoff_ms: backoff cap.
        jitter: fraction of the delay randomized away (1.0 = full
            jitter in ``[delay/2, delay]``... we use ``delay * (1 - j*u)``).
        core_diversity: never retry on an already-tried core.
    """

    max_attempts: int = 3
    base_backoff_ms: float = 2.0
    multiplier: float = 2.0
    max_backoff_ms: float = 40.0
    jitter: float = 0.5
    core_diversity: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_ms(self, retry_index: int, rng: np.random.Generator) -> float:
        """Delay before retry ``retry_index`` (0 = first retry)."""
        delay = min(
            self.max_backoff_ms,
            self.base_backoff_ms * self.multiplier ** retry_index,
        )
        return delay * (1.0 - self.jitter * float(rng.random()))


@dataclasses.dataclass(frozen=True)
class HedgePolicy:
    """Send a duplicate to another core when the primary looks slow."""

    hedge_delay_ms: float = 6.0


# ---------------------------------------------------------------------
# per-core circuit breakers
# ---------------------------------------------------------------------

class BreakerState(enum.Enum):
    """Per-core circuit breaker: closed (healthy) -> open -> half-open."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclasses.dataclass(frozen=True)
class BreakerConfig:
    """Trip after ``failure_threshold`` failures inside ``window_ms``;
    stay open for ``cooldown_ms``, then allow probes (half-open)."""

    failure_threshold: int = 3
    window_ms: float = 400.0
    cooldown_ms: float = 200.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")


class CircuitBreaker:
    """Failure accounting for one server core."""

    def __init__(self, core_id: str, config: BreakerConfig):
        self.core_id = core_id
        self.config = config
        self.state = BreakerState.CLOSED
        self.trips = 0
        self._failure_times: list[float] = []
        self._opened_at = 0.0

    def allows(self, now_ms: float) -> bool:
        """May a request be routed to this core right now?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now_ms - self._opened_at >= self.config.cooldown_ms:
                self.state = BreakerState.HALF_OPEN
                return True
            return False
        return True  # HALF_OPEN: probe traffic allowed

    def record_success(self, now_ms: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.CLOSED
            self._failure_times.clear()

    def record_failure(self, now_ms: float) -> bool:
        """Count one failure; returns True when this failure trips."""
        if self.state is BreakerState.HALF_OPEN:
            # A failed probe re-opens immediately.
            self.state = BreakerState.OPEN
            self._opened_at = now_ms
            self.trips += 1
            return True
        window_start = now_ms - self.config.window_ms
        self._failure_times = [
            t for t in self._failure_times if t >= window_start
        ]
        self._failure_times.append(now_ms)
        if (
            self.state is BreakerState.CLOSED
            and len(self._failure_times) >= self.config.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self._opened_at = now_ms
            self.trips += 1
            return True
        return False


class BreakerBoard:
    """All per-core breakers of one service, plus the event plumbing.

    A trip emits a ``BREAKER_TRIP`` event into the shared
    :class:`~repro.core.events.EventLog`; the campaign's
    :class:`~repro.detection.signals.SignalAnalyzer` ingests it with a
    heavy weight (a trip already *is* several correlated failures), so
    trips accelerate the suspicion → quarantine loop.
    """

    def __init__(
        self,
        config: BreakerConfig,
        event_log: EventLog | None = None,
        machine_of: dict[str, str] | None = None,
        ms_per_day: float = 86_400_000.0,
    ):
        self.config = config
        self.event_log = event_log
        self.machine_of = machine_of or {}
        self.ms_per_day = ms_per_day
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, core_id: str) -> CircuitBreaker:
        if core_id not in self._breakers:
            self._breakers[core_id] = CircuitBreaker(core_id, self.config)
        return self._breakers[core_id]

    def allows(self, core_id: str, now_ms: float) -> bool:
        return self.breaker(core_id).allows(now_ms)

    def open_core_ids(self, now_ms: float) -> set[str]:
        return {
            core_id
            for core_id, breaker in self._breakers.items()
            if not breaker.allows(now_ms)
        }

    def record_success(self, core_id: str, now_ms: float) -> None:
        self.breaker(core_id).record_success(now_ms)

    def record_failure(
        self, core_id: str, now_ms: float, detail: str = ""
    ) -> bool:
        """Count a failure; on a trip, log the event.  Returns tripped."""
        tripped = self.breaker(core_id).record_failure(now_ms)
        if tripped and self.event_log is not None:
            self.event_log.append(
                CeeEvent(
                    time_days=now_ms / self.ms_per_day,
                    machine_id=self.machine_of.get(
                        core_id, core_id.rsplit("/", 1)[0]
                    ),
                    core_id=core_id,
                    kind=EventKind.BREAKER_TRIP,
                    reporter=Reporter.AUTOMATED,
                    application="serving",
                    detail=detail or "circuit breaker tripped",
                )
            )
        return tripped

    @property
    def total_trips(self) -> int:
        return sum(b.trips for b in self._breakers.values())


# ---------------------------------------------------------------------
# load shedding
# ---------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class LoadShedConfig:
    """Admission control: refuse work beyond ``max_queue_factor`` ×
    per-tick service capacity so the served remainder stays in SLO."""

    max_queue_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.max_queue_factor <= 0:
            raise ValueError("max_queue_factor must be positive")


class LoadShedder:
    """Queue-depth admission control (newest arrivals shed first)."""

    def __init__(self, config: LoadShedConfig):
        self.config = config
        self.shed_count = 0

    def admit(self, queue_len: int, arrivals: int, capacity: int) -> int:
        """How many of ``arrivals`` to admit given the current backlog."""
        limit = max(capacity, int(self.config.max_queue_factor * capacity))
        room = max(0, limit - queue_len)
        admitted = min(arrivals, room)
        self.shed_count += arrivals - admitted
        return admitted


# ---------------------------------------------------------------------
# the composite hardening configuration
# ---------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class HardeningConfig:
    """Which defences the service runs; the experiment's main knob."""

    name: str = "hardened"
    validate: bool = True
    retry: RetryPolicy | None = dataclasses.field(default_factory=RetryPolicy)
    hedge: HedgePolicy | None = dataclasses.field(default_factory=HedgePolicy)
    breaker: BreakerConfig | None = dataclasses.field(
        default_factory=BreakerConfig
    )
    shed: LoadShedConfig | None = dataclasses.field(
        default_factory=LoadShedConfig
    )

    @classmethod
    def unhardened(cls) -> "HardeningConfig":
        """The naive service: trust every response, never reroute."""
        return cls(
            name="unhardened", validate=False, retry=None, hedge=None,
            breaker=None, shed=None,
        )

    @classmethod
    def hardened(cls) -> "HardeningConfig":
        """Everything on (the defaults)."""
        return cls()

    @classmethod
    def validator_only(cls) -> "HardeningConfig":
        """Validation + retries but no circuit breakers.

        The ablation used to show that breaker trips *accelerate*
        quarantine beyond what per-response validation signals achieve.
        """
        return cls(name="validator-only", breaker=None)


__all__ = [
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "HardeningConfig",
    "HedgePolicy",
    "LoadShedConfig",
    "LoadShedder",
    "ResponseValidator",
    "RetryPolicy",
]
