"""CEE-hardened serving: an RPC layer that tolerates mercurial cores.

§7's ask is software that *tolerates* mercurial cores, not just
detection: this package models a request/response service running on
fleet cores (:mod:`repro.serving.service`), the hardening toolkit
around it (:mod:`repro.serving.robustness`), a chaos fault-injection
harness (:mod:`repro.serving.chaos`), and the campaign driver + SLO
scorecard (:mod:`repro.serving.campaign`).
"""

from repro.serving.campaign import (
    CampaignConfig,
    ServingCampaign,
    SloScorecard,
    build_serving_fleet,
)
from repro.serving.chaos import ChaosAction, ChaosKind, ChaosSchedule
from repro.serving.robustness import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    HardeningConfig,
    HedgePolicy,
    LoadShedConfig,
    LoadShedder,
    ResponseValidator,
    RetryPolicy,
)
from repro.serving.service import (
    Attempt,
    AttemptOutcome,
    Request,
    Response,
    ResponseStatus,
    RoundRobinRouter,
    ServerReplica,
)

__all__ = [
    "Attempt",
    "AttemptOutcome",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "CampaignConfig",
    "ChaosAction",
    "ChaosKind",
    "ChaosSchedule",
    "CircuitBreaker",
    "HardeningConfig",
    "HedgePolicy",
    "LoadShedConfig",
    "LoadShedder",
    "Request",
    "Response",
    "ResponseStatus",
    "ResponseValidator",
    "RetryPolicy",
    "RoundRobinRouter",
    "ServerReplica",
    "ServingCampaign",
    "SloScorecard",
    "build_serving_fleet",
]
