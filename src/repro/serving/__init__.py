"""CEE-hardened serving: an RPC layer that tolerates mercurial cores.

§7's ask is software that *tolerates* mercurial cores, not just
detection: this package models a request/response service running on
fleet cores (:mod:`repro.serving.service`), the hardening toolkit
around it (:mod:`repro.serving.robustness`), the campaign driver + SLO
scorecard (:mod:`repro.serving.campaign`), and the serve-at-scale layer
E17 runs on — open-loop load generation (:mod:`repro.serving.loadgen`),
the sharded cluster with pluggable routing, retry budgets, degradation
tiers and autoscaling (:mod:`repro.serving.cluster`), and its campaign
driver (:mod:`repro.serving.scale_campaign`).  Chaos fault injection is
shared with the storage campaigns and lives in :mod:`repro.chaos`.
"""

from repro.chaos import ChaosAction, ChaosKind, ChaosSchedule
from repro.serving.campaign import (
    CampaignConfig,
    ServingCampaign,
    SloScorecard,
    build_serving_fleet,
)
from repro.serving.cluster import (
    ROUTER_POLICIES,
    Autoscaler,
    AutoscalerConfig,
    ConsistentHashRouter,
    DegradationPolicy,
    DegradationTier,
    LeastLoadedRouter,
    ReplicaRouter,
    RetryBudget,
    RetryBudgetConfig,
    Shard,
    ShardedCluster,
    ShardRoundRobinRouter,
)
from repro.serving.loadgen import (
    DEFAULT_COHORTS,
    LoadGenerator,
    LoadPhase,
    LoadProfile,
    UserCohort,
)
from repro.serving.robustness import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    HardeningConfig,
    HedgePolicy,
    LoadShedConfig,
    LoadShedder,
    ResponseValidator,
    RetryPolicy,
)
from repro.serving.scale_campaign import (
    ScaleConfig,
    ScaleHardening,
    ScaleScorecard,
    ServeScaleCampaign,
    build_scale_fleet,
)
from repro.serving.service import (
    Attempt,
    AttemptOutcome,
    Request,
    Response,
    ResponseStatus,
    RoundRobinRouter,
    ServerReplica,
)

__all__ = [
    "Attempt",
    "AttemptOutcome",
    "Autoscaler",
    "AutoscalerConfig",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "CampaignConfig",
    "ChaosAction",
    "ChaosKind",
    "ChaosSchedule",
    "CircuitBreaker",
    "ConsistentHashRouter",
    "DEFAULT_COHORTS",
    "DegradationPolicy",
    "DegradationTier",
    "HardeningConfig",
    "HedgePolicy",
    "LeastLoadedRouter",
    "LoadGenerator",
    "LoadPhase",
    "LoadProfile",
    "LoadShedConfig",
    "LoadShedder",
    "ROUTER_POLICIES",
    "ReplicaRouter",
    "Request",
    "Response",
    "ResponseStatus",
    "ResponseValidator",
    "RetryBudget",
    "RetryBudgetConfig",
    "RetryPolicy",
    "RoundRobinRouter",
    "ScaleConfig",
    "ScaleHardening",
    "ScaleScorecard",
    "ServeScaleCampaign",
    "ServerReplica",
    "ServingCampaign",
    "Shard",
    "ShardRoundRobinRouter",
    "ShardedCluster",
    "SloScorecard",
    "UserCohort",
    "build_scale_fleet",
    "build_serving_fleet",
]
