"""Deprecated shim: chaos moved to the shared :mod:`repro.chaos`.

The chaos harness started life inside the serving package (PR 1); the
storage campaigns reuse it, so the real implementation lives in
:mod:`repro.chaos`.  Importing from this path still works but raises a
:class:`DeprecationWarning`; new code should import ``repro.chaos``
directly.
"""

from __future__ import annotations

import warnings
from typing import Any

_NAMES = ("ChaosAction", "ChaosKind", "ChaosSchedule")

__all__ = list(_NAMES)


def __getattr__(name: str) -> Any:
    if name in _NAMES:
        warnings.warn(
            "repro.serving.chaos is deprecated; import "
            f"{name} from repro.chaos instead",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.chaos

        return getattr(repro.chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
