"""Compatibility shim: chaos moved to the shared :mod:`repro.chaos`.

The chaos harness started life inside the serving package (PR 1); the
storage campaigns reuse it, so the real implementation now lives in
:mod:`repro.chaos`.  This module keeps the old import path working.
"""

from repro.chaos import ChaosAction, ChaosKind, ChaosSchedule

__all__ = ["ChaosAction", "ChaosKind", "ChaosSchedule"]
