"""A simulated RPC service whose server cores may be mercurial.

§7's call to action is software that *tolerates* mercurial cores, and
the Facebook SDC-at-scale follow-up work frames silent corruption as a
fleet-*serving* problem: a defective core in a service stack returns a
*corrupted but well-formed* response, and nothing at the RPC layer
looks wrong.  This module models exactly that hazard:

- a :class:`Request` carries a payload and a deadline;
- a :class:`ServerReplica` wraps one fleet :class:`~repro.silicon.core.Core`
  and serves requests by moving the payload through the core's copy
  datapath (:func:`repro.workloads.copying.copy_bytes`), so a defective
  load/store or shared-logic unit corrupts real bytes exactly where a
  real one would;
- an :class:`RpcService` routes requests across replicas placed on
  fleet cores by the :class:`~repro.fleet.scheduler.FleetScheduler`,
  applying whatever hardening (validation, retries, hedging, breakers)
  the configuration enables — see :mod:`repro.serving.robustness`.

Latency is a proxy model (milliseconds of simulated time), not wall
clock: base service time plus seeded jitter, occasional stragglers
(the hedging target), queueing delay added by the campaign driver, and
backoff delay added by the retry policy.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro import obs
from repro.silicon.core import Core
from repro.silicon.errors import CoreOfflineError, MachineCheckError
from repro.workloads.copying import copy_bytes


class ResponseStatus(enum.Enum):
    """Terminal status of one request, as the client sees it."""

    OK = "ok"                  # a response was delivered in time
    TIMEOUT = "timeout"        # deadline exceeded (incl. retries/backoff)
    SHED = "shed"              # load shedder refused it at admission
    UNAVAILABLE = "unavailable"  # no live replica to serve it
    FAILED = "failed"          # every attempt errored or was rejected


class AttemptOutcome(enum.Enum):
    """What one server-side attempt produced."""

    OK = "ok"
    CORRUPT_CAUGHT = "corrupt_caught"  # validator rejected the response
    MACHINE_CHECK = "machine_check"    # fail-noisy defect fired mid-RPC
    CORE_OFFLINE = "core_offline"      # crash / quarantine raced the RPC


@dataclasses.dataclass(frozen=True, slots=True)
class Request:
    """One client request.

    Attributes:
        request_id: unique id within a campaign.
        payload: bytes the service must echo back intact.
        deadline_ms: end-to-end latency budget.
        arrival_tick: campaign tick the request arrived on.
        route_key: stable user/session key (consistent-hash routing and
            the stale-response cache key); 0 when unrouted.
        cohort: name of the user cohort that issued the request.
    """

    request_id: int
    payload: bytes
    deadline_ms: float
    arrival_tick: int = 0
    route_key: int = 0
    cohort: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class Attempt:
    """One try at one replica."""

    core_id: str
    outcome: AttemptOutcome
    latency_ms: float
    hedged: bool = False


@dataclasses.dataclass(slots=True)
class Response:
    """What the client ultimately observes for one request."""

    request_id: int
    status: ResponseStatus
    payload: bytes | None
    core_id: str | None
    latency_ms: float
    attempts: list[Attempt] = dataclasses.field(default_factory=list)
    validated: bool = False
    #: served from the degradation tier's stale cache, not a live core
    stale: bool = False

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)


class ServerReplica:
    """One serving process pinned to one fleet core.

    The replica's entire data path runs through :meth:`Core.execute`,
    so a mercurial core silently corrupts the echoed payload — the
    response stays well-formed (right length, right framing) and only
    an end-to-end check can tell it is wrong.
    """

    def __init__(
        self,
        replica_id: str,
        core: Core,
        base_latency_ms: float = 1.0,
        straggler_prob: float = 0.03,
        straggler_factor: float = 12.0,
    ):
        self.replica_id = replica_id
        self.core = core
        self.base_latency_ms = base_latency_ms
        self.straggler_prob = straggler_prob
        self.straggler_factor = straggler_factor
        #: chaos hook: force the next N requests to raise machine checks
        self.forced_mce_remaining = 0
        self.requests_served = 0
        #: attempts routed here (the least-loaded router's load proxy;
        #: counts picks, not completions, so it is monotone per tick)
        self.assigned = 0
        # cached so the per-request path pays one attribute test when off
        self._obs_on = obs.enabled()

    @property
    def core_id(self) -> str:
        return self.core.core_id

    @property
    def available(self) -> bool:
        return self.core.online

    def sample_latency_ms(self, rng: np.random.Generator) -> float:
        """Service-time proxy: base + exponential tail, rare stragglers."""
        latency = self.base_latency_ms * (0.6 + float(rng.exponential(0.5)))
        if rng.random() < self.straggler_prob:
            latency *= self.straggler_factor
        return latency

    def serve(self, request: Request, rng: np.random.Generator) -> tuple[bytes, float]:
        """Serve one request; returns (response payload, latency ms).

        Raises:
            MachineCheckError: a fail-noisy defect (or chaos) fired.
            CoreOfflineError: the core crashed or was quarantined.
        """
        if not self._obs_on:
            return self._serve_inner(request, rng)
        with obs.tracer.span(
            "serving.serve", replica=self.replica_id, core_id=self.core_id
        ) as sp:
            payload, latency = self._serve_inner(request, rng)
            sp.attrs["latency_ms"] = latency
            return payload, latency

    def _serve_inner(
        self, request: Request, rng: np.random.Generator
    ) -> tuple[bytes, float]:
        latency = self.sample_latency_ms(rng)
        if self.forced_mce_remaining > 0:
            self.forced_mce_remaining -= 1
            raise MachineCheckError(
                self.core_id, "copy", "chaos-injected machine check"
            )
        echoed = copy_bytes(self.core, request.payload)
        self.requests_served += 1
        return echoed, latency


class RoundRobinRouter:
    """Client-side load balancer over the live replica set.

    ``pick`` honours an exclusion set (cores already tried — the retry
    policy's *core-diversity* rule — or cores whose circuit breaker is
    open), so a retry is never sent back to the suspect core.
    """

    def __init__(self, replicas: list[ServerReplica]):
        self.replicas = list(replicas)
        self._cursor = 0

    def live_replicas(self) -> list[ServerReplica]:
        return [r for r in self.replicas if r.available]

    def pick(self, exclude_core_ids: set[str] | None = None) -> ServerReplica | None:
        """Next available replica not in the exclusion set, or None."""
        exclude = exclude_core_ids or set()
        n = len(self.replicas)
        for offset in range(n):
            replica = self.replicas[(self._cursor + offset) % n]
            if not replica.available or replica.core_id in exclude:
                continue
            self._cursor = (self._cursor + offset + 1) % n
            return replica
        return None

    def replace(self, old: ServerReplica, new: ServerReplica) -> None:
        """Swap a replica (re-placement after quarantine/crash)."""
        index = self.replicas.index(old)
        self.replicas[index] = new


__all__ = [
    "Attempt",
    "AttemptOutcome",
    "Request",
    "Response",
    "ResponseStatus",
    "RoundRobinRouter",
    "ServerReplica",
]
