"""Interpreter executing ISA programs on a (possibly mercurial) core.

Every instruction that exercises a functional unit is routed through
:meth:`Core.execute`, so defects corrupt exactly the architectural
behaviour a real mercurial core would.  Traps (division by zero,
out-of-range memory, budget exhaustion) are reported in the result
rather than raised, because crashes *are data* for the detection layer
("crashes of user processes" are one of the paper's §6 signals).
Machine checks propagate as :class:`MachineCheckError`.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, TYPE_CHECKING

from repro.silicon.core import Core
from repro.silicon.isa import (
    Instruction,
    N_SCALAR_REGS,
    N_VECTOR_REGS,
    VLEN,
    core_op,
)
from repro.silicon.units import Op

if TYPE_CHECKING:  # annotation-only: keeps silicon below workloads
    from repro.workloads.base import CoreLike

DEFAULT_MEMORY_WORDS = 4096
DEFAULT_STEP_BUDGET = 200_000


@dataclasses.dataclass(slots=True)
class VmResult:
    """Outcome of one program run."""

    registers: list[int]
    vregisters: list[tuple[int, ...]]
    memory: list[int]
    steps: int
    halted: bool
    trap: str | None = None

    @property
    def crashed(self) -> bool:
        """Did the run end in a trap rather than a halt?"""
        return self.trap is not None


class Vm:
    """A tiny machine: one core, registers, flat memory.

    ``core`` is the VM's op-stream hook point: anything satisfying
    :class:`~repro.workloads.base.CoreLike` (``core_id`` plus
    ``execute``) can stand in for a raw :class:`Core`.  In particular
    the instruction-level checking wrappers —
    :class:`~repro.mitigation.instrcheck.policies.IthicaCheckedCore`
    and :class:`~repro.mitigation.instrcheck.policies.MeekCheckedCore`
    — slot in here unchanged, so whole ISA programs run under per-op
    duplicate execution or heterogeneous checker pairing without the
    interpreter knowing.
    """

    def __init__(
        self,
        core: Core | CoreLike,
        memory_words: int = DEFAULT_MEMORY_WORDS,
        step_budget: int = DEFAULT_STEP_BUDGET,
    ):
        self.core = core
        self.memory_words = memory_words
        self.step_budget = step_budget

    def run(
        self,
        program: Sequence[Instruction],
        memory_image: Sequence[int] = (),
        registers: Sequence[int] = (),
    ) -> VmResult:
        """Execute ``program`` to halt, trap, or budget exhaustion."""
        regs = [0] * N_SCALAR_REGS
        for index, value in enumerate(registers):
            regs[index] = value
        vregs: list[tuple[int, ...]] = [(0,) * VLEN for _ in range(N_VECTOR_REGS)]
        memory = [0] * self.memory_words
        for index, value in enumerate(memory_image):
            memory[index] = value

        core = self.core
        pc = 0
        steps = 0
        trap: str | None = None
        halted = False

        def load_vec(base: int) -> tuple[int, ...]:
            if base < 0 or base + VLEN > len(memory):
                raise IndexError
            return tuple(memory[base:base + VLEN])

        while pc < len(program):
            if steps >= self.step_budget:
                trap = "budget_exhausted"
                break
            steps += 1
            instruction = program[pc]
            mnemonic = instruction.mnemonic
            ops = instruction.operands
            pc += 1
            try:
                if mnemonic == "halt":
                    halted = True
                    break
                elif mnemonic == "li":
                    regs[ops[0]] = ops[1]
                elif mnemonic == "mv":
                    regs[ops[0]] = regs[ops[1]]
                elif mnemonic == "jmp":
                    pc = ops[0]
                elif mnemonic in ("beq", "bne", "blt"):
                    op = core_op(mnemonic)
                    taken = core.execute(op, regs[ops[0]], regs[ops[1]])
                    if mnemonic == "bne":
                        taken = 1 - taken
                    if taken:
                        pc = ops[2]
                elif mnemonic == "ld":
                    address = regs[ops[1]]
                    regs[ops[0]] = core.execute(Op.LOAD, memory[address])
                elif mnemonic == "st":
                    address = regs[ops[0]]
                    memory[address] = core.execute(Op.STORE, regs[ops[1]])
                elif mnemonic == "cpy":
                    dst, src, length = regs[ops[0]], regs[ops[1]], ops[2]
                    if src < 0 or dst < 0 or src + length > len(memory) \
                            or dst + length > len(memory):
                        raise IndexError
                    chunk = core.execute(Op.COPY, tuple(memory[src:src + length]))
                    memory[dst:dst + length] = list(chunk)
                elif mnemonic == "cas":
                    address = regs[ops[1]]
                    new = core.execute(
                        Op.CAS, memory[address], regs[ops[2]], ops[3]
                    )
                    regs[ops[0]] = memory[address]
                    memory[address] = new
                elif mnemonic == "fadd":
                    address = regs[ops[1]]
                    new = core.execute(Op.FETCH_ADD, memory[address], regs[ops[2]])
                    regs[ops[0]] = new
                    memory[address] = new
                elif mnemonic == "xchg":
                    address = regs[ops[1]]
                    old = memory[address]
                    memory[address] = core.execute(Op.XCHG, old, regs[ops[2]])
                    regs[ops[0]] = old
                elif mnemonic == "vld":
                    vregs[ops[0]] = tuple(
                        core.execute(Op.LOAD, lane)
                        for lane in load_vec(regs[ops[1]])
                    )
                elif mnemonic == "vst":
                    base = regs[ops[0]]
                    if base < 0 or base + VLEN > len(memory):
                        raise IndexError
                    for offset, lane in enumerate(vregs[ops[1]]):
                        memory[base + offset] = core.execute(Op.STORE, lane)
                elif mnemonic in ("vadd", "vsub", "vmul", "vxor", "vand", "vor"):
                    op = core_op(mnemonic)
                    vregs[ops[0]] = core.execute(op, vregs[ops[1]], vregs[ops[2]])
                elif mnemonic == "vdot":
                    regs[ops[0]] = core.execute(Op.VDOT, vregs[ops[1]], vregs[ops[2]])
                elif mnemonic == "vsum":
                    regs[ops[0]] = core.execute(Op.VSUM, vregs[ops[1]])
                else:
                    # Generic 3-operand / 2-operand scalar compute.
                    op = core_op(mnemonic)
                    if op is None:
                        trap = f"unimplemented:{mnemonic}"
                        break
                    sources = [regs[r] for r in ops[1:]]
                    regs[ops[0]] = core.execute(op, *sources)
            except ZeroDivisionError:
                trap = "divide_by_zero"
                break
            except IndexError:
                trap = "segfault"
                break

        return VmResult(
            registers=regs,
            vregisters=vregs,
            memory=memory,
            steps=steps,
            halted=halted,
            trap=trap,
        )
