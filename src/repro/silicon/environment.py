"""Operating conditions: frequency, voltage, temperature ("f, V, T").

The paper notes (§2 footnote) that "Modern CPUs tightly couple f and V;
these are not normally independently adjustable by users, while T is
somewhat controllable", and (§5) that Dynamic Frequency and Voltage
Scaling (DVFS) couples the two "in complex ways, one of several reasons
why lower frequency sometimes (surprisingly) increases the failure
rate".

This module models an operating point plus a DVFS table: selecting a
frequency implies a voltage.  Screening code can sweep the normal
envelope or step outside it (offline screening "could involve exposing
CPUs to operating conditions (f, V, T) outside normal ranges", §6).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Sequence


@dataclasses.dataclass(frozen=True)
class OperatingPoint:
    """One (frequency, voltage, temperature) condition.

    Attributes:
        frequency_ghz: core clock in GHz.
        voltage_v: supply voltage in volts.
        temperature_c: junction temperature in Celsius.
    """

    frequency_ghz: float
    voltage_v: float
    temperature_c: float

    def with_temperature(self, temperature_c: float) -> "OperatingPoint":
        """A copy of this point at a different temperature."""
        return dataclasses.replace(self, temperature_c=temperature_c)

    def scaled(self, frequency_ghz: float, voltage_v: float) -> "OperatingPoint":
        """A copy at a different DVFS point (same temperature)."""
        return dataclasses.replace(
            self, frequency_ghz=frequency_ghz, voltage_v=voltage_v
        )


#: the fleet's default operating point
NOMINAL = OperatingPoint(frequency_ghz=3.0, voltage_v=1.00, temperature_c=60.0)


class DvfsTable:
    """Discrete DVFS states coupling frequency to voltage.

    Users pick a *state*, not an arbitrary (f, V); this mirrors the
    paper's observation that f and V are not independently adjustable.
    """

    def __init__(self, states: Sequence[tuple[float, float]] | None = None):
        """Create a table from ``(frequency_ghz, voltage_v)`` pairs.

        The default ladder spans a typical server part: low-frequency,
        low-voltage states up to a boosted top state.
        """
        if states is None:
            states = (
                (1.2, 0.70),
                (1.8, 0.80),
                (2.4, 0.90),
                (3.0, 1.00),
                (3.6, 1.12),
            )
        if not states:
            raise ValueError("DVFS table needs at least one state")
        self._states = tuple(sorted(states))

    @property
    def states(self) -> tuple[tuple[float, float], ...]:
        """The (frequency, voltage) ladder, ascending."""
        return self._states

    def state(self, index: int) -> tuple[float, float]:
        """One DVFS state as (frequency_ghz, voltage_v)."""
        return self._states[index]

    @property
    def nominal_index(self) -> int:
        """Index of the state closest to the nominal frequency."""
        freqs = [f for f, _ in self._states]
        diffs = [abs(f - NOMINAL.frequency_ghz) for f in freqs]
        return diffs.index(min(diffs))

    def operating_point(
        self, index: int, temperature_c: float = NOMINAL.temperature_c
    ) -> OperatingPoint:
        """Build an :class:`OperatingPoint` for DVFS state ``index``."""
        frequency_ghz, voltage_v = self._states[index]
        return OperatingPoint(frequency_ghz, voltage_v, temperature_c)

    def sweep(
        self, temperatures_c: Sequence[float] = (40.0, 60.0, 85.0)
    ) -> Iterator[OperatingPoint]:
        """Yield every (state × temperature) combination of the envelope."""
        for index in range(len(self._states)):
            for temperature_c in temperatures_c:
                yield self.operating_point(index, temperature_c)


def stress_points(table: DvfsTable | None = None) -> tuple[OperatingPoint, ...]:
    """Out-of-envelope points used by offline screening (§6).

    Returns the envelope corners pushed beyond their normal range:
    hotter, colder, and with voltage margined down at top frequency —
    conditions that make marginal defects confess sooner.
    """
    table = table or DvfsTable()
    top_f, top_v = table.states[-1]
    bottom_f, bottom_v = table.states[0]
    return (
        OperatingPoint(top_f, top_v * 0.95, 95.0),   # hot, undervolted boost
        OperatingPoint(top_f, top_v, 15.0),          # cold boost
        OperatingPoint(bottom_f, bottom_v * 0.93, 90.0),  # hot low-power
    )
